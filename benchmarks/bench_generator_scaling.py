"""Scheduler scaling over generated SOC size — the synthetic-workload
benchmark the paper could not run (it had one chip; we have a seeded
generator).

Sweeps the `repro.gen` profile ladder x every registered scheduling
strategy, recording wall clock, makespan, and the makespan / lower-bound
ratio (`repro.sched.bounds`) in the pytest-benchmark `extra_info`.
Every schedule is invariant-checked before it is reported — a fast
wrong answer is not a data point.

Gates keep the matrix honest about algorithmic reach: the exact MILP
only sees the `tiny` end, and the session heuristic's local search is
capped at `large` (on `huge` it is minutes per chip — measured once in
`test_session_wall_at_scale`, not swept).
"""

import time

import pytest

from repro.core import CompileBist, FlowContext, SteacConfig
from repro.gen import SocGenerator
from repro.sched import resolve_schedule, schedule_lower_bound
from repro.verify import verify_schedule

SEED = 11

#: strategy -> largest profile it is swept at.
STRATEGY_REACH = {
    "ilp": ("tiny",),
    "session": ("tiny", "small", "d695-like", "large"),
    "nonsession": ("tiny", "small", "d695-like", "large", "huge"),
    "serial": ("tiny", "small", "d695-like", "large", "huge"),
}

_CASES: dict[str, tuple] = {}


def case(profile: str) -> tuple:
    """One generated chip + its BIST-extended task list per profile."""
    if profile not in _CASES:
        soc = SocGenerator(SEED, profile).generate()
        ctx = FlowContext(soc=soc, config=SteacConfig(compare_strategies=False))
        CompileBist().run(ctx)
        _CASES[profile] = (soc, ctx.tasks)
    return _CASES[profile]


@pytest.mark.parametrize("strategy", sorted(STRATEGY_REACH))
@pytest.mark.parametrize("profile", ["tiny", "small", "d695-like", "large"])
def test_strategy_scaling(benchmark, profile, strategy):
    if profile not in STRATEGY_REACH[strategy]:
        pytest.skip(f"{strategy} not swept at {profile!r}")
    soc, tasks = case(profile)
    if strategy == "ilp" and len(tasks) > 6:
        pytest.skip("instance beyond the MILP gate")

    result = benchmark.pedantic(
        lambda: resolve_schedule(strategy, soc, tasks), rounds=1, iterations=1
    )

    report = verify_schedule(soc, result, tasks=tasks)
    assert report.ok, report.render()
    bound = schedule_lower_bound(soc, tasks)
    benchmark.extra_info["profile"] = profile
    benchmark.extra_info["cores"] = len(soc.cores)
    benchmark.extra_info["tasks"] = len(tasks)
    benchmark.extra_info["total_time_cycles"] = result.total_time
    benchmark.extra_info["lower_bound_cycles"] = bound
    benchmark.extra_info["optimality_gap"] = round(result.total_time / bound, 3)
    print(f"\n{profile:>10} x {strategy:<10} {len(soc.cores):>3} cores "
          f"{len(tasks):>3} tasks  makespan {result.total_time:>10,}  "
          f"LB ratio {result.total_time / bound:.2f}")


def test_session_wall_at_scale(benchmark):
    """One `huge` chip through the session heuristic — the wall the
    local search hits, recorded so future scheduler work has a number
    to beat."""
    soc, tasks = case("huge")
    started = time.perf_counter()
    result = benchmark.pedantic(
        lambda: resolve_schedule("session", soc, tasks), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started
    report = verify_schedule(soc, result, tasks=tasks)
    assert report.ok, report.render()
    serial = resolve_schedule("serial", soc, tasks).total_time
    benchmark.extra_info["cores"] = len(soc.cores)
    benchmark.extra_info["tasks"] = len(tasks)
    benchmark.extra_info["seconds"] = round(elapsed, 2)
    benchmark.extra_info["speedup_vs_serial"] = round(serial / result.total_time, 3)
    print(f"\nhuge x session: {len(tasks)} tasks in {elapsed:.1f}s, "
          f"{serial / result.total_time:.2f}x faster test than serial")


def test_verifier_overhead(benchmark):
    """The invariant checker must stay cheap enough to run on every
    schedule of a fuzz campaign."""
    soc, tasks = case("large")
    result = resolve_schedule("nonsession", soc, tasks)
    report = benchmark(lambda: verify_schedule(soc, result, tasks=tasks))
    assert report.ok
    benchmark.extra_info["tasks"] = len(tasks)
