"""Design-choice ablations (DESIGN.md section 4 calls these out).

Not paper tables — these quantify the trade-offs behind the design
choices the paper leaves implicit:

* full (capture/update/safe) WBR cell vs a light shift-only cell;
* exact vs greedy wrapper-chain partitioning;
* March algorithm choice at chip level (BIST time vs coverage);
* word-oriented data backgrounds (cost of intra-word CF coverage).
"""

from benchmarks.conftest import paper_vs_ours
from repro.bist import (
    ALGORITHMS,
    Brains,
    BrainsConfig,
    MARCH_C_MINUS,
    MATS_PLUS,
    simulate_coverage,
    standard_backgrounds,
    word_march_cycles,
)
from repro.soc.dsc import build_dsc_memories, build_usb_core
from repro.util import Table
from repro.wrapper import (
    WBC_AREA,
    WBC_LIGHT_AREA,
    design_wrapper,
    make_wbc_cell,
    make_wbc_light_cell,
)


def test_wbc_cell_variants(benchmark):
    """The 26-gate cell buys an update stage (stable core inputs while
    shifting) and safe mode; the light cell saves ~30% area."""
    full, light = benchmark(lambda: (make_wbc_cell("F"), make_wbc_light_cell("L")))
    saving = 100 * (1 - light.area() / full.area())
    print()
    print(
        paper_vs_ours(
            "Ablation: WBR cell variants",
            [
                ("full cell (paper's 26 gates)", "26", f"{full.area():.1f}"),
                ("light shift-only cell", "-", f"{light.area():.1f}"),
                ("area saving", "-", f"{saving:.0f}%"),
                ("update stage / safe mode", "yes", "light: no"),
            ],
        )
    )
    assert full.area() == WBC_AREA
    assert light.area() == WBC_LIGHT_AREA
    assert 20 <= saving <= 50


def test_exact_vs_greedy_balancing(benchmark):
    """USB's chains (1629, 78, 293, 45) are so lopsided that greedy is
    already optimal at every width — the 1629 chain dominates; exact
    search must agree (and does pay off on adversarial chain sets)."""
    usb = build_usb_core()

    def compare():
        rows = []
        for width in (1, 2, 3, 4):
            greedy = design_wrapper(usb, width, exact=False)
            exact = design_wrapper(usb, width, exact=True)
            rows.append((width, greedy.scan_in_depth, exact.scan_in_depth))
        return rows

    rows = benchmark(compare)
    table = Table(["Width", "Greedy si", "Exact si"], title="USB wrapper balancing")
    for row in rows:
        table.add_row(list(row))
    print()
    print(table.render())
    for _, greedy_si, exact_si in rows:
        assert exact_si <= greedy_si
    assert rows[-1][1] == rows[-1][2] == 1629  # dominated by the long chain


def test_march_choice_at_chip_level(benchmark):
    """Algorithm choice sweeps total BIST time 5.5x while coverage moves
    ~40 points: the trade BRAINS exists to let designers make."""

    def sweep():
        rows = []
        for march in (MATS_PLUS, ALGORITHMS[3], MARCH_C_MINUS, ALGORITHMS[8]):
            engine = Brains().compile(
                build_dsc_memories(), BrainsConfig(march=march, power_budget=8.0)
            )
            coverage = simulate_coverage(march, size=10, coupling_pairs=8)
            rows.append((march.name, march.complexity, engine.total_cycles,
                         coverage.total_coverage))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["Algorithm", "Ops/cell", "DSC BIST cycles", "Coverage %"],
        title="Ablation: March algorithm at chip level (22 SRAMs)",
    )
    for name, complexity, cycles, coverage in rows:
        table.add_row([name, complexity, f"{cycles:,}", f"{coverage:.1f}"])
    print()
    print(table.render())
    cycles = [r[2] for r in rows]
    coverages = [r[3] for r in rows]
    assert cycles == sorted(cycles)  # cost grows with complexity
    assert coverages[2] > coverages[0]  # March C- beats MATS+


def test_word_background_cost(benchmark):
    """Backgrounds multiply test length by floor(log2 B)+1 — the price of
    intra-word coupling coverage on word-oriented arrays."""

    def tally():
        rows = []
        for bits in (8, 16, 32):
            base = MARCH_C_MINUS.operation_count(1024)
            word = word_march_cycles(MARCH_C_MINUS, 1024, bits)
            rows.append((bits, len(standard_backgrounds(bits)), base, word))
        return rows

    rows = benchmark(tally)
    table = Table(
        ["Word bits", "Backgrounds", "Bit-oriented ops", "Word-oriented ops"],
        title="Ablation: data-background cost (1K words, March C-)",
    )
    for row in rows:
        table.add_row(list(row))
    print()
    print(table.render())
    for _bits, n_bg, base, word in rows:
        assert word == base * n_bg
