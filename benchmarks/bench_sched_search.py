"""Session-search throughput: the incremental engine vs the retained
reference, cold vs warm scan-time-table cache, across generated corpora.

Like ``bench_serve_cache.py`` this is a standalone harness (the
quantity under test is end-to-end chips scheduled per second, and the
cold/warm split needs explicit control of the process-level cache)::

    PYTHONPATH=src python benchmarks/bench_sched_search.py [-o BENCH_sched.json]
    PYTHONPATH=src python benchmarks/bench_sched_search.py --smoke --check BENCH_sched.json

The measurements land in ``BENCH_sched.json`` (schema
``repro/bench-sched/v2``), the scheduler's performance-trajectory file:

* **corpus rates** — chips/sec for ``tasks_from_soc`` + ``schedule_sessions``
  over generated corpora, run twice: *cold* (process cache cleared) and
  *warm* (a structurally identical corpus rebuilt from the same seeds,
  so every scan-time table is a digest hit).
* **reference race** — the incremental engine against
  ``schedule_sessions_reference`` on the same prebuilt task lists, with
  every schedule compared bit-for-bit.  This is the machine-independent
  number: the acceptance gate requires >= 3x.
* **backend race** — full-flow chips/sec over a spec-based d695-like
  corpus, serial vs process executor (warm workers keep the table
  cache across work items).
* **floor gap** — achieved makespan over ``session_schedule_floor``,
  how much the bound-pruning cutoff leaves on the table.
* **ILP quality** — session-search makespan over the exact MILP optimum
  on small generated chips (scipy; the section records a skip when the
  solver is unavailable).
* **tracer overhead** — paired warm passes with :mod:`repro.obs`
  tracing disabled vs enabled (best of 3 each): the disabled number
  pins the "instrumentation is free when off" claim.

``--check FILE`` compares the measured rate against a committed
baseline and exits nonzero on a regression — the CI smoke gate.  On
the same platform as the baseline the disabled-tracer warm rate must
stay within ``TIGHT_FACTOR`` (2%); on a different machine the gate
falls back to the coarse ``REGRESSION_FACTOR`` (2x) on the warm
corpus rate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

#: (profile, corpus size) per mode; seeds are 0..n-1 so every run and
#: every machine schedules the same chips.
CORPORA = {
    "full": (("tiny", 40), ("d695-like", 12), ("large", 3)),
    "smoke": (("tiny", 8), ("d695-like", 3)),
}
RACE_PROFILE = "d695-like"
RACE_CHIPS = {"full": 4, "smoke": 2}
BACKEND_CHIPS = {"full": 8, "smoke": 4}
ILP_CHIPS = {"full": 8, "smoke": 3}
ILP_MAX_TASKS = 8
TRACER_CHIPS = {"full": 12, "smoke": 3}
TRACER_PASSES = 3
SPEEDUP_TARGET = 3.0
REGRESSION_FACTOR = 2.0
#: Same-platform gate: the disabled-tracer warm rate may lag the
#: committed baseline by at most 2% — the observability layer must be
#: free when off.
TIGHT_FACTOR = 1.02
CHECK_PROFILE = "d695-like"


def build_corpus(profile: str, count: int):
    from repro.gen import SocGenerator

    return [SocGenerator(seed, profile).generate() for seed in range(count)]


def schedule_corpus(socs) -> tuple[float, list]:
    """Time ``tasks_from_soc`` + ``schedule_sessions`` per chip — the
    scheduling pipeline a corpus sweep runs for every generated SOC."""
    from repro.sched import schedule_sessions, tasks_from_soc

    results = []
    t0 = time.perf_counter()
    for soc in socs:
        tasks = tasks_from_soc(soc)
        results.append((soc, tasks, schedule_sessions(soc, tasks)))
    return time.perf_counter() - t0, results


def measure_corpus_rates(mode: str) -> list[dict]:
    from repro.sched import scan_time_cache_stats, session_schedule_floor
    from repro.sched.timecalc import clear_scan_time_cache

    rows = []
    for profile, count in CORPORA[mode]:
        # cold: no table survives from a previous profile or run
        clear_scan_time_cache()
        cold_seconds, _ = schedule_corpus(build_corpus(profile, count))
        # warm: fresh Core objects, identical structures — digest hits
        warm_seconds, results = schedule_corpus(build_corpus(profile, count))
        stats = scan_time_cache_stats()
        gaps = [
            result.total_time / floor
            for soc, tasks, result in results
            if (floor := session_schedule_floor(soc, tasks)) > 0
        ]
        rows.append({
            "profile": profile,
            "chips": count,
            "cold_seconds": round(cold_seconds, 4),
            "cold_chips_per_sec": round(count / cold_seconds, 2),
            "warm_seconds": round(warm_seconds, 4),
            "warm_chips_per_sec": round(count / warm_seconds, 2),
            "cache_warm_speedup": round(cold_seconds / warm_seconds, 2),
            "cache": {k: stats[k] for k in ("hits", "misses", "entries")},
            "floor_gap": {
                "mean": round(statistics.mean(gaps), 4),
                "max": round(max(gaps), 4),
            },
        })
    return rows


def measure_reference_race(mode: str) -> dict:
    """Both engines over the same prebuilt task lists, outputs compared
    bit for bit.  Task building is excluded: this isolates the search."""
    from repro.sched import (
        schedule_sessions,
        schedule_sessions_reference,
        tasks_from_soc,
    )

    count = RACE_CHIPS[mode]
    socs = build_corpus(RACE_PROFILE, count)
    prebuilt = [(soc, tasks_from_soc(soc)) for soc in socs]

    t0 = time.perf_counter()
    fast = [schedule_sessions(soc, tasks) for soc, tasks in prebuilt]
    fast_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    slow = [schedule_sessions_reference(soc, tasks) for soc, tasks in prebuilt]
    slow_seconds = time.perf_counter() - t0

    bit_identical = all(
        json.dumps(a.to_dict(), sort_keys=True) == json.dumps(b.to_dict(), sort_keys=True)
        for a, b in zip(fast, slow)
    )
    return {
        "profile": RACE_PROFILE,
        "chips": count,
        "incremental_seconds": round(fast_seconds, 4),
        "incremental_chips_per_sec": round(count / fast_seconds, 2),
        "reference_seconds": round(slow_seconds, 4),
        "reference_chips_per_sec": round(count / slow_seconds, 2),
        "speedup": round(slow_seconds / fast_seconds, 2),
        "bit_identical": bit_identical,
    }


def measure_backends(mode: str) -> dict:
    """Full-flow chips/sec, serial vs process backend, over a spec-based
    d695-like corpus — the sweep shape the corpus-wide table cache (and
    its residency in warm batch workers) is built for."""
    from repro.core import SteacConfig, integrate_many
    from repro.gen import scenario_specs

    count = BACKEND_CHIPS[mode]
    workers = min(count, os.cpu_count() or 1)
    specs = scenario_specs(count, profiles=(RACE_PROFILE,), base_seed=0)
    config = SteacConfig(compare_strategies=False)

    t0 = time.perf_counter()
    serial = integrate_many(specs, config=config, backend="serial")
    serial_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    processed = integrate_many(
        specs, config=config, workers=workers, backend="process"
    )
    process_seconds = time.perf_counter() - t0
    assert serial.ok and processed.ok
    assert [item.result.total_test_time for item in processed] == \
        [item.result.total_test_time for item in serial]
    return {
        "profile": RACE_PROFILE,
        "chips": count,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "serial_chips_per_sec": round(count / serial_seconds, 2),
        "process_seconds": round(process_seconds, 4),
        "process_chips_per_sec": round(count / process_seconds, 2),
        "process_vs_serial": round(serial_seconds / process_seconds, 2),
    }


def measure_ilp_quality(mode: str) -> dict:
    """Session-search makespan over the exact MILP optimum on small
    generated chips — how much schedule quality the heuristic trades
    for its speed.  Chips above ``ILP_MAX_TASKS`` are skipped (the
    MILP's runtime explodes); a missing solver skips the section."""
    from repro.sched import schedule_sessions, tasks_from_soc
    from repro.sched.registry import resolve_schedule

    count = ILP_CHIPS[mode]
    socs = build_corpus("tiny", count)
    rows = []
    skipped_large = 0
    for soc in socs:
        tasks = tasks_from_soc(soc)
        if len(tasks) > ILP_MAX_TASKS:
            skipped_large += 1
            continue
        session_time = schedule_sessions(soc, tasks).total_time
        try:
            ilp_time = resolve_schedule("ilp", soc, tasks).total_time
        except ImportError as exc:
            return {"skipped": f"optional dependency: {exc}"}
        rows.append({
            "soc": soc.name,
            "tasks": len(tasks),
            "session": session_time,
            "ilp": ilp_time,
            "ratio": round(session_time / ilp_time, 4),
        })
    if not rows:
        return {"skipped": f"no chips with <= {ILP_MAX_TASKS} tasks"}
    ratios = [row["ratio"] for row in rows]
    return {
        "profile": "tiny",
        "chips": len(rows),
        "skipped_large": skipped_large,
        "max_tasks": ILP_MAX_TASKS,
        "mean_ratio": round(statistics.mean(ratios), 4),
        "max_ratio": round(max(ratios), 4),
        "optimal_fraction": round(
            sum(1 for r in ratios if r <= 1.0) / len(ratios), 4
        ),
        "rows": rows,
    }


def measure_tracer_overhead(mode: str) -> dict:
    """Paired warm corpus passes, tracing disabled vs enabled (best of
    ``TRACER_PASSES`` each).  The disabled number backs the claim that
    instrumentation costs <2% when off; the enabled number prices
    turning it on."""
    from repro.obs import TRACER, disable_tracing, enable_tracing, tracing_enabled
    from repro.sched.timecalc import clear_scan_time_cache

    count = TRACER_CHIPS[mode]
    socs = build_corpus(RACE_PROFILE, count)
    clear_scan_time_cache()
    schedule_corpus(socs)  # warm the scan-time table cache

    assert not tracing_enabled(), "tracer must start disabled"
    disabled = min(
        schedule_corpus(socs)[0] for _ in range(TRACER_PASSES)
    )
    enable_tracing()
    try:
        enabled_times = []
        for _ in range(TRACER_PASSES):
            TRACER.clear()
            enabled_times.append(schedule_corpus(socs)[0])
        enabled = min(enabled_times)
    finally:
        disable_tracing()
        TRACER.clear()
    return {
        "profile": RACE_PROFILE,
        "chips": count,
        "passes": TRACER_PASSES,
        "disabled_seconds": round(disabled, 4),
        "disabled_chips_per_sec": round(count / disabled, 2),
        "enabled_seconds": round(enabled, 4),
        "enabled_chips_per_sec": round(count / enabled, 2),
        "enabled_overhead_percent": round(
            (enabled - disabled) / disabled * 100, 2
        ),
    }


def measure_d695() -> dict:
    """The ITC'02 anchor workload both golden fixtures pin."""
    from repro.sched import (
        schedule_sessions,
        schedule_sessions_reference,
        session_schedule_floor,
        tasks_from_soc,
    )
    from repro.soc.itc02 import d695_soc

    soc = d695_soc(test_pins=48)
    tasks = tasks_from_soc(soc)
    t0 = time.perf_counter()
    fast = schedule_sessions(soc, tasks)
    fast_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    slow = schedule_sessions_reference(soc, tasks)
    slow_seconds = time.perf_counter() - t0
    return {
        "soc": soc.name,
        "total_time": fast.total_time,
        "sessions": fast.session_count,
        "floor": session_schedule_floor(soc, tasks),
        "incremental_ms": round(fast_seconds * 1000, 2),
        "reference_ms": round(slow_seconds * 1000, 2),
        "bit_identical": json.dumps(fast.to_dict(), sort_keys=True)
        == json.dumps(slow.to_dict(), sort_keys=True),
    }


def run(mode: str) -> dict:
    corpus = measure_corpus_rates(mode)
    race = measure_reference_race(mode)
    backends = measure_backends(mode)
    ilp = measure_ilp_quality(mode)
    tracer = measure_tracer_overhead(mode)
    d695 = measure_d695()
    bit_identical = race["bit_identical"] and d695["bit_identical"]
    return {
        "schema": "repro/bench-sched/v2",
        "mode": mode,
        "generated": time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime()) + "Z",
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "corpus_rates": corpus,
        "reference_race": race,
        "backend_race": backends,
        "ilp_quality": ilp,
        "tracer_overhead": tracer,
        "d695": d695,
        "acceptance": {
            "speedup_target": SPEEDUP_TARGET,
            "speedup_measured": race["speedup"],
            "bit_identical": bit_identical,
            "ok": race["speedup"] >= SPEEDUP_TARGET and bit_identical,
        },
    }


def check_regression(doc: dict, baseline_path: str) -> tuple[bool, str]:
    """Compare the measured rate against the committed baseline.

    On the platform the baseline was recorded on, the best-of-N
    disabled-tracer warm rate must stay within ``TIGHT_FACTOR`` (2%) of
    the committed one — the gate that keeps the observability layer
    free when off.  On a different machine (or against a pre-v2
    baseline without a ``tracer_overhead`` section) the check falls
    back to the coarse ``REGRESSION_FACTOR`` on the single-pass warm
    corpus rate, which tolerates hardware variation."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)

    def warm_rate(d):
        for row in d["corpus_rates"]:
            if row["profile"] == CHECK_PROFILE:
                return row["warm_chips_per_sec"]
        raise KeyError(f"no {CHECK_PROFILE!r} row in corpus_rates")

    same_platform = (
        doc["environment"].get("platform")
        == baseline["environment"].get("platform")
        and doc["environment"].get("cpus") == baseline["environment"].get("cpus")
    )
    base_tracer = baseline.get("tracer_overhead", {})
    if same_platform and "disabled_chips_per_sec" in base_tracer:
        committed = base_tracer["disabled_chips_per_sec"]
        measured = doc["tracer_overhead"]["disabled_chips_per_sec"]
        floor = committed / TIGHT_FACTOR
        label = f"disabled-tracer warm {CHECK_PROFILE} (2% gate)"
    else:
        committed, measured = warm_rate(baseline), warm_rate(doc)
        floor = committed / REGRESSION_FACTOR
        label = f"warm {CHECK_PROFILE} (2x cross-platform gate)"
    ok = measured >= floor
    verdict = "ok" if ok else "REGRESSION"
    return ok, (
        f"{label}: measured {measured:.2f} chips/sec vs "
        f"committed {committed:.2f} (floor {floor:.2f}): {verdict}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--out", default="BENCH_sched.json",
                        help="output path (default: ./BENCH_sched.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="small corpora for CI (seconds, not minutes)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a committed BENCH_sched.json; "
                             "exit 1 on a >2x warm-rate regression")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    doc = run(mode)
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for row in doc["corpus_rates"]:
        print(f"{row['profile']:>10}: cold {row['cold_chips_per_sec']:8.2f}"
              f"  warm {row['warm_chips_per_sec']:8.2f} chips/sec"
              f"  (cache x{row['cache_warm_speedup']:.2f},"
              f" floor gap {row['floor_gap']['mean']:.3f})")
    race = doc["reference_race"]
    print(f"reference race ({race['profile']}, {race['chips']} chips): "
          f"x{race['speedup']:.1f} vs reference"
          f" (target >= {SPEEDUP_TARGET:.0f}x,"
          f" bit-identical: {race['bit_identical']})")
    backends = doc["backend_race"]
    print(f"full flow ({backends['profile']}, {backends['chips']} chips): "
          f"serial {backends['serial_chips_per_sec']:.2f} vs process "
          f"{backends['process_chips_per_sec']:.2f} chips/sec "
          f"(x{backends['process_vs_serial']:.2f}, "
          f"{backends['workers']} workers)")
    ilp = doc["ilp_quality"]
    if "skipped" in ilp:
        print(f"ilp quality: skipped ({ilp['skipped']})")
    else:
        print(f"ilp quality ({ilp['chips']} tiny chips): session/ilp makespan "
              f"mean x{ilp['mean_ratio']:.3f}, max x{ilp['max_ratio']:.3f}, "
              f"optimal on {ilp['optimal_fraction']:.0%}")
    tracer = doc["tracer_overhead"]
    print(f"tracer overhead ({tracer['profile']}, {tracer['chips']} chips, "
          f"best of {tracer['passes']}): disabled "
          f"{tracer['disabled_chips_per_sec']:.2f} vs enabled "
          f"{tracer['enabled_chips_per_sec']:.2f} chips/sec "
          f"({tracer['enabled_overhead_percent']:+.2f}% when on)")
    d695 = doc["d695"]
    print(f"d695: {d695['total_time']} cycles in {d695['sessions']} sessions, "
          f"{d695['incremental_ms']:.1f} ms vs {d695['reference_ms']:.1f} ms reference")
    print(f"wrote {args.out}")

    ok = doc["acceptance"]["ok"]
    if args.check:
        check_ok, message = check_regression(doc, args.check)
        print(message)
        ok = ok and check_ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
