"""Scheduler scalability (figure-style series, extension).

The paper integrates one chip; a platform must also scale.  This bench
times the session scheduler on synthetic SOCs of growing size and checks
the result quality stays sane (never worse than serial)."""

from repro.bist import MARCH_C_MINUS, plan_bist
from repro.sched import schedule_serial, schedule_sessions, tasks_from_soc
from repro.soc.synth import synth_soc
from repro.util import Table


def _tasks(soc):
    plan = plan_bist(soc.memories, MARCH_C_MINUS, power_budget=soc.power_budget)
    return tasks_from_soc(soc) + plan.to_tasks()


def test_schedule_8_cores(benchmark):
    soc = synth_soc(n_cores=8, n_memories=6, test_pins=56, seed=3)
    tasks = _tasks(soc)
    result = benchmark(schedule_sessions, soc, tasks)
    assert result.total_time > 0


def test_schedule_16_cores(benchmark):
    soc = synth_soc(n_cores=16, n_memories=10, test_pins=72, power_budget=16.0, seed=3)
    tasks = _tasks(soc)
    result = benchmark.pedantic(schedule_sessions, args=(soc, tasks), rounds=2, iterations=1)
    assert result.total_time > 0


def test_quality_vs_size(benchmark):
    """Across sizes, session scheduling beats the serial baseline."""

    def sweep():
        rows = []
        for n_cores, pins in ((4, 40), (8, 56), (12, 64), (16, 72)):
            soc = synth_soc(n_cores=n_cores, n_memories=n_cores // 2,
                            test_pins=pins, power_budget=16.0, seed=5)
            tasks = _tasks(soc)
            session = schedule_sessions(soc, tasks)
            serial = schedule_serial(soc, tasks)
            rows.append((n_cores, len(tasks), session.total_time, serial.total_time))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["Cores", "Tasks", "Session total", "Serial total"],
        title="Scheduler quality vs SOC size (synthetic)",
    )
    for n_cores, n_tasks, session, serial in rows:
        table.add_row([n_cores, n_tasks, f"{session:,}", f"{serial:,}"])
    print()
    print(table.render())
    for _, _, session, serial in rows:
        assert session <= serial
