"""E4 / Section 3 — DFT area overhead.

Paper: "The area of the WBR cell is equivalent to 26 two-input NAND
gates.  The Test Controller and TAM multiplexer require about 371 and
132 gates, respectively — their hardware overhead is only about 0.3%."

We measure our generated netlists in the same NAND2-equivalent units.
Exact gate counts depend on the schedule the generators consume (our
DSC schedule has more sessions but narrower TAMs than the authors'),
so the assertions pin the *scale*: a ~26-gate WBR cell, a controller
and mux of tens-to-hundreds of gates, and sub-1% chip overhead.
"""

from benchmarks.conftest import paper_vs_ours
from repro.wrapper import WBC_AREA, make_wbc_cell


def test_wbr_cell_area(benchmark):
    module = benchmark(make_wbc_cell)
    area = module.area()
    print()
    print(
        paper_vs_ours(
            "E4a: wrapper boundary cell",
            [("WBR cell area (NAND2 eq.)", 26, f"{area:.1f}")],
        )
    )
    assert area == WBC_AREA
    assert 24 <= area <= 28  # the paper's 26, within one gate


def test_controller_tam_overhead(benchmark, dsc_integration):
    report = benchmark.pedantic(
        lambda: dsc_integration.dft_area_report, rounds=1, iterations=1
    )
    gates = {item.name: item.gates for item in report.items}
    print()
    print(report.render())
    print()
    print(
        paper_vs_ours(
            "E4b: insertion overhead",
            [
                ("Test Controller gates", "~371", f"{gates['Test Controller']:.0f}"),
                ("TAM multiplexer gates", "~132", f"{gates['TAM multiplexer']:.0f}"),
                ("overhead", "~0.3%", f"{report.overhead_percent:.2f}%"),
            ],
        )
    )
    assert 50 <= gates["Test Controller"] <= 1000
    assert 5 <= gates["TAM multiplexer"] <= 500
    assert report.overhead_percent < 1.0


def test_wrapper_cell_population(benchmark, dsc_integration):
    """WBC count per core = its functional IO bits (Table 1)."""

    def tally():
        return {name: w.wbc_count for name, w in dsc_integration.wrappers.items()}

    counts = benchmark(tally)
    print()
    print(
        paper_vs_ours(
            "E4c: boundary-cell population",
            [
                ("USB WBCs (PI+PO)", 221 + 104, counts["USB"]),
                ("TV WBCs", 25 + 40, counts["TV"]),
                ("JPEG WBCs", 165 + 104, counts["JPEG"]),
            ],
        )
    )
    assert counts == {"USB": 325, "TV": 65, "JPEG": 269}
