"""E2 / Section 3 headline — session-based vs non-session test time.

Paper: "the session-based approach (with three test sessions) has the
shortest total test time — 4,371,194 clock cycles as opposed to
4,713,935 cycles by non-session-based approach" and "parallel testing
may not be better than serial testing" under test-IO limits.

Our substrate is a model, not the authors' testbed, so absolute cycles
differ; the *shape* asserted here: session-based < serial < non-session,
with a mid-single-digit-or-larger non-session penalty, at a few million
total cycles.
"""


from benchmarks.conftest import paper_vs_ours
from repro.bist import MARCH_C_MINUS, plan_bist
from repro.sched import (
    schedule_nonsession,
    schedule_serial,
    schedule_sessions,
    tasks_from_soc,
)
from repro.soc.dsc import build_dsc_chip

PAPER_SESSION = 4_371_194
PAPER_NONSESSION = 4_713_935
PAPER_SESSIONS = 3


def _tasks(soc):
    plan = plan_bist(soc.memories, MARCH_C_MINUS, power_budget=soc.power_budget)
    return tasks_from_soc(soc) + plan.to_tasks()


def test_session_based_schedule(benchmark, dsc_soc):
    tasks = _tasks(dsc_soc)
    result = benchmark(schedule_sessions, dsc_soc, tasks)
    print()
    print(result.render())
    assert result.total_time > 0


def test_nonsession_schedule(benchmark, dsc_soc):
    tasks = _tasks(dsc_soc)
    result = benchmark(schedule_nonsession, dsc_soc, tasks)
    assert result.total_time > 0


def test_headline_comparison(benchmark, dsc_soc):
    tasks = _tasks(dsc_soc)
    session = benchmark.pedantic(
        schedule_sessions, args=(dsc_soc, tasks), rounds=1, iterations=1
    )
    nonsession = schedule_nonsession(dsc_soc, tasks)
    serial = schedule_serial(dsc_soc, tasks)
    penalty = 100 * (nonsession.total_time / session.total_time - 1)
    paper_penalty = 100 * (PAPER_NONSESSION / PAPER_SESSION - 1)
    print()
    print(
        paper_vs_ours(
            "E2: session-based vs non-session (DSC, logic + memory BIST)",
            [
                ("session-based cycles", f"{PAPER_SESSION:,}", f"{session.total_time:,}"),
                ("non-session cycles", f"{PAPER_NONSESSION:,}", f"{nonsession.total_time:,}"),
                ("non-session penalty", f"+{paper_penalty:.1f}%", f"+{penalty:.1f}%"),
                ("test sessions", PAPER_SESSIONS, session.session_count),
                ("serial baseline", "n/a", f"{serial.total_time:,}"),
            ],
        )
    )
    # shape assertions
    assert session.total_time < nonsession.total_time
    assert session.total_time < serial.total_time
    assert serial.total_time < nonsession.total_time  # "parallel not better than serial"
    assert penalty >= 3.0
    assert 1_000_000 < session.total_time < 10_000_000  # same decade as the paper


def test_pin_budget_crossover(benchmark, dsc_soc):
    """The effect is IO-driven: with generous pins, non-session catches
    up or wins; under tight pins it loses (the paper's premise)."""
    from repro.soc.dsc import build_dsc_chip

    def sweep():
        rows = []
        for pins in (26, 28, 32, 40, 56):
            soc = build_dsc_chip(test_pins=pins)
            tasks = _tasks(soc)
            session = schedule_sessions(soc, tasks)
            try:
                nonsession = schedule_nonsession(soc, tasks).total_time
                ratio = nonsession / session.total_time
                rows.append((pins, session.total_time, nonsession, f"{ratio:.3f}"))
            except Exception:
                rows.append((pins, session.total_time, "infeasible", "-"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.util import Table

    table = Table(["Pins", "Session", "Non-session", "Ratio"],
                  title="Crossover sweep (figure-style series)")
    for row in rows:
        table.add_row(list(row))
    print()
    print(table.render())
    tight = [r for r in rows if r[0] <= 28 and r[2] != "infeasible"]
    loose = [r for r in rows if r[0] >= 40 and r[2] != "infeasible"]
    assert all(float(r[3]) > 1.0 for r in tight)  # session wins when IO binds
    assert any(float(r[3]) <= 1.05 for r in loose)  # gap closes when it doesn't
