"""E7 / Fig. 2 — the shared-controller memory BIST architecture.

"The tester can access all the on-chip memories via a single shared
BIST Controller, while one or more Sequencers can be used to generate
March-based test algorithms.  Each TPG attached to the memory will
translate the March-based test commands to the respective RAM signals."

The benchmark compiles BIST for the DSC's 22 heterogeneous SRAMs and
exercises exactly that structure: 1 controller, 1 sequencer, 22 TPGs,
heterogeneous sizes sharing March phases.
"""

from benchmarks.conftest import paper_vs_ours
from repro.bist import Brains, BrainsConfig, MARCH_C_MINUS, StuckAtFault, march_cycles
from repro.soc.dsc import build_dsc_memories


def _engine():
    return Brains().compile(
        build_dsc_memories(), BrainsConfig(march=MARCH_C_MINUS, power_budget=8.0)
    )


def test_compile_bist(benchmark):
    engine = benchmark(_engine)
    print()
    print(engine.plan.render())
    print()
    print(engine.area_table().render())
    print()
    print(
        paper_vs_ours(
            "E7: Fig. 2 architecture",
            [
                ("BIST controllers", "1 (shared)", 1),
                ("sequencers", ">= 1", len(engine.sequencer_modules)),
                ("TPGs", "one per memory", len(engine.tpg_modules)),
                ("memories", "tens (heterogeneous)", engine.plan.memory_count),
            ],
        )
    )
    assert len(engine.sequencer_modules) == 1
    assert len(engine.tpg_modules) == 22
    types = {m.mem_type.value for m in engine.specs}
    assert types == {"SP", "TP"}


def test_behavioral_run_fault_free(benchmark):
    engine = _engine()
    result = benchmark.pedantic(
        lambda: engine.run(model_words=64), rounds=3, iterations=1
    )
    assert result.all_pass
    assert result.total_cycles == engine.plan.total_cycles


def test_behavioral_run_localizes_fault(benchmark):
    engine = _engine()

    def run():
        return engine.run(faults={"jpgbuf2": StuckAtFault(9, 0)}, model_words=64)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.failing == ["jpgbuf2"]
    print()
    print(f"injected SAF0 in jpgbuf2 -> failing memories: {result.failing}")


def test_grouping_speedup(benchmark):
    """Concurrent groups vs serial memory-by-memory testing."""
    engine = benchmark.pedantic(_engine, rounds=1, iterations=1)
    plan = engine.plan
    speedup = plan.serial_cycles / plan.total_cycles
    print()
    print(
        paper_vs_ours(
            "Grouped BIST vs serial",
            [
                ("serial cycles", "-", f"{plan.serial_cycles:,}"),
                ("grouped cycles", "-", f"{plan.total_cycles:,}"),
                ("speedup", "> 1 under power cap", f"{speedup:.2f}x"),
            ],
        )
    )
    assert speedup > 1.5
    for group in plan.groups:
        assert group.power <= 8.0 + 1e-9
        assert group.cycles(MARCH_C_MINUS) == max(
            march_cycles(MARCH_C_MINUS, m.words, m.is_two_port) for m in group.memories
        )
