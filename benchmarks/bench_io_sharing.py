"""E3 / Section 3 — test-IO reduction by sharing.

Paper: 19 dedicated control IOs for the three large cores; "with shared
test IOs, the test control IO counts are reduced."  Our sharing policy:
clock domains keep pins, resets share one, SEs share one, TEs move into
the generated test controller (E4 pays the gates).
"""

from benchmarks.conftest import paper_vs_ours
from repro.sched import SharingPolicy, control_pins, io_sharing_report, tasks_from_soc


def _per_core_tasks(dsc_soc):
    return list({t.core_name: t for t in tasks_from_soc(dsc_soc)}.values())


def test_io_sharing_reduction(benchmark, dsc_soc):
    tasks = _per_core_tasks(dsc_soc)
    shared = benchmark(control_pins, tasks, SharingPolicy())
    dedicated = control_pins(tasks, SharingPolicy.none())
    print()
    print(io_sharing_report(tasks).render())
    print()
    print(
        paper_vs_ours(
            "E3: control-IO sharing",
            [
                ("dedicated control IOs", 19, dedicated),
                ("after sharing", "reduced", shared),
                ("reduction", "-", f"-{dedicated - shared} pins"),
            ],
        )
    )
    assert dedicated == 19
    assert shared < dedicated
    assert shared == 8  # 6 clock domains + shared reset + shared SE


def test_policy_knobs(benchmark, dsc_soc):
    """Each sharing rule contributes a measurable reduction."""
    tasks = _per_core_tasks(dsc_soc)

    def sweep():
        rows = []
        for name, policy in (
            ("none (dedicated)", SharingPolicy.none()),
            ("share resets", SharingPolicy(True, False, False)),
            ("+ share SEs", SharingPolicy(True, True, False)),
            ("+ TEs from controller", SharingPolicy(True, True, True)),
        ):
            rows.append((name, control_pins(tasks, policy)))
        return rows

    rows = benchmark(sweep)
    from repro.util import Table

    table = Table(["Policy", "Control pins"], title="Sharing-policy ablation")
    for row in rows:
        table.add_row(list(row))
    print()
    print(table.render())
    pins = [r[1] for r in rows]
    assert pins[0] == 19
    assert pins == sorted(pins, reverse=True)
    assert pins[-1] == 8
