"""Batch integration throughput: ``integrate_many`` vs. a serial loop.

The paper integrates one chip at a time ("5 minutes" per chip on 2005
hardware); a production platform sweeps design spaces.  This benchmark
pushes a DSC pin-budget sweep through ``Steac.integrate_many`` and
compares wall clock against the equivalent serial ``integrate()`` loop,
recording the measured speedup in the pytest-benchmark JSON
(``--benchmark-json`` → ``extra_info.batch_speedup``).
"""

from benchmarks.conftest import paper_vs_ours
from repro.core import Steac, SteacConfig
from repro.soc.dsc import build_dsc_chip

PIN_SWEEP = (20, 24, 28, 32, 36, 40, 44, 48)


def _socs():
    return [build_dsc_chip(test_pins=pins) for pins in PIN_SWEEP]


def _config() -> SteacConfig:
    # comparison off: benchmark the flow itself, not the strategy race
    return SteacConfig(compare_strategies=False)


def test_batch_vs_serial_loop(benchmark):
    """integrate_many over the sweep, with the serial loop as the paper-
    style baseline; results must match the serial loop exactly."""
    steac = Steac(_config())

    import time

    started = time.perf_counter()
    serial_results = [steac.integrate(soc) for soc in _socs()]
    serial_seconds = time.perf_counter() - started

    batch = benchmark.pedantic(
        lambda: steac.integrate_many(_socs(), workers=4), rounds=3, iterations=1
    )

    assert batch.ok and len(batch) == len(PIN_SWEEP)
    # deterministic, order-preserving, and equal to the serial loop
    assert [i.result.total_test_time for i in batch] == [
        r.total_test_time for r in serial_results
    ]

    speedup = serial_seconds / max(batch.elapsed_seconds, 1e-9)
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["batch_seconds"] = round(batch.elapsed_seconds, 4)
    benchmark.extra_info["batch_speedup"] = round(speedup, 3)
    print()
    print(batch.render())
    print()
    print(
        paper_vs_ours(
            "batch integration throughput (8-chip DSC pin sweep)",
            [
                ("flow", "one chip at a time", f"{batch.workers} workers"),
                ("serial loop", f"{serial_seconds:.2f} s", ""),
                ("integrate_many", "", f"{batch.elapsed_seconds:.2f} s"),
                ("speedup", "1.0x", f"{speedup:.2f}x"),
            ],
        )
    )


def test_batch_isolates_failures(benchmark):
    """One infeasible chip in the sweep must not sink the batch."""
    socs = _socs()
    socs.insert(2, build_dsc_chip(test_pins=6))  # too few pins: infeasible
    batch = benchmark.pedantic(
        lambda: Steac(_config()).integrate_many(socs, workers=4), rounds=1, iterations=1
    )
    assert not batch.ok
    assert len(batch.failures) == 1 and batch.failures[0].index == 2
    assert len(batch.results) == len(PIN_SWEEP)
