"""E1 / Table 1 — core test information of the DSC chip.

Regenerates the paper's Table 1 from the SOC model and checks every
published quantity exactly; the benchmark times the model construction
plus tally (the "STIL Parser digests core info" step at DSC scale).
"""

from benchmarks.conftest import paper_vs_ours
from repro.soc.dsc import build_dsc_chip, table1

#: (core, TI, TO, PI, PO, chain lengths, scan patterns, functional patterns)
PAPER_TABLE1 = {
    "USB": (18, 4, 221, 104, [1629, 78, 293, 45], 716, 0),
    "TV": (6, 1, 25, 40, [577, 576], 229, 202_673),
    "JPEG": (1, 0, 165, 104, [], 0, 235_696),
}


def test_table1_reproduction(benchmark):
    soc = benchmark(build_dsc_chip)
    print()
    print(table1(soc).render())
    rows = []
    for name, (ti, to, pi, po, chains, scan_p, func_p) in PAPER_TABLE1.items():
        core = soc.core(name)
        counts = core.counts
        assert (counts.ti, counts.to, counts.pi, counts.po) == (ti, to, pi, po), name
        assert core.chain_lengths == chains, name
        assert core.scan_patterns == scan_p, name
        assert core.functional_patterns == func_p, name
        rows.append(
            (
                f"{name} TI/TO/PI/PO",
                f"{ti}/{to}/{pi}/{po}",
                f"{counts.ti}/{counts.to}/{counts.pi}/{counts.po}",
            )
        )
    print()
    print(paper_vs_ours("Table 1 check (exact)", rows))


def test_control_io_accounting(benchmark):
    """Section 3: '19 test IOs: 6 clock, 4 reset, 7 TE, 2 SE'."""
    soc = build_dsc_chip()

    def tally():
        needs = [soc.core(n).control_needs for n in ("USB", "TV", "JPEG")]
        total = needs[0] + needs[1] + needs[2]
        return total

    total = benchmark(tally)
    assert (total.clocks, total.resets, total.test_enables, total.scan_enables) == (6, 4, 7, 2)
    assert total.total == 19
    print()
    print(
        paper_vs_ours(
            "Control IO accounting",
            [
                ("total test IOs", 19, total.total),
                ("clock signals", 6, total.clocks),
                ("reset signals", 4, total.resets),
                ("test enable signals", 7, total.test_enables),
                ("SE signals", 2, total.scan_enables),
            ],
        )
    )
