"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark module reproduces one paper artifact (table, figure, or
quoted number — see each module's docstring) and *prints* the
reproduced rows next to the paper's values, so `pytest benchmarks/
--benchmark-only -s` regenerates the whole evaluation section.
"""

import pytest


def paper_vs_ours(title: str, rows: list[tuple[str, object, object]]) -> str:
    """Render a paper-vs-measured comparison block."""
    from repro.util import Table

    table = Table(["Quantity", "Paper", "This reproduction"], title=title)
    for row in rows:
        table.add_row(list(row))
    return table.render()


@pytest.fixture(scope="session")
def dsc_soc():
    from repro.soc.dsc import build_dsc_chip

    return build_dsc_chip()


@pytest.fixture(scope="session")
def dsc_integration():
    from repro.core import Steac
    from repro.soc.dsc import build_dsc_chip

    return Steac().integrate(build_dsc_chip())
