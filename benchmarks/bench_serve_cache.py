"""Serving-layer performance: cold integrate latency vs warm cache-hit
latency, and cached-job throughput under concurrent clients.

Unlike the pytest-benchmark modules around it, this is a standalone
harness (the quantity under test is a *service* round-trip, not a
library call)::

    PYTHONPATH=src python benchmarks/bench_serve_cache.py [-o BENCH_serve.json]

It boots an in-process server on a loopback port, runs the ISSUE's
acceptance scenario — two identical d695 integrate submissions, the
second answered from the content-addressed cache — and then hammers the
cached entry from 1/4/8 concurrent clients.  The measured numbers land
in ``BENCH_serve.json`` (schema ``repro/bench-serve/v1``), the repo's
performance-trajectory file for the serving layer.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import threading
import time

D695_JOB = {"kind": "integrate", "soc": {"name": "d695"}}
WARM_SAMPLES = 20
JOBS_PER_CLIENT = 25
CLIENT_COUNTS = (1, 4, 8)


def measure_latency(client) -> dict:
    """Cold (miss) vs warm (hit) round-trip latency for the d695 job."""
    t0 = time.perf_counter()
    first = client.submit(D695_JOB)
    first = client.wait(first["id"])
    cold_seconds = time.perf_counter() - t0
    assert first["status"] == "done" and first["cached"] is False
    first_text = client.result_text(first["id"])

    warm = []
    for _ in range(WARM_SAMPLES):
        t0 = time.perf_counter()
        job = client.submit(D695_JOB)
        warm.append(time.perf_counter() - t0)
        assert job["status"] == "done" and job["cached"] is True
    # bit-identical guarantee: the hit serves the stored bytes
    assert client.result_text(job["id"]) == first_text

    warm_median = statistics.median(warm)
    return {
        "job": D695_JOB,
        "result_schema": json.loads(first_text)["schema"],
        "cold_ms": round(cold_seconds * 1000, 3),
        "warm_ms": {
            "median": round(warm_median * 1000, 3),
            "min": round(min(warm) * 1000, 3),
            "max": round(max(warm) * 1000, 3),
            "samples": WARM_SAMPLES,
        },
        "speedup": round(cold_seconds / warm_median, 1),
        "bit_identical": True,
    }


def measure_throughput(base_url: str) -> list[dict]:
    """Cached-job round-trips per second at several client counts."""
    from repro.serve import ServeClient

    rows = []
    for clients in CLIENT_COUNTS:
        errors = []

        def hammer():
            try:
                local = ServeClient(base_url, timeout=30.0)
                for _ in range(JOBS_PER_CLIENT):
                    job = local.submit(D695_JOB)
                    if not job["cached"]:
                        raise RuntimeError("expected a cache hit")
            except Exception as exc:  # noqa: BLE001 — reported below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(clients)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        if errors:
            raise errors[0]
        jobs = clients * JOBS_PER_CLIENT
        rows.append({
            "clients": clients,
            "jobs": jobs,
            "seconds": round(elapsed, 4),
            "jobs_per_sec": round(jobs / elapsed, 1),
        })
    return rows


def run(out_path: str) -> dict:
    from repro.serve import ServeClient, create_server

    server = create_server(workers=4)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    client = ServeClient(server.url, timeout=60.0)
    client.wait_healthy()
    try:
        latency = measure_latency(client)
        throughput = measure_throughput(server.url)
        stats = client.stats()
    finally:
        server.stop()
        thread.join(timeout=10)

    doc = {
        "schema": "repro/bench-serve/v1",
        "generated": time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime()) + "Z",
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
            "server_workers": 4,
        },
        "latency": latency,
        "throughput_cached": throughput,
        "cache": {
            key: stats["cache"][key] for key in ("hits", "misses", "entries")
        },
        "acceptance": {
            "speedup_target": 10.0,
            "speedup_measured": latency["speedup"],
            "ok": latency["speedup"] >= 10.0 and latency["bit_identical"],
        },
    }
    with open(out_path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--out", default="BENCH_serve.json",
                        help="output path (default: ./BENCH_serve.json)")
    args = parser.parse_args(argv)
    doc = run(args.out)
    latency = doc["latency"]
    print(f"cold d695 integrate : {latency['cold_ms']:9.1f} ms")
    print(f"warm cache hit      : {latency['warm_ms']['median']:9.2f} ms (median)")
    print(f"speedup             : {latency['speedup']:9.1f} x"
          f"  (target >= {doc['acceptance']['speedup_target']:.0f}x)")
    for row in doc["throughput_cached"]:
        print(f"{row['clients']} client(s)         : {row['jobs_per_sec']:9.1f}"
              f" cached jobs/sec")
    print(f"wrote {args.out}")
    return 0 if doc["acceptance"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
