"""E5 + E6 / Fig. 1 — the STEAC end-to-end integration flow and runtime.

Paper: "the Test Wrappers, TAM, and Test Controller have been
automatically generated and inserted into the original test chip design
in 5 minutes, using a SUN Blade 1000 workstation with dual 750 MHz
processors and 2 GB RAM."  The claim reproduced is *automation at
interactive speed*; the benchmark measures our wall clock for the same
flow (STIL-digested cores → schedule → wrappers/TAM/controller →
validated netlist → translated patterns).
"""

from benchmarks.conftest import paper_vs_ours
from repro.core import Steac
from repro.soc.dsc import build_dsc_chip

PAPER_RUNTIME_SECONDS = 5 * 60


def test_full_dsc_integration(benchmark):
    result = benchmark.pedantic(
        lambda: Steac().integrate(build_dsc_chip()), rounds=3, iterations=1
    )
    print()
    print(result.report())
    print()
    print(
        paper_vs_ours(
            "E5: integration runtime",
            [
                ("platform", "Sun Blade 1000 (2x750 MHz)", "this machine"),
                ("wall clock", "~300 s", f"{result.runtime_seconds:.2f} s"),
            ],
        )
    )
    assert result.runtime_seconds < PAPER_RUNTIME_SECONDS
    assert result.netlist.top.validate(result.netlist) == []


def test_flow_produces_all_artifacts(benchmark):
    """Fig. 1's outputs all exist: scheduling results, DFT-ready netlist,
    wrapper/TAM/controller modules, translated patterns hook."""
    result = benchmark.pedantic(
        lambda: Steac().integrate(build_dsc_chip()), rounds=1, iterations=1
    )
    assert result.schedule.sessions
    assert set(result.wrappers) == {"USB", "TV", "JPEG"}
    assert result.tam_bus.width >= 1
    assert result.controller_module.area() > 0
    assert result.bist_engine is not None
    from repro.netlist import netlist_to_verilog

    verilog = netlist_to_verilog(result.netlist)
    assert "endmodule" in verilog
    print()
    print(f"artifacts: {len(result.netlist.modules)} netlist modules, "
          f"{len(verilog.splitlines()):,} Verilog lines, "
          f"{result.schedule.session_count} sessions")
