"""E10 — March algorithm fault-coverage vs cost (BRAINS's "evaluate the
memory test efficiency among different designs easily").

Reproduces the classical guarantees table (van de Goor) by exhaustive
fault simulation on a small array — the results BRAINS users rely on
when picking an algorithm: MATS+ covers SAF/AF only, March X adds
TF/CFin, March C- covers all unlinked static faults but not SOF,
MATS++/Y/B add SOF via read-after-write, retention variants add DRF.
"""

from benchmarks.conftest import paper_vs_ours
from repro.bist import (
    ALGORITHMS,
    MARCH_C_MINUS,
    coverage_table,
    simulate_coverage,
    with_retention,
)

SIZE = 12
PAIRS = 12

#: (algorithm, class) -> expected 100% guaranteed coverage
GUARANTEES = {
    ("MATS+", "SAF"): True,
    ("MATS+", "AF"): True,
    ("MATS+", "TF"): False,
    ("March X", "TF"): True,
    ("March X", "CFin"): True,
    ("March X", "CFid"): False,
    ("March C-", "SAF"): True,
    ("March C-", "TF"): True,
    ("March C-", "CFin"): True,
    ("March C-", "CFid"): True,
    ("March C-", "CFst"): True,
    ("March C-", "AF"): True,
    ("March C-", "SOF"): False,
    ("MATS++", "SOF"): True,
    ("March Y", "SOF"): True,
    ("March B", "SOF"): True,
}


def test_coverage_table(benchmark):
    table = benchmark.pedantic(
        lambda: coverage_table(list(ALGORITHMS), size=SIZE, coupling_pairs=PAIRS),
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())


def test_classical_guarantees(benchmark):
    def evaluate():
        results = {}
        for march in ALGORITHMS:
            results[march.name] = simulate_coverage(
                march, size=SIZE, coupling_pairs=PAIRS
            )
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = []
    for (name, cls), guaranteed in sorted(GUARANTEES.items()):
        coverage = results[name].coverage(cls)
        rows.append(
            (f"{name} vs {cls}", "100%" if guaranteed else "<100%", f"{coverage:.0f}%")
        )
        if guaranteed:
            assert coverage == 100.0, (name, cls)
        else:
            assert coverage < 100.0, (name, cls)
    print()
    print(paper_vs_ours("E10: classical March guarantees", rows))


def test_retention_extension(benchmark):
    """March C- + retention pauses reaches DRF; the base test cannot."""

    def run():
        base = simulate_coverage(MARCH_C_MINUS, size=SIZE, classes=("DRF",))
        ret = simulate_coverage(with_retention(MARCH_C_MINUS), size=SIZE, classes=("DRF",))
        return base, ret

    base, ret = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        paper_vs_ours(
            "Retention variant (extension)",
            [
                ("March C- DRF coverage", "0%", f"{base.coverage('DRF'):.0f}%"),
                ("March C- +ret DRF coverage", "100%", f"{ret.coverage('DRF'):.0f}%"),
            ],
        )
    )
    assert base.coverage("DRF") == 0.0
    assert ret.coverage("DRF") == 100.0


def test_cost_coverage_frontier(benchmark):
    """More ops per cell buys coverage: total coverage is (weakly)
    increasing along MATS -> MATS+ -> MATS++ and March X -> Y."""

    def run():
        return {
            m.name: simulate_coverage(m, size=SIZE, coupling_pairs=PAIRS).total_coverage
            for m in ALGORITHMS
        }

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert totals["MATS"] <= totals["MATS+"] <= totals["MATS++"]
    assert totals["March X"] <= totals["March Y"]
    assert totals["March C-"] >= totals["March Y"]
    print()
    print("cost/coverage frontier:",
          {k: f"{v:.1f}%" for k, v in sorted(totals.items(), key=lambda kv: kv[1])})
