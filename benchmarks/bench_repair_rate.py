"""Monte-Carlo repair-rate throughput: process fan-out vs. serial loop.

The repair subsystem's heavy workload is sampling thousands of defective
chips and running redundancy allocation on every failing memory — pure
CPU-bound Python, so the fan-out uses processes, unlike the thread-based
``integrate_many``.  Per-trial seeding makes the fanned-out tallies
bit-identical to the serial loop (asserted below); the measured speedup
lands in the pytest-benchmark JSON (``extra_info.mc_speedup``) and
scales with physical cores.
"""

import os
import time

from benchmarks.conftest import paper_vs_ours
from repro.repair import DefectModel, estimate_repair_rate
from repro.repair.redundancy import DEFAULT_REDUNDANCY
from repro.soc.dsc import build_dsc_memories

TRIALS = 2000
SEED = 7
MODEL = DefectModel(defects_per_mbit=2.0)


def _run(workers: int):
    return estimate_repair_rate(
        build_dsc_memories(),
        trials=TRIALS,
        seed=SEED,
        workers=workers,
        model=MODEL,
        default_spares=DEFAULT_REDUNDANCY,
    )


def test_fanout_vs_serial_loop(benchmark):
    """Process fan-out over the DSC's 22 memories, with the serial loop
    as baseline; tallies must match the serial loop exactly."""
    workers = min(4, os.cpu_count() or 1)

    started = time.perf_counter()
    serial = _run(workers=0)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    fanned = benchmark.pedantic(lambda: _run(workers=workers), rounds=1, iterations=1)
    fanned_seconds = time.perf_counter() - started

    assert fanned.to_dict() == serial.to_dict()
    assert fanned.trials == TRIALS

    speedup = serial_seconds / max(fanned_seconds, 1e-9)
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["fanout_seconds"] = round(fanned_seconds, 4)
    benchmark.extra_info["mc_workers"] = workers
    benchmark.extra_info["mc_speedup"] = round(speedup, 3)
    print()
    print(serial.render())
    print()
    print(
        paper_vs_ours(
            f"Monte-Carlo repair rate ({TRIALS} chips, 22 memories)",
            [
                ("defect model", "n/a (no repair in paper)",
                 f"Poisson {MODEL.defects_per_mbit}/Mbit"),
                ("serial loop", f"{serial_seconds:.2f} s", ""),
                ("process fan-out", "", f"{fanned_seconds:.2f} s ({workers} workers)"),
                ("speedup", "1.0x", f"{speedup:.2f}x"),
            ],
        )
    )


def test_allocator_cost_exact_vs_greedy(benchmark):
    """The exact branch-and-bound is affordable at Monte-Carlo volume
    only because must-repair prunes most bitmaps; greedy stays cheap."""
    timings = {}
    for allocator in ("greedy", "exact"):
        started = time.perf_counter()
        result = estimate_repair_rate(
            build_dsc_memories(),
            trials=200,
            seed=SEED,
            allocator=allocator,
            model=MODEL,
            default_spares=DEFAULT_REDUNDANCY,
        )
        timings[allocator] = time.perf_counter() - started
        # the heuristic can only lose chips the exact solver saves
        if allocator == "greedy":
            greedy_yield = result.effective_yield
        else:
            assert result.effective_yield >= greedy_yield
    benchmark.pedantic(
        lambda: estimate_repair_rate(
            build_dsc_memories(), trials=50, seed=SEED, allocator="greedy",
            model=MODEL, default_spares=DEFAULT_REDUNDANCY,
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["greedy_seconds_200"] = round(timings["greedy"], 4)
    benchmark.extra_info["exact_seconds_200"] = round(timings["exact"], 4)
