"""E11 (extension) — scheduling on the public ITC'02 d695 benchmark.

The paper's platform is exercised on a proprietary chip; d695 is the
standard public instance the TAM/scheduling literature quotes.  The
benchmark sweeps pin budgets (figure-style series), validates the
session heuristic against a MILP lower reference on a reduced instance,
and times the heuristic at realistic sizes.
"""


from repro.sched import (
    InfeasibleScheduleError,
    schedule_nonsession,
    schedule_serial,
    schedule_sessions,
    tasks_from_soc,
)
from repro.soc.itc02 import d695_soc
from repro.util import Table, format_cycles


def test_session_scheduler_speed_d695(benchmark):
    soc = d695_soc(test_pins=48)
    tasks = tasks_from_soc(soc)
    result = benchmark(schedule_sessions, soc, tasks)
    assert result.total_time > 0
    print()
    print(result.render())


def test_pin_sweep_series(benchmark):
    def sweep():
        rows = []
        for pins in (24, 32, 48, 64, 96):
            soc = d695_soc(test_pins=pins)
            tasks = tasks_from_soc(soc)
            session = schedule_sessions(soc, tasks)
            try:
                nonsession = format_cycles(schedule_nonsession(soc, tasks).total_time)
            except InfeasibleScheduleError:
                nonsession = "infeasible"
            serial = schedule_serial(soc, tasks)
            rows.append(
                (pins, session.total_time, session.session_count, nonsession,
                 serial.total_time)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        ["Pins", "Session", "#Sess", "Non-session", "Serial"],
        title="E11: d695 test time vs pin budget",
    )
    for pins, session, k, nonsession, serial in rows:
        table.add_row([pins, format_cycles(session), k, nonsession, format_cycles(serial)])
    print()
    print(table.render())
    times = [r[1] for r in rows]
    assert times == sorted(times, reverse=True)  # monotone in pins
    assert times[0] > 2 * times[-1]  # wide TAM buys >2x on d695


def test_ilp_validates_heuristic_small(benchmark):
    """On a 5-core d695 subset the heuristic matches the MILP optimum
    (or is within a few percent)."""
    from repro.sched.ilp import schedule_ilp
    from repro.soc import Soc
    from repro.soc.itc02 import d695_modules, module_to_core

    soc = Soc("d695_head", test_pins=32)
    for module in d695_modules()[:5]:
        soc.add_core(module_to_core(module))
    tasks = tasks_from_soc(soc)

    ilp = benchmark.pedantic(
        lambda: schedule_ilp(soc, tasks, n_sessions=2, time_limit=60),
        rounds=1,
        iterations=1,
    )
    heuristic = schedule_sessions(soc, tasks, n_sessions=2)
    gap = 100 * (heuristic.total_time / ilp.total_time - 1)
    print()
    print(f"ILP optimum {ilp.total_time:,} vs heuristic {heuristic.total_time:,} "
          f"(gap {gap:.2f}%)")
    assert ilp.total_time <= heuristic.total_time
    assert gap < 10.0
