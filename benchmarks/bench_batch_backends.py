"""Batch executor backends: serial vs thread vs process wall clock.

The motivation for the picklable :class:`repro.sched.timecalc.ScanTimeModel`
refactor: with closure-based time models the batch front end was pinned
to threads, so corpus sweeps ran at single-core speed on GIL builds.
This benchmark pushes a generated ``d695-like`` corpus (spec-based work
items — each worker builds its chips from ``(profile, seed, index)``
coordinates) through every backend and records the measured speedups in
the pytest-benchmark JSON:

* ``extra_info.process_vs_serial`` / ``process_vs_thread`` — the
  multi-core win; the ISSUE's acceptance bar is >1.5x over the thread
  backend *on a multi-core runner* (single-core runners record the
  number without asserting it).
* Results must be bit-identical across backends (the differential test
  in ``tests/test_batch_backends.py`` gates the same property tier-1).
"""

import os
import sys
import time

from benchmarks.conftest import paper_vs_ours
from repro.core import SteacConfig, integrate_many
from repro.gen import scenario_specs

#: ≥16 chips, per the acceptance criterion for the d695-like corpus.
CORPUS_SIZE = 16

#: Assert the multi-core speedup only where multiple cores exist.
MIN_CORES_FOR_SPEEDUP_GATE = 4


def _specs():
    return scenario_specs(CORPUS_SIZE, profiles=("d695-like",), base_seed=0)


def _config() -> SteacConfig:
    return SteacConfig(compare_strategies=False)


def _run(backend: str, workers: int | None = None):
    started = time.perf_counter()
    batch = integrate_many(_specs(), config=_config(), workers=workers, backend=backend)
    return batch, time.perf_counter() - started


def test_backend_race(benchmark):
    """Serial / thread / process over the same 16-chip generated corpus;
    the process pool is the benchmarked subject."""
    workers = min(CORPUS_SIZE, os.cpu_count() or 1)

    serial, serial_s = _run("serial")
    threaded, thread_s = _run("thread", workers)
    processed = benchmark.pedantic(
        lambda: integrate_many(
            _specs(), config=_config(), workers=workers, backend="process"
        ),
        rounds=3,
        iterations=1,
    )
    process_s = processed.elapsed_seconds

    assert serial.ok and threaded.ok and processed.ok
    # make sure the timing below really measured the process pool
    assert (serial.backend, threaded.backend, processed.backend) == (
        "serial", "thread", "process",
    )
    # bit-identical outcomes whatever executes them
    reference = [item.result.total_test_time for item in serial]
    assert [item.result.total_test_time for item in threaded] == reference
    assert [item.result.total_test_time for item in processed] == reference

    vs_serial = serial_s / max(process_s, 1e-9)
    vs_thread = thread_s / max(process_s, 1e-9)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["serial_seconds"] = round(serial_s, 4)
    benchmark.extra_info["thread_seconds"] = round(thread_s, 4)
    benchmark.extra_info["process_seconds"] = round(process_s, 4)
    benchmark.extra_info["process_vs_serial"] = round(vs_serial, 3)
    benchmark.extra_info["process_vs_thread"] = round(vs_thread, 3)
    print()
    print(
        paper_vs_ours(
            f"batch backends ({CORPUS_SIZE}-chip d695-like corpus, "
            f"{workers} workers, {os.cpu_count()} CPUs)",
            [
                ("flow", "one chip at a time", "spec-based fan-out"),
                ("serial", f"{serial_s:.2f} s", "1.0x"),
                ("thread pool", f"{thread_s:.2f} s", f"{serial_s / max(thread_s, 1e-9):.2f}x"),
                ("process pool", f"{process_s:.2f} s", f"{vs_serial:.2f}x"),
                ("process vs thread", "", f"{vs_thread:.2f}x"),
            ],
        )
    )
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_SPEEDUP_GATE and gil_enabled:
        # the acceptance bar — only meaningful with real parallel hardware
        # and a GIL (free-threaded builds let the thread pool scale too)
        assert vs_thread > 1.5, (
            f"process backend only {vs_thread:.2f}x over threads "
            f"with {os.cpu_count()} CPUs"
        )


def test_spec_transfer_is_cheap(benchmark):
    """Shipping (profile, seed, index) coordinates must dwarf shipping
    pickled SOC models: the specs for a whole corpus pickle smaller than
    a single generated chip."""
    import pickle

    specs = _specs()
    built = [spec.build() for spec in specs]
    spec_bytes = len(pickle.dumps(specs))
    soc_bytes = len(pickle.dumps(built[0]))
    benchmark.pedantic(lambda: [s.build() for s in _specs()[:4]], rounds=3, iterations=1)
    benchmark.extra_info["corpus_spec_bytes"] = spec_bytes
    benchmark.extra_info["one_soc_bytes"] = soc_bytes
    print(f"\n{CORPUS_SIZE} specs pickle to {spec_bytes} B; "
          f"one generated SOC pickles to {soc_bytes} B")
    assert spec_bytes < soc_bytes
