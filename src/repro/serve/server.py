"""The HTTP face of the job queue — stdlib only
(:class:`http.server.ThreadingHTTPServer` + :mod:`json`).

Endpoints::

    GET  /healthz            liveness probe                     -> 200
    GET  /stats              pool + cache counters              -> 200
    GET  /metrics            Prometheus text exposition         -> 200
    GET  /jobs               job listing (no result bodies)     -> 200
    GET  /jobs/<id>          one job, result inline when done   -> 200/404
    GET  /jobs/<id>/result   the raw result document, verbatim  -> 200/404/409
    POST /jobs               submit a job                       -> 201/400
    POST /shutdown           drain in-flight jobs and exit      -> 200

``GET /metrics`` renders the process-wide :data:`repro.obs.METRICS`
registry (scheduler counters, evaluator-memo and scan-time caches,
pipeline stage histograms, job counters) plus this server's own result
cache and job table as extra samples — one scrape covers all three
caches.  While a batch or fuzz job runs, its live scenario counters
also appear on ``GET /jobs/<id>`` under ``progress``.

``POST /jobs`` answers with the full job document, so a submit that
hits the result cache returns ``status: "done"``, ``cached: true`` and
the result inline — one round-trip.  ``/jobs/<id>/result`` serves the
stored text byte-for-byte, which is what makes the cache's
bit-identical guarantee observable on the wire.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.serve.cache import ResultCache
from repro.serve.jobs import JobManager
from repro.serve.keys import JobError

#: Largest accepted request body (a generated "huge"-profile chip's
#: ``.soc`` text is ~100 KiB; 16 MiB leaves two orders of headroom).
MAX_BODY_BYTES = 16 * 1024 * 1024


def render_server_metrics(manager: JobManager) -> str:
    """The ``/metrics`` exposition: the global registry plus samples
    scoped to this server instance (its result cache and job table,
    which live on the manager rather than in the process registry)."""
    from repro.obs import METRICS

    cache = manager.cache.stats()
    stats = manager.stats()
    extra = [
        ("cache.result.hits", "counter", None, cache["hits"]),
        ("cache.result.misses", "counter", None, cache["misses"]),
        ("cache.result.disk_hits", "counter", None, cache["disk_hits"]),
        ("cache.result.evictions", "counter", None, cache["evictions"]),
        ("cache.result.entries", "gauge", None, cache["entries"]),
        ("cache.result.capacity", "gauge", None, cache["capacity"]),
        ("serve.uptime_seconds", "gauge", None, stats["uptime_seconds"]),
        ("serve.workers", "gauge", None, stats["workers"]),
    ]
    for state in ("queued", "running", "done", "failed"):
        extra.append(
            ("serve.jobs.retained", "gauge", {"state": state},
             stats["jobs"][state])
        )
    return METRICS.render_prometheus(extra=extra)


class ServeHandler(BaseHTTPRequestHandler):
    """Request router; the job manager lives on the server object."""

    server: "ServeServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_text(
        self, status: int, text: str, content_type: str = "application/json"
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc: dict) -> None:
        self._send_text(status, json.dumps(doc, indent=2))

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[dict]:
        """The request's JSON body, or ``None`` after answering 400/413."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_error(413, f"request body must be 0..{MAX_BODY_BYTES} bytes")
            return None
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error(400, f"request body is not valid JSON: {exc}")
            return None
        if not isinstance(doc, dict):
            self._send_error(400, "request body must be a JSON object")
            return None
        return doc

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        manager = self.server.manager
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, {"ok": True})
        elif path == "/stats":
            self._send_json(200, manager.stats())
        elif path == "/metrics":
            self._send_text(
                200,
                render_server_metrics(manager),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/jobs":
            self._send_json(
                200,
                {"jobs": [job.to_dict(include_result=False) for job in manager.jobs()]},
            )
        elif path.startswith("/jobs/"):
            parts = path.split("/")[2:]
            job = manager.get(parts[0])
            if job is None:
                self._send_error(404, f"no such job: {parts[0]!r}")
            elif parts[1:] == ["result"]:
                if job.result_text is None:
                    self._send_error(
                        409, f"job {job.id} has no result (status: {job.status})"
                    )
                else:
                    self._send_text(200, job.result_text)
            elif parts[1:]:
                self._send_error(404, f"unknown path: {self.path!r}")
            else:
                self._send_json(200, job.to_dict())
        else:
            self._send_error(404, f"unknown path: {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/jobs":
            payload = self._read_body()
            if payload is None:
                return
            try:
                job = self.server.manager.submit(payload)
            except JobError as exc:
                self._send_error(400, str(exc))
                return
            self._send_json(201, job.to_dict())
        elif path == "/shutdown":
            self._send_json(200, {"ok": True, "draining": True})
            # answer first, then stop the server from outside this
            # handler thread (shutdown() deadlocks if called from a
            # request being served)
            threading.Thread(target=self.server.stop, daemon=True).start()
        else:
            self._send_error(404, f"unknown path: {self.path!r}")


class ServeServer(ThreadingHTTPServer):
    """Threading HTTP server owning a :class:`JobManager`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int] = ("127.0.0.1", 0),
        workers: int = 2,
        backend: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        verbose: bool = False,
        max_jobs: Optional[int] = None,
    ):
        super().__init__(address, ServeHandler)
        self.manager = JobManager(
            workers=workers, cache=cache, default_backend=backend, max_jobs=max_jobs
        )
        self.verbose = verbose
        self._stopped = threading.Event()

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def stop(self, drain: bool = True) -> None:
        """Drain the job queue and stop accepting requests (idempotent)."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.manager.close(drain=drain)
        self.shutdown()

    def run(self) -> None:
        """Serve until :meth:`stop` (or Ctrl-C, which drains first)."""
        try:
            self.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:
            self.stop()
        finally:
            self.server_close()


#: Default job-table cap for servers built through :func:`create_server`
#: (the CLI's ``--max-jobs``): long-running services must not grow the
#: table without bound.  Pass ``max_jobs=None`` for the unbounded table.
DEFAULT_MAX_JOBS = 4096


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    backend: Optional[str] = None,
    cache_dir: Optional[str] = None,
    cache_capacity: int = 256,
    verbose: bool = False,
    max_jobs: Optional[int] = DEFAULT_MAX_JOBS,
) -> ServeServer:
    """Build a ready-to-run server (``port=0`` picks a free port —
    read it back from ``server.port``)."""
    cache = ResultCache(capacity=cache_capacity, cache_dir=cache_dir)
    return ServeServer(
        (host, port), workers=workers, backend=backend, cache=cache,
        verbose=verbose, max_jobs=max_jobs,
    )
