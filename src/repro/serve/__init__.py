"""Integration-as-a-service: an HTTP job queue over the STEAC platform.

The platform's four entry points — ``integrate``, ``batch``, ``fuzz``,
``repair`` — become *submitted jobs*: ``POST /jobs`` returns a job id,
``GET /jobs/<id>`` reports progress, and finished jobs carry the exact
wire documents (``repro/integration-result/v4`` and friends) the CLI
emits, so shell and HTTP consumers are byte-comparable.

Results are content-addressed: the cache key is sha256 over the
normalized job config plus the :meth:`repro.soc.Soc.digest` of every
chip involved, so resubmitting identical work — inline ``.soc`` text,
generator coordinates, or a named benchmark — answers instantly from
the :class:`ResultCache` (in-memory LRU, optional on-disk store) with
``cached: true`` and a bit-identical document.

Everything is stdlib (``http.server``, ``json``, ``urllib``): the
service adds no dependencies over the library it wraps.  Start one with
``python -m repro serve`` or in-process via :func:`create_server`.

Fuzz *campaigns* (:mod:`repro.gen.campaign`) are deliberately **not** a
job kind.  Every served job is a cacheable request/response pair — a
pure function of its normalized payload, safe to content-address and
replay from the :class:`ResultCache`.  A campaign is the opposite shape:
a long-lived, stateful directory on disk (checkpoint, append-only
scenario log, finding repros) whose whole point is surviving interrupts
and resuming *in place*.  Caching one would be wrong and proxying one
would just forward filesystem mutations.  Campaigns stay CLI-only
(``python -m repro campaign run/resume/status``); a served client that
wants soak coverage submits ``fuzz`` jobs in seed-range slices instead.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import JOB_SCHEMA, Job, JobManager
from repro.serve.keys import (
    JOB_KINDS,
    JobError,
    cache_key,
    normalize_payload,
)
from repro.serve.runners import content_address, execute
from repro.serve.server import DEFAULT_MAX_JOBS, ServeServer, create_server

__all__ = [
    "DEFAULT_MAX_JOBS",
    "JOB_KINDS",
    "JOB_SCHEMA",
    "Job",
    "JobError",
    "JobManager",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "cache_key",
    "content_address",
    "create_server",
    "execute",
    "normalize_payload",
]
