"""Content-addressed result cache: in-memory LRU over an optional
on-disk store.

Keys are sha256 hex digests (see :mod:`repro.serve.keys`) — the content
address of *what was asked*: the SOC digest(s) plus the normalized job
configuration.  Values are the serialized result documents, stored as
the exact JSON-native text that first produced them, so a hit returns a
**bit-identical** result to the miss that populated it.

Two tiers:

* an in-memory LRU (``capacity`` entries, thread-safe) absorbs the hot
  set — users sweeping the same benchmark chips hit here in
  microseconds;
* an optional directory store (``cache_dir``) persists every entry as
  ``<key>.json`` (written atomically: temp file + rename), so cache
  contents survive server restarts and can be shared between servers on
  one filesystem.  A memory miss that hits disk is promoted back into
  the LRU.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional


class ResultCache:
    """Thread-safe LRU + optional directory store for result documents.

    Args:
        capacity: in-memory entry budget (least-recently-*used* entry is
            evicted first; 0 disables the memory tier, leaving a purely
            on-disk cache).
        cache_dir: directory for the persistent tier (created on first
            write; ``None`` keeps the cache memory-only).
    """

    def __init__(self, capacity: int = 256, cache_dir: str | Path | None = None):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: OrderedDict[str, str] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0

    # -- tiers -------------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            # keys are sha256 hex by construction; refuse anything that
            # could traverse outside the store
            raise ValueError(f"cache key {key!r} is not a hex digest")
        return self.cache_dir / f"{key}.json"

    def _remember(self, key: str, text: str) -> None:
        """Insert into the LRU (caller holds the lock)."""
        if self.capacity == 0:
            return
        self._entries[key] = text
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    # -- public API --------------------------------------------------------

    def get(self, key: str) -> Optional[str]:
        """The stored text for ``key``, or ``None`` on a miss.  Disk
        hits are promoted into the memory tier."""
        path = self._disk_path(key)
        with self._lock:
            text = self._entries.get(key)
            if text is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return text
            if path is not None and path.is_file():
                text = path.read_text()
                self._remember(key, text)
                self.hits += 1
                self.disk_hits += 1
                return text
            self.misses += 1
            return None

    def put(self, key: str, text: str) -> None:
        """Store ``text`` under ``key`` in both tiers."""
        path = self._disk_path(key)
        with self._lock:
            self._remember(key, text)
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                # atomic publish: a reader never sees a torn entry
                fd, tmp = tempfile.mkstemp(
                    dir=str(path.parent), prefix=f".{key[:8]}-", suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "w") as handle:
                        handle.write(text)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise

    def clear(self) -> None:
        """Drop the memory tier (the disk store, if any, is kept — it is
        the durable tier; delete the directory to reset it)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        path = self._disk_path(key)
        with self._lock:
            return key in self._entries or (path is not None and path.is_file())

    def stats(self) -> dict:
        """Counters for ``GET /stats``."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "disk": str(self.cache_dir) if self.cache_dir is not None else None,
            }
