"""Job payload normalization and content addressing.

Two requests are *the same work* iff they normalize to the same
document; the cache key is sha256 over that normalized form with every
chip reference replaced by its :meth:`repro.soc.Soc.digest` content
address.  Normalization fills defaults (an explicit
``"strategy": "session"`` and an omitted one address identically),
rejects unknown fields loudly, and strips the execution parameters
(``backend`` / ``workers``) that — per the batch differential guarantee
— cannot change a result, so sweeps from differently-configured
clients still share cache entries.

A payload names its chip(s) one of three ways, mirroring the batch
front end's work items:

* ``{"soc_text": "..."}`` — inline ITC'02 ``.soc`` exchange text;
* ``{"spec": {"profile": P, "seed": S, "index": I}}`` — the
  :class:`repro.gen.ScenarioSpec` coordinates of a generated chip;
* ``{"name": "dsc" | "d695"}`` — a built-in benchmark chip;

each optionally carrying ``test_pins`` / ``power_budget`` overrides.
"""

from __future__ import annotations

from repro.soc.digest import digest_document

#: Job kinds the service executes (the four platform entry points).
JOB_KINDS = ("integrate", "batch", "fuzz", "repair")

#: Chips addressable by name in job payloads.
NAMED_SOCS = ("dsc", "d695")


class JobError(ValueError):
    """A structurally invalid job payload (HTTP 400 at the API edge)."""


def _require_mapping(value, what: str) -> dict:
    if not isinstance(value, dict):
        raise JobError(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def _take(payload: dict, key: str, default, kinds: tuple, what: str):
    """Pop ``key`` with a type check (bool is not an int here)."""
    value = payload.pop(key, default)
    if value is default:
        return value
    if isinstance(value, bool) and bool not in kinds:
        raise JobError(f"{what}.{key} must be {kinds[0].__name__}, got a bool")
    if not isinstance(value, kinds):
        names = "/".join(k.__name__ for k in kinds)
        raise JobError(f"{what}.{key} must be {names}, got {type(value).__name__}")
    return value


def _reject_leftovers(payload: dict, what: str) -> None:
    if payload:
        raise JobError(f"unknown {what} field(s): {', '.join(sorted(payload))}")


def normalize_soc_ref(ref, what: str = "soc") -> dict:
    """Canonicalize one chip reference (see the module docstring)."""
    ref = dict(_require_mapping(ref, what))
    forms = [key for key in ("soc_text", "spec", "name") if key in ref]
    if len(forms) != 1:
        raise JobError(
            f"{what} must carry exactly one of soc_text / spec / name, got "
            f"{forms or 'none'}"
        )
    test_pins = _take(ref, "test_pins", None, (int,), what)
    power_budget = _take(ref, "power_budget", None, (int, float), what)
    if power_budget is not None:
        power_budget = float(power_budget)
    form = forms[0]
    if form == "soc_text":
        text = _take(ref, "soc_text", None, (str,), what)
        normalized: dict = {"soc_text": text}
    elif form == "spec":
        spec = dict(_require_mapping(ref.pop("spec"), f"{what}.spec"))
        profile = _take(spec, "profile", None, (str,), f"{what}.spec")
        seed = _take(spec, "seed", None, (int,), f"{what}.spec")
        index = _take(spec, "index", 0, (int,), f"{what}.spec")
        if profile is None or seed is None:
            raise JobError(f"{what}.spec needs profile and seed")
        _reject_leftovers(spec, f"{what}.spec")
        normalized = {"spec": {"profile": profile, "seed": seed, "index": index}}
    else:
        name = _take(ref, "name", None, (str,), what)
        if name not in NAMED_SOCS:
            raise JobError(
                f"{what}.name must be one of {', '.join(NAMED_SOCS)}, got {name!r}"
            )
        normalized = {"name": name}
    _reject_leftovers(ref, what)
    normalized["test_pins"] = test_pins
    normalized["power_budget"] = power_budget
    return normalized


def normalize_payload(payload) -> tuple[dict, dict]:
    """Canonicalize a ``POST /jobs`` body.

    Returns ``(normalized, execution)``: the semantic job document
    (deterministic for equal work — the input to the cache key) and the
    execution parameters (``backend`` / ``workers``) kept out of it.
    Raises :class:`JobError` on structural problems.
    """
    payload = dict(_require_mapping(payload, "job payload"))
    kind = payload.pop("kind", None)
    if kind not in JOB_KINDS:
        raise JobError(
            f"job kind must be one of {', '.join(JOB_KINDS)}, got {kind!r}"
        )
    execution = {
        "backend": _take(payload, "backend", None, (str,), kind),
        "workers": _take(payload, "workers", None, (int,), kind),
    }
    normalized: dict = {"kind": kind}
    if kind == "integrate":
        normalized["soc"] = normalize_soc_ref(payload.pop("soc", None))
        normalized["strategy"] = _take(payload, "strategy", "session", (str,), kind)
        normalized["verify"] = _take(payload, "verify", False, (bool,), kind)
        normalized["compare"] = _take(payload, "compare", False, (bool,), kind)
    elif kind == "batch":
        socs = payload.pop("socs", None)
        if not isinstance(socs, list) or not socs:
            raise JobError("batch.socs must be a non-empty list of soc references")
        normalized["socs"] = [
            normalize_soc_ref(ref, f"socs[{i}]") for i, ref in enumerate(socs)
        ]
        normalized["strategy"] = _take(payload, "strategy", "session", (str,), kind)
        normalized["verify"] = _take(payload, "verify", False, (bool,), kind)
    elif kind == "fuzz":
        normalized["profile"] = _take(payload, "profile", "tiny", (str,), kind)
        normalized["seeds"] = _take(payload, "seeds", 20, (int,), kind)
        normalized["seed_base"] = _take(payload, "seed_base", 0, (int,), kind)
        if normalized["seeds"] < 1:
            raise JobError(f"fuzz.seeds must be at least 1, got {normalized['seeds']}")
        strategies = payload.pop("strategies", None)
        if strategies is not None:
            if not isinstance(strategies, list) or not all(
                isinstance(s, str) for s in strategies
            ):
                raise JobError("fuzz.strategies must be a list of strategy names")
        else:
            # resolve "every registered strategy" at submit time so the
            # cache key names the actual work
            from repro.sched import available_strategies

            strategies = list(available_strategies())
        normalized["strategies"] = strategies
        normalized["ilp_max_tasks"] = _take(payload, "ilp_max_tasks", 6, (int,), kind)
    else:  # repair
        normalized["soc"] = normalize_soc_ref(payload.pop("soc", None))
        normalized["seed"] = _take(payload, "seed", 7, (int,), kind)
        normalized["trials"] = _take(payload, "trials", 500, (int,), kind)
        if normalized["trials"] < 1:
            raise JobError(f"repair.trials must be at least 1, got {normalized['trials']}")
        normalized["allocator"] = _take(payload, "allocator", "greedy", (str,), kind)
        normalized["defects"] = _take(payload, "defects", 3, (int,), kind)
        normalized["defect_density"] = float(
            _take(payload, "defect_density", 0.3, (int, float), kind)
        )
        normalized["spare_rows"] = _take(payload, "spare_rows", None, (int,), kind)
        normalized["spare_cols"] = _take(payload, "spare_cols", None, (int,), kind)
        normalized["model_rows"] = _take(payload, "model_rows", 32, (int,), kind)
    _reject_leftovers(payload, f"{kind} job")
    return normalized, execution


def soc_refs(normalized: dict) -> list[dict]:
    """The chip references of a normalized job, in order (empty for
    kinds that carry none, like fuzz)."""
    if "soc" in normalized:
        return [normalized["soc"]]
    return list(normalized.get("socs", ()))


def cache_key(normalized: dict, soc_digests: list[str], result_schema: str) -> str:
    """The job's content address: sha256 over the normalized config with
    chip references replaced by their content digests, salted with the
    result schema version (a schema bump must never serve stale
    documents)."""
    config = {
        key: value
        for key, value in normalized.items()
        if key not in ("soc", "socs")
    }
    return digest_document(
        {"schema": result_schema, "config": config, "socs": soc_digests}
    )
