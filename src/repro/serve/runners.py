"""From normalized job documents to result documents.

:func:`content_address` materializes a job's chip references into batch
work items and folds their :meth:`repro.soc.Soc.digest` content
addresses into the cache key; :func:`execute` dispatches the job to the
same library entry points the CLI uses (``Steac.integrate``,
``integrate_many``, ``run_fuzz``, ``repair_report``), so a served
result is the verbatim wire document of the matching shell command.
Both raise :class:`repro.serve.keys.JobError` for user-caused failures
(a malformed ``.soc``, an unknown strategy) — the job manager records
those as *failed jobs*, distinct from server bugs.
"""

from __future__ import annotations

from typing import Union

from repro.gen import ScenarioSpec
from repro.serve.keys import JobError, cache_key, soc_refs
from repro.soc import Soc

#: A job's unit of chip work: a live model, or coordinates built in the
#: worker (kept as a spec so the process backend pickles bytes, not
#: models).
WorkItem = Union[Soc, ScenarioSpec]


def result_schema(kind: str) -> str:
    """The wire-schema version a job kind produces (part of its cache
    key: bumping a schema invalidates that kind's cached entries)."""
    if kind == "integrate":
        from repro.core.results import RESULT_SCHEMA

        return RESULT_SCHEMA
    if kind == "batch":
        from repro.core.results import BATCH_SCHEMA

        return BATCH_SCHEMA
    if kind == "fuzz":
        from repro.gen import FUZZ_SCHEMA

        return FUZZ_SCHEMA
    if kind == "repair":
        from repro.repair import REPAIR_REPORT_SCHEMA

        return REPAIR_REPORT_SCHEMA
    raise JobError(f"unknown job kind {kind!r}")


def build_work_item(ref: dict) -> WorkItem:
    """Materialize one normalized chip reference (raising
    :class:`JobError` on semantic problems, e.g. unparsable ``.soc``
    text or an unknown generator profile)."""
    test_pins = ref.get("test_pins")
    power_budget = ref.get("power_budget")
    if "soc_text" in ref:
        from repro.soc.itc02 import soc_from_text

        try:
            return soc_from_text(
                ref["soc_text"],
                test_pins=test_pins if test_pins is not None else 64,
                power_budget=power_budget if power_budget is not None else 0.0,
            )
        except ValueError as exc:
            raise JobError(f"unparsable soc_text: {exc}") from exc
    if "spec" in ref:
        spec = ref["spec"]
        from repro.gen import available_profiles

        if spec["profile"] not in available_profiles():
            raise JobError(
                f"unknown generator profile {spec['profile']!r} "
                f"(available: {', '.join(available_profiles())})"
            )
        return ScenarioSpec(
            profile=spec["profile"],
            seed=spec["seed"],
            index=spec["index"],
            test_pins=test_pins,
            power_budget=power_budget,
        )
    name = ref["name"]
    overrides = {}
    if test_pins is not None:
        overrides["test_pins"] = test_pins
    if power_budget is not None:
        overrides["power_budget"] = power_budget
    if name == "d695":
        from repro.soc.itc02 import d695_soc

        return d695_soc(**overrides)
    from repro.soc.dsc import build_dsc_chip

    return build_dsc_chip(**overrides)


def work_digest(item: WorkItem) -> str:
    """The content address of a work item's chip (specs are built —
    generation is deterministic, so the digest names the same chip the
    worker will build)."""
    if isinstance(item, ScenarioSpec):
        return item.build().digest()
    return item.digest()


def content_address(normalized: dict) -> tuple[str, list[WorkItem]]:
    """Build a normalized job's work items and its cache key.

    Returns ``(key, work)``; the work items are reused for execution so
    inline ``.soc`` text is parsed exactly once.  Raises
    :class:`JobError` if any chip reference cannot be materialized.
    """
    work = [build_work_item(ref) for ref in soc_refs(normalized)]
    digests = [work_digest(item) for item in work]
    return cache_key(normalized, digests, result_schema(normalized["kind"])), work


def _as_soc(item: WorkItem) -> Soc:
    return item.build() if isinstance(item, ScenarioSpec) else item


def execute(
    normalized: dict, work: list[WorkItem], execution: dict, progress=None
) -> dict:
    """Run a normalized job, returning its wire document.

    ``execution`` carries the non-semantic knobs (``backend`` /
    ``workers``); they steer *how fast* the answer arrives, never what
    it is — the cache relies on that.  ``progress`` is an optional
    :class:`repro.obs.JobProgress` threaded into the batch and fuzz
    engines so long jobs expose live per-scenario counters while
    running; the other kinds (one chip, one report) ignore it.
    """
    from repro.obs import span

    kind = normalized["kind"]
    backend = execution.get("backend") or "auto"
    workers = execution.get("workers")
    try:
        with span("serve.job", kind=kind, backend=backend):
            return _dispatch(normalized, work, kind, backend, workers, progress)
    except (KeyError, ValueError) as exc:
        if isinstance(exc, JobError):
            raise
        # registry lookups (unknown strategy / allocator / backend) and
        # model validation raise KeyError/ValueError — user input, not
        # a server fault
        raise JobError(str(exc)) from exc


def _dispatch(
    normalized: dict, work: list[WorkItem], kind, backend, workers, progress
) -> dict:
    if kind == "integrate":
        from repro.core import Steac, SteacConfig

        config = SteacConfig(
            strategy=normalized["strategy"],
            compare_strategies=normalized["compare"],
            verify_schedule=normalized["verify"],
        )
        return Steac(config).integrate(_as_soc(work[0])).to_dict()
    if kind == "batch":
        from repro.core import Steac, SteacConfig

        config = SteacConfig(
            strategy=normalized["strategy"],
            compare_strategies=False,
            verify_schedule=normalized["verify"],
        )
        return (
            Steac(config)
            .integrate_many(
                work, workers=workers, backend=backend, progress=progress
            )
            .to_dict()
        )
    if kind == "fuzz":
        from repro.gen import run_fuzz

        return run_fuzz(
            profile=normalized["profile"],
            seeds=normalized["seeds"],
            seed_base=normalized["seed_base"],
            strategies=normalized["strategies"],
            ilp_max_tasks=normalized["ilp_max_tasks"],
            workers=workers,
            backend=backend,
            progress=progress,
        )
    if kind == "repair":
        from repro.repair import repair_report

        return repair_report(
            _as_soc(work[0]),
            seed=normalized["seed"],
            trials=normalized["trials"],
            workers=workers or 0,
            allocator=normalized["allocator"],
            defects=normalized["defects"],
            defect_density=normalized["defect_density"],
            spare_rows=normalized["spare_rows"],
            spare_cols=normalized["spare_cols"],
            model_rows=normalized["model_rows"],
        )
    raise JobError(f"unknown job kind {kind!r}")
