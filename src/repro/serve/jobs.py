"""Job lifecycle: submit → queue → run → done/failed, with the cache
short-circuiting repeat work at submit time.

A job moves through four states::

    queued ──> running ──> done
       │          └──────> failed       (user-caused: JobError)
       └─────────────────> failed       (bad chip reference at submit)

plus the fast path: a submit whose content address hits the cache is
born ``done`` with ``cached: true`` — no queue round-trip, the stored
result text is returned verbatim.

The worker pool is a handful of daemon threads feeding off one queue;
each job's *internal* parallelism (batch fan-out, fuzz sweeps,
Monte-Carlo trials) goes through :mod:`repro.core.batch` backends, so
the thread count here bounds concurrent jobs, not concurrent chips.

The job table is bounded: past ``max_jobs`` retained records, terminal
(done/failed) jobs are evicted least-recently-used first — the job
document disappears (404), but the *result* lives on in the
content-addressed cache, so resubmitting the work is a hit.  Live jobs
are never evicted.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.obs import METRICS, JobProgress
from repro.serve.cache import ResultCache
from repro.serve.keys import JobError, normalize_payload
from repro.serve.runners import content_address, execute

# v2 adds the nullable ``progress`` key (live done/total/violations for
# batch and fuzz jobs) and derives queue/run durations from a monotonic
# clock; v1 consumers that ignore unknown keys keep working
JOB_SCHEMA = "repro/serve-job/v2"

JOB_STATES = ("queued", "running", "done", "failed")

_SENTINEL = None

_M_SUBMITTED = METRICS.counter(
    "serve.jobs.submitted", "jobs accepted by JobManager.submit"
)
_M_DONE = METRICS.counter(
    "serve.jobs.done", "jobs finished successfully (cache hits included)"
)
_M_FAILED = METRICS.counter("serve.jobs.failed", "jobs finished in error")
_M_EVICTED = METRICS.counter(
    "serve.jobs.evicted", "terminal job records evicted from the bounded table"
)
_M_RUN_SECONDS = METRICS.histogram(
    "serve.job.run_seconds", "wall time executing one job, labelled by kind"
)


@dataclass
class Job:
    """One submitted unit of work and its lifecycle record."""

    id: str
    normalized: dict
    execution: dict
    cache_key: Optional[str] = None
    work: list = field(default_factory=list)
    status: str = "queued"
    cached: bool = False
    error: Optional[str] = None
    result_text: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    # monotonic twins of the wall-clock checkpoints: durations are
    # derived from these, so an NTP step or DST jump mid-job can never
    # produce a negative (or wildly wrong) queued/run time
    submitted_mono: float = 0.0
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    progress: Optional[JobProgress] = None

    @property
    def kind(self) -> str:
        return self.normalized["kind"]

    def mark_started(self) -> None:
        self.started_at = time.time()  # detlint: ignore[DET002] -- display checkpoint; durations use the _mono twin
        self.started_mono = time.monotonic()

    def mark_finished(self) -> None:
        self.finished_at = time.time()  # detlint: ignore[DET002] -- display checkpoint; durations use the _mono twin
        self.finished_mono = time.monotonic()
        if self.started_at is None:
            # born-terminal paths (cache hit, submit-time failure)
            # start and finish at the same instant
            self.started_at = self.finished_at
            self.started_mono = self.finished_mono

    def timing(self) -> dict:
        """Wall-clock checkpoints for display; queue/run durations come
        from the monotonic clock, immune to wall-clock steps."""
        queued = run = None
        if self.started_mono is not None:
            queued = round(self.started_mono - self.submitted_mono, 6)
            if self.finished_mono is not None:
                run = round(self.finished_mono - self.started_mono, 6)
        return {
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queued_seconds": queued,
            "run_seconds": run,
        }

    def to_dict(self, include_result: bool = True) -> dict:
        doc = {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "cached": self.cached,
            "cache_key": self.cache_key,
            "timing": self.timing(),
            "progress": self.progress.snapshot() if self.progress else None,
        }
        if self.error is not None:
            doc["error"] = self.error
        if include_result and self.result_text is not None:
            doc["result"] = json.loads(self.result_text)
        return doc


def result_to_text(doc: dict) -> str:
    """The serialized form of a result document — produced exactly once
    per cache entry, so hits are bit-identical to the populating miss."""
    return json.dumps(doc, indent=2)


class JobManager:
    """Worker pool + job table + result cache.

    Args:
        workers: concurrent jobs (daemon threads).
        cache: result store (a default in-memory :class:`ResultCache`
            if omitted).
        default_backend: ``repro.core.batch`` backend for jobs that do
            not pin one ("auto" if omitted).
        max_jobs: cap on the job table.  When set, *terminal* jobs
            (``done`` / ``failed``) past the cap are evicted least-
            recently-used first (a ``GET`` of a job refreshes it);
            ``queued`` / ``running`` jobs are never evicted, so the
            table may transiently exceed the cap under a burst of
            in-flight work.  An evicted job's record 404s, but its
            *result* stays served by the content-addressed cache — a
            resubmit is a hit.  ``None`` (the default) keeps the
            pre-cap unbounded behaviour.
    """

    def __init__(
        self,
        workers: int = 2,
        cache: Optional[ResultCache] = None,
        default_backend: Optional[str] = None,
        max_jobs: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError(f"job manager needs at least 1 worker, got {workers}")
        if max_jobs is not None and max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1 (or None), got {max_jobs}")
        self.cache = cache if cache is not None else ResultCache()
        self.default_backend = default_backend
        self.max_jobs = max_jobs
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._evicted = 0
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._counter = 0
        self._closed = False
        self._started_mono = time.monotonic()
        self._threads = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- eviction ----------------------------------------------------------

    def _evict_locked(self) -> None:
        """Drop least-recently-used *terminal* jobs past ``max_jobs``.

        Called with the lock held, after any insertion or terminal
        transition.  The table is LRU-ordered (``get`` refreshes);
        scanning from the cold end skips live (queued/running) jobs, so
        a burst of in-flight work can exceed the cap until it drains.
        """
        if self.max_jobs is None or len(self._jobs) <= self.max_jobs:
            return
        excess = len(self._jobs) - self.max_jobs
        victims = []
        for job_id, job in self._jobs.items():
            if job.status in ("done", "failed"):
                victims.append(job_id)
                if len(victims) == excess:
                    break
        for job_id in victims:
            del self._jobs[job_id]
            self._evicted += 1
            _M_EVICTED.inc()

    # -- submission --------------------------------------------------------

    def submit(self, payload) -> Job:
        """Validate, content-address, and enqueue one job.

        Raises :class:`JobError` for structurally invalid payloads (the
        server maps that to HTTP 400 — no job is created).  Semantic
        failures *inside* a valid payload (unparsable ``.soc`` text,
        unknown profile) do create a job, born ``failed`` with the
        error detail, so the submitter gets a durable record to inspect.
        """
        normalized, execution = normalize_payload(payload)
        if execution["backend"] is None:
            execution["backend"] = self.default_backend
        now = time.time()  # detlint: ignore[DET002] -- submitted_at display checkpoint; durations use submitted_mono
        with self._lock:
            if self._closed:
                raise JobError("server is shutting down; job rejected")
            self._counter += 1
            job = Job(
                id=f"j-{self._counter:06d}",
                normalized=normalized,
                execution=execution,
                submitted_at=now,
                submitted_mono=time.monotonic(),
            )
            self._jobs[job.id] = job
        _M_SUBMITTED.inc()
        try:
            job.cache_key, job.work = content_address(normalized)
        except JobError as exc:
            with self._lock:
                job.status = "failed"
                job.error = str(exc)
                job.mark_finished()
                self._evict_locked()
            _M_FAILED.inc()
            return job
        cached = self.cache.get(job.cache_key)
        with self._lock:
            if cached is not None:
                job.status = "done"
                job.cached = True
                job.result_text = cached
                job.mark_finished()
            else:
                self._queue.put(job.id)
            self._evict_locked()
        if job.cached:
            _M_DONE.inc()
        return job

    # -- execution ---------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is _SENTINEL:
                return
            with self._lock:
                # queued jobs are never evicted, so the lookup only
                # misses if a non-drain close failed the job first
                job = self._jobs.get(job_id)
                if job is None or job.status != "queued":
                    continue
                job.status = "running"
                job.mark_started()
                if job.kind in ("batch", "fuzz"):
                    # long fan-out kinds get a live counter the engine
                    # bumps per scenario; GET /jobs/<id> snapshots it
                    job.progress = JobProgress()
            try:
                doc = execute(
                    job.normalized, job.work, job.execution,
                    progress=job.progress,
                )
                text = result_to_text(doc)
            except JobError as exc:
                with self._lock:
                    job.status = "failed"
                    job.error = str(exc)
                    job.mark_finished()
                    self._evict_locked()
                self._observe_terminal(job, failed=True)
                continue
            except Exception as exc:  # noqa: BLE001 — a worker must not die
                with self._lock:
                    job.status = "failed"
                    job.error = f"internal error: {type(exc).__name__}: {exc}"
                    job.mark_finished()
                    self._evict_locked()
                self._observe_terminal(job, failed=True)
                continue
            self.cache.put(job.cache_key, text)
            with self._lock:
                job.result_text = text
                job.status = "done"
                job.mark_finished()
                self._evict_locked()
            self._observe_terminal(job, failed=False)

    @staticmethod
    def _observe_terminal(job: Job, failed: bool) -> None:
        """Bump the terminal counters and the run-time histogram for a
        job that actually executed (cache hits never reach here)."""
        (_M_FAILED if failed else _M_DONE).inc()
        if job.finished_mono is not None and job.started_mono is not None:
            _M_RUN_SECONDS.observe(
                job.finished_mono - job.started_mono, kind=job.kind
            )

    # -- inspection --------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                # LRU touch: a fetched job is hot, evict colder ones first
                self._jobs.move_to_end(job_id)
            return job

    def jobs(self) -> list[Job]:
        """Every retained job, in submission order (ids are sequential,
        so sorting by id undoes the table's LRU ordering)."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    def stats(self) -> dict:
        with self._lock:
            by_status = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_status[job.status] += 1
            submitted = self._counter
            evicted = self._evicted
        from repro.sched.timecalc import scan_time_cache_stats

        doc = {
            "schema": "repro/serve-stats/v1",
            "uptime_seconds": round(time.monotonic() - self._started_mono, 3),
            "workers": len(self._threads),
            "default_backend": self.default_backend or "auto",
            "jobs": {
                "submitted": submitted,
                "retained": sum(by_status.values()),
                "evicted": evicted,
                "max_jobs": self.max_jobs,
                **by_status,
            },
            "cache": self.cache.stats(),
            "scan_time_cache": scan_time_cache_stats(),
        }
        return doc

    # -- shutdown ----------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop the pool.  ``drain=True`` finishes every queued job
        first; ``drain=False`` fails still-queued jobs (in-flight jobs
        always run to completion — results are never torn)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            with self._lock:
                for job in self._jobs.values():
                    if job.status == "queued":
                        job.status = "failed"
                        job.error = "server stopped before execution"
                        job.mark_finished()
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join()
