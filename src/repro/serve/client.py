"""Stdlib client for the serving API (:mod:`urllib` — importable
anywhere the server is).

The tests, the CI smoke check, and the serving benchmark all speak to
the server through this client, so it doubles as the reference
consumer of the wire protocol::

    client = ServeClient("http://127.0.0.1:8750")
    job = client.submit({"kind": "integrate", "soc": {"name": "d695"}})
    job = client.wait(job["id"])
    doc = client.result(job["id"])          # the raw v4 document
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional


class ServeError(RuntimeError):
    """A non-2xx answer from the server (carries the HTTP status and
    the server's error detail)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.detail = message


class ServeClient:
    """Thin blocking client over :mod:`urllib.request`."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def request_text(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> str:
        """One HTTP exchange, returning the response body as text."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(raw).get("error", raw)
            except (json.JSONDecodeError, AttributeError):
                detail = raw
            raise ServeError(exc.code, detail) from exc

    def request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        return json.loads(self.request_text(method, path, payload))

    # -- API ---------------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(self.request("GET", "/healthz").get("ok"))
        except (ServeError, OSError):
            return False

    def wait_healthy(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll ``/healthz`` until the server answers (for freshly
        spawned servers); raises :class:`TimeoutError` otherwise."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.healthy():
                return
            time.sleep(interval)
        raise TimeoutError(f"server at {self.base_url} not healthy after {timeout}s")

    def submit(self, payload: dict) -> dict:
        """``POST /jobs`` — the created job document (already ``done``
        on a cache hit)."""
        return self.request("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self.request("GET", "/jobs")["jobs"]

    def result_text(self, job_id: str) -> str:
        """The stored result document, byte-for-byte."""
        return self.request_text("GET", f"/jobs/{job_id}/result")

    def result(self, job_id: str) -> dict:
        return json.loads(self.result_text(job_id))

    def wait(self, job_id: str, timeout: float = 120.0, interval: float = 0.02) -> dict:
        """Poll until the job leaves the queue/run states; returns the
        final job document (``done`` or ``failed``)."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["status"] in ("done", "failed"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {doc['status']!r} after {timeout}s"
                )
            time.sleep(interval)

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition, verbatim."""
        return self.request_text("GET", "/metrics")

    def shutdown(self) -> None:
        """Ask the server to drain and exit."""
        self.request("POST", "/shutdown")
