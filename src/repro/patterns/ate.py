"""Cycle-based ATE program model.

"The test patterns are cycle based, which can be applied by external ATE
easily" (paper, Section 2).  An :class:`AteProgram` is a flat list of
tester cycles; each cycle drives some pins and compares some others.
Programs can be exported as a simple tabular vector file and *replayed*
against a netlist through the logic simulator — the reproduction's stand-
in for the external tester.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist import HIGH, LOW, X, Simulator

_DRIVE_VALUES = {"0": LOW, "1": HIGH, "X": X}
_EXPECT_VALUES = {"L": LOW, "H": HIGH}


@dataclass
class AteCycle:
    """One tester cycle: pin drives and strobed comparisons.

    ``drive`` maps pin → '0'/'1'/'X'; ``expect`` maps pin → 'L'/'H'/'X'
    ('X' = no strobe).  ``pulse`` lists clock pins pulsed this cycle.
    """

    drive: dict[str, str] = field(default_factory=dict)
    expect: dict[str, str] = field(default_factory=dict)
    pulse: tuple[str, ...] = ()
    label: str = ""


@dataclass
class AteProgram:
    """A cycle-based test program for one test (or one session)."""

    name: str
    cycles: list[AteCycle] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.cycles)

    @property
    def cycle_count(self) -> int:
        return len(self.cycles)

    @property
    def pins(self) -> list[str]:
        """All pins referenced, drives first, sorted within each group."""
        drives: set[str] = set()
        expects: set[str] = set()
        for cycle in self.cycles:
            drives.update(cycle.drive)
            expects.update(cycle.expect)
        return sorted(drives) + sorted(expects - drives)

    def to_dict(self) -> dict:
        """JSON-native summary (cycle and pin counts, not the vectors —
        use :meth:`export` for the full tabular program)."""
        return {"cycles": self.cycle_count, "pins": len(self.pins)}

    def add(self, drive=None, expect=None, pulse=(), label="", repeat: int = 1) -> None:
        """Append ``repeat`` identical cycles."""
        for _ in range(repeat):
            self.cycles.append(
                AteCycle(dict(drive or {}), dict(expect or {}), tuple(pulse), label)
            )

    def export(self) -> str:
        """Tabular vector text: one row per cycle, one column per pin."""
        pins = self.pins
        lines = [f"# program {self.name}: {self.cycle_count} cycles"]
        lines.append("# " + " ".join(pins))
        for cycle in self.cycles:
            row = []
            for pin in pins:
                if pin in cycle.drive:
                    row.append(cycle.drive[pin])
                elif pin in cycle.expect:
                    row.append(cycle.expect[pin])
                else:
                    row.append(".")
            lines.append(" ".join(row))
        return "\n".join(lines)


@dataclass
class ReplayMismatch:
    """One strobed comparison that failed during replay."""

    cycle: int
    pin: str
    expected: str
    observed: int
    label: str = ""


def replay(
    program: AteProgram,
    sim: Simulator,
    clock_net: str,
    max_mismatches: int = 20,
) -> list[ReplayMismatch]:
    """Replay a program against a simulated netlist.

    Per cycle: apply drives, evaluate, strobe expects, then clock.
    Returns the (possibly truncated) mismatch list; empty = pass.
    """
    mismatches: list[ReplayMismatch] = []
    for index, cycle in enumerate(program.cycles):
        for pin, value in cycle.drive.items():
            sim.poke(pin, _DRIVE_VALUES[value.upper()])
        sim.evaluate()
        for pin, value in cycle.expect.items():
            value = value.upper()
            if value == "X":
                continue
            observed = sim.get(pin)
            if observed != _EXPECT_VALUES[value]:
                mismatches.append(
                    ReplayMismatch(index, pin, value, observed, cycle.label)
                )
                if len(mismatches) >= max_mismatches:
                    return mismatches
        sim.clock(clock_net)
        for extra in cycle.pulse:
            if extra != clock_net:
                sim.clock(extra)
    return mismatches
