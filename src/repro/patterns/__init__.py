"""Test patterns: core-level containers, wrapper/chip translation, and
the cycle-based ATE program model (paper's "Pattern Translator")."""

from repro.patterns.ate import AteCycle, AteProgram, ReplayMismatch, replay
from repro.patterns.core_patterns import (
    CorePatternSet,
    FunctionalVector,
    ScanVector,
)
from repro.patterns.translate import (
    chip_scan_program,
    WrapperPatternSet,
    WrapperVector,
    chip_level_program,
    translate_core_to_wrapper,
    wrapper_functional_program,
    wrapper_scan_program,
)

__all__ = [
    "AteCycle",
    "AteProgram",
    "ReplayMismatch",
    "replay",
    "CorePatternSet",
    "FunctionalVector",
    "ScanVector",
    "WrapperPatternSet",
    "WrapperVector",
    "chip_level_program",
    "chip_scan_program",
    "translate_core_to_wrapper",
    "wrapper_functional_program",
    "wrapper_scan_program",
]
