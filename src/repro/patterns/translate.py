"""Pattern translation: core level → wrapper level → chip level.

"The core test patterns are generated at the core level.  After the
cores are wrapped, the test patterns must be translated to the wrapper
level and then to the chip level." (paper, Section 2)

**Wrapper level.**  Each scan vector becomes per-wrapper-chain shift
streams.  Bit-order conventions (verified end-to-end by replaying the
translated program against the generated wrapper netlist):

* a core load string's first character ends up at the chain's scan-out
  end (it is shifted in first);
* the wrapper scan-in path of chain ``k`` runs head → input WBCs →
  internal chains (in plan order) → output WBCs → tail;
* the stimulus stream is therefore the *reverse* of the path-ordered
  cell values, and alignment padding ('X') goes in front of stimulus
  and behind expected response when ``si != so``.

**Cycle structure** (reproducing the scheduler's time model exactly,
``(1+max(si,so))·p + min(si,so)`` plus the WIR preamble)::

    preamble: program WIR (INTEST_PARALLEL), enable parallel feed
    window 0: si shift cycles                    (load vector 1)
    for v = 1..p:
        capture cycle (update+capture folded)
        window v: max(si,so) shifts              (unload v | load v+1)
        ... final window: so shifts              (unload p)

**Chip level.**  Wrapper pins are renamed to the TAM pins assigned by
the schedule (``TamSlot``), and the session preamble (test-controller
start / config) is prepended.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.patterns.ate import AteProgram
from repro.patterns.core_patterns import CorePatternSet
from repro.sched.timecalc import scan_test_time
from repro.soc.core import Core
from repro.soc.ports import SignalKind
from repro.soc.bits import functional_signal_order
from repro.tam.bus import TamSlot
from repro.wrapper.balance import WrapperPlan
from repro.wrapper.wir import WrapperInstruction
from repro.wrapper.wrapper import wir_shift_sequence

#: Cycles the chip-level lift prepends (test-controller session config);
#: the verifier's translation-consistency rule imports the same value.
CHIP_SESSION_PREAMBLE = 4


@dataclass
class WrapperVector:
    """One scan pattern at wrapper level.

    ``chain_loads[k]``: stimulus stream for wrapper chain ``k`` (first
    character shifted first; length = that chain's scan-in length).
    ``chain_unloads[k]``: expected response stream (first character
    observed first; length = that chain's scan-out length).
    """

    chain_loads: list[str]
    chain_unloads: list[str]


@dataclass
class WrapperPatternSet:
    """All translated vectors for one wrapped core."""

    core_name: str
    plan: WrapperPlan
    vectors: list[WrapperVector] = field(default_factory=list)

    @property
    def si(self) -> int:
        return self.plan.scan_in_depth

    @property
    def so(self) -> int:
        return self.plan.scan_out_depth

    @property
    def shift_window(self) -> int:
        return max(self.si, self.so)

    def expected_cycles(self, preamble: int = 0) -> int:
        """Scan cycles this set needs — must equal the scheduler's
        ``scan_test_time(si, so, p)``."""
        return scan_test_time(self.si, self.so, len(self.vectors)) + preamble


def _cell_bit_map(order: list[str], plan_counts: list[int]) -> list[list[int]]:
    """Split bit indices 0..len(order)-1 chain by chain (the same
    sequential rule the wrapper generator uses)."""
    result: list[list[int]] = []
    cursor = 0
    for count in plan_counts:
        result.append(list(range(cursor, cursor + count)))
        cursor += count
    return result


def translate_core_to_wrapper(
    core: Core,
    patterns: CorePatternSet,
    plan: WrapperPlan,
) -> WrapperPatternSet:
    """Translate core-level scan vectors to wrapper-chain streams."""
    pi_order, po_order = functional_signal_order(core)
    in_map = _cell_bit_map(pi_order, [c.input_cells for c in plan.chains])
    out_map = _cell_bit_map(po_order, [c.output_cells for c in plan.chains])
    result = WrapperPatternSet(core_name=core.name, plan=plan)

    for vector in patterns.scan_vectors:
        chain_loads: list[str] = []
        chain_unloads: list[str] = []
        for k, chain in enumerate(plan.chains):
            # scan-in path values, ascending from head to deepest
            in_path: list[str] = []
            for bit_index in in_map[k]:
                in_path.append(vector.pi[bit_index] if bit_index < len(vector.pi) else "X")
            for name in chain.internal_chains:
                load = vector.loads.get(name, "")
                length = _chain_length(core, name)
                load = load if len(load) == length else "X" * length
                in_path.extend(reversed(load))
            chain_loads.append("".join(reversed(in_path)))

            # scan-out path values, ascending toward WSO
            out_path: list[str] = []
            for name in chain.internal_chains:
                unload = vector.unloads.get(name, "")
                length = _chain_length(core, name)
                unload = unload if len(unload) == length else "X" * length
                out_path.extend(reversed(unload))
            for bit_index in out_map[k]:
                out_path.append(
                    vector.expected_po[bit_index]
                    if bit_index < len(vector.expected_po)
                    else "X"
                )
            chain_unloads.append("".join(reversed(out_path)))
        result.vectors.append(WrapperVector(chain_loads, chain_unloads))
    return result


def _chain_length(core: Core, chain_name: str) -> int:
    for chain in core.scan_chains:
        if chain.name == chain_name:
            return chain.length
    raise KeyError(f"core {core.name!r} has no scan chain {chain_name!r}")


def _control_pin_names(core: Core) -> dict[str, list[str]]:
    """The wrapper pass-through control pins, by class."""
    return {
        "se": [p.name for p in core.ports_of_kind(SignalKind.SCAN_ENABLE)],
        "clock": [p.name for p in core.ports_of_kind(SignalKind.CLOCK)],
        "reset": [p.name for p in core.ports_of_kind(SignalKind.RESET)],
        "te": [
            p.name
            for kind in (SignalKind.TEST_ENABLE, SignalKind.TEST)
            for p in core.ports_of_kind(kind)
        ],
    }


def wir_preamble(program: AteProgram, instruction: WrapperInstruction, statics: dict[str, str]) -> None:
    """Append the WIR programming sequence (shift opcode, update)."""
    for bit in wir_shift_sequence(instruction):
        program.add(
            drive={**statics, "selectwir": "1", "shiftwr": "1", "wsi": str(bit)},
            label="wir-shift",
        )
    program.add(
        drive={**statics, "selectwir": "1", "shiftwr": "0", "updatewr": "1", "wsi": "0"},
        label="wir-update",
    )


def wrapper_scan_program(
    core: Core,
    wrapper_patterns: WrapperPatternSet,
    name: str | None = None,
) -> AteProgram:
    """Build the wrapper-level ATE program for a scan test.

    Pins are the wrapper module's ports: ``wpi{k}``/``wpo{k}`` for data
    (parallel TAM access), plus the serial/control interface.  The
    resulting cycle count is exactly ``WIR preamble +
    scan_test_time(si, so, p)`` — asserted here.
    """
    plan = wrapper_patterns.plan
    vectors = wrapper_patterns.vectors
    program = AteProgram(name or f"{core.name}_scan")
    controls = _control_pin_names(core)
    statics = {pin: "0" for pin in ("selectwir", "shiftwr", "capturewr", "updatewr",
                                    "parallel_sel", "wsi")}
    for pin in controls["reset"]:
        statics[pin] = "1"  # resets held inactive (active-low convention)
    for pin in controls["te"]:
        statics[pin] = "1"
    preamble_len = len(wir_shift_sequence(WrapperInstruction.INTEST_PARALLEL)) + 1
    wir_preamble(program, WrapperInstruction.INTEST_PARALLEL, statics)
    statics["parallel_sel"] = "1"

    si, so = wrapper_patterns.si, wrapper_patterns.so
    window = wrapper_patterns.shift_window
    se_on = {pin: "1" for pin in controls["se"]}
    se_off = {pin: "0" for pin in controls["se"]}

    def shift_cycles(count: int, loads: list[str] | None, unloads: list[str] | None,
                     label: str) -> None:
        for t in range(count):
            drive = {**statics, **se_on, "shiftwr": "1"}
            expect = {}
            for k, _chain in enumerate(plan.chains):
                if loads is not None:
                    stream = loads[k]
                    pad = count - len(stream)
                    char = "X" if t < pad else stream[t - pad]
                    drive[f"wpi{k}"] = char
                else:
                    drive[f"wpi{k}"] = "X"
                if unloads is not None:
                    stream = unloads[k]
                    expect[f"wpo{k}"] = (
                        _expect_char(stream[t]) if t < len(stream) else "X"
                    )
            program.add(drive=drive, expect=expect, label=label)

    # window 0: load the first vector (si cycles)
    if vectors:
        shift_cycles(si, vectors[0].chain_loads, None, "load-0")
    for v, vector in enumerate(vectors):
        # capture cycle: update the input cells, capture responses
        program.add(
            drive={**statics, **se_off, "updatewr": "1", "capturewr": "1", "shiftwr": "0"},
            label=f"capture-{v}",
        )
        last = v == len(vectors) - 1
        if last:
            shift_cycles(so, None, [vec for vec in vector.chain_unloads], f"unload-{v}")
        else:
            shift_cycles(
                window,
                vectors[v + 1].chain_loads,
                vector.chain_unloads,
                f"unload-{v}|load-{v + 1}",
            )
    expected = wrapper_patterns.expected_cycles(preamble=preamble_len)
    if len(program) != expected:
        raise AssertionError(
            f"translated program is {len(program)} cycles, time model says {expected}"
        )
    return program


def _expect_char(char: str) -> str:
    return {"0": "L", "1": "H", "L": "L", "H": "H"}.get(char.upper(), "X")


def wrapper_functional_program(
    core: Core,
    patterns: CorePatternSet,
    name: str | None = None,
) -> AteProgram:
    """Wrapper-level program for a functional test: FUNCTIONAL mode, one
    cycle per vector through the chip-side functional pins."""
    program = AteProgram(name or f"{core.name}_func")
    controls = _control_pin_names(core)
    statics = {pin: "0" for pin in ("selectwir", "shiftwr", "capturewr", "updatewr",
                                    "parallel_sel", "wsi")}
    for pin in controls["reset"]:
        statics[pin] = "1"
    for pin in controls["te"]:
        statics[pin] = "0"  # mission mode
    for pin in controls["se"]:
        statics[pin] = "0"
    wir_preamble(program, WrapperInstruction.FUNCTIONAL, statics)
    pi_order, po_order = functional_signal_order(core)
    for v, vector in enumerate(patterns.functional_vectors):
        drive = dict(statics)
        for i, pin in enumerate(pi_order):
            drive[pin] = vector.pi[i] if i < len(vector.pi) else "X"
        expect = {}
        for i, pin in enumerate(po_order):
            char = vector.expected_po[i] if i < len(vector.expected_po) else "X"
            expect[pin] = _expect_char(char)
        program.add(drive=drive, expect=expect, label=f"func-{v}")
    return program


def chip_level_program(
    wrapper_program: AteProgram,
    slot: TamSlot,
    session_preamble: int = CHIP_SESSION_PREAMBLE,
) -> AteProgram:
    """Lift a wrapper-level program to chip level.

    TAM data pins replace the wrapper's ``wpi/wpo`` ports according to
    the schedule's wire assignment; the test-controller session preamble
    (start/config handshake) is prepended.
    """
    chip = AteProgram(f"{wrapper_program.name}@chip")
    for i in range(session_preamble):
        chip.add(drive={"tc_start": "1" if i == 0 else "0"}, label="session-config")
    rename: dict[str, str] = {}
    for local, wire in enumerate(slot.wires):
        rename[f"wpi{local}"] = f"tam_in{wire}"
        rename[f"wpo{local}"] = f"tam_out{wire}"
    for cycle in wrapper_program.cycles:
        chip.add(
            drive={rename.get(p, p): v for p, v in cycle.drive.items()},
            expect={rename.get(p, p): v for p, v in cycle.expect.items()},
            label=cycle.label,
        )
    return chip


def chip_scan_program(
    core: Core,
    wrapper_patterns: WrapperPatternSet,
    slot: TamSlot,
    chain_wrappers_after: int = 0,
    name: str | None = None,
) -> AteProgram:
    """The *real* chip-level scan program for one wrapped core on the
    STEAC-inserted top netlist.

    Unlike :func:`chip_level_program` (a pin renaming), this drives the
    actual access mechanism the test controller implements:

    1. reset the controller (``trstn``), pulse ``tc_start`` → CONFIG;
    2. shift the WIR opcode through the chip-level serial chain (the
       controller holds ``selectwir`` during CONFIG; wrappers *after*
       this core in the daisy chain receive BYPASS, shifted first);
    3. pulse ``updatewr``, assert ``tc_config_done`` → RUN;
    4. run the scan cycles with data on the TAM pins of ``slot``,
       scan-enable on the shared ``se_shared`` pin, and the shared
       reset pin held inactive.

    Replayed against the flattened top module in the tests — the
    strongest correctness evidence the platform produces.
    """
    program = AteProgram(name or f"{core.name}_scan@chip")
    base = {
        "trstn": "1", "tc_start": "0", "tc_next": "0", "tc_config_done": "0",
        "wsi": "0", "shiftwr": "0", "capturewr": "0", "updatewr": "0",
        "parallel_sel": "0", "se_shared": "0", "rst_shared": "1",
    }
    # 1. controller reset and start
    program.add(drive={**base, "trstn": "0"}, label="reset")
    program.add(drive=dict(base), label="release")
    program.add(drive={**base, "tc_start": "1"}, label="start")
    # 2. WIR programming during CONFIG: bits for the deepest wrapper first
    wir_bits: list[int] = []
    for _ in range(chain_wrappers_after):
        wir_bits.extend(wir_shift_sequence(WrapperInstruction.BYPASS))
    wir_bits.extend(wir_shift_sequence(WrapperInstruction.INTEST_PARALLEL))
    for bit in wir_bits:
        program.add(drive={**base, "shiftwr": "1", "wsi": str(bit)}, label="wir-shift")
    program.add(drive={**base, "updatewr": "1"}, label="wir-update")
    # 3. enter RUN
    program.add(drive={**base, "tc_config_done": "1"}, label="config-done")

    # 4. scan cycles: reuse the wrapper-level program, renamed to chip pins
    wrapper_program = wrapper_scan_program(core, wrapper_patterns)
    controls = _control_pin_names(core)
    drop = set(controls["te"]) | {"selectwir"}
    rename: dict[str, str] = {}
    for pin in controls["se"]:
        rename[pin] = "se_shared"
    for pin in controls["reset"]:
        rename[pin] = "rst_shared"
    for local, wire in enumerate(slot.wires):
        rename[f"wpi{local}"] = f"tam_in{wire}"
        rename[f"wpo{local}"] = f"tam_out{wire}"
    for cycle in wrapper_program.cycles:
        if cycle.label.startswith("wir-"):
            continue  # the controller already programmed the WIRs
        drive = dict(base)
        for pin, value in cycle.drive.items():
            if pin in drop:
                continue
            drive[rename.get(pin, pin)] = value
        expect = {rename.get(p, p): v for p, v in cycle.expect.items()}
        program.add(drive=drive, expect=expect, label=cycle.label)
    # 5. close the session
    program.add(drive={**base, "tc_next": "1"}, label="session-done")
    return program
