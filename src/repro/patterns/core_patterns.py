"""Core-level test pattern containers.

These are the payloads the STIL parser extracts and the pattern
translator consumes.  Conventions follow STIL/ATE practice:

* drive characters: ``0``, ``1``, ``X`` (don't care);
* expect characters: ``L`` (low), ``H`` (high), ``X`` (don't compare).

A scan vector is one load/capture/unload iteration: per-chain load
strings, PI values applied before capture, expected PO values at capture,
and per-chain expected unload strings (the response captured by the
*previous* pattern shifts out while the next loads — the containers store
each vector's own capture response; interleaving is the translator's
job).
"""

from __future__ import annotations

from dataclasses import dataclass, field

DRIVE_CHARS = frozenset("01X")
EXPECT_CHARS = frozenset("LHX")


def _check_chars(value: str, allowed: frozenset, what: str) -> str:
    bad = set(value) - allowed
    if bad:
        raise ValueError(f"{what} contains invalid characters {sorted(bad)}: {value!r}")
    return value


@dataclass
class ScanVector:
    """One scan pattern: load, apply PIs, capture, unload.

    Attributes:
        loads: chain name → stimulus bit-string (first character enters
            the chain first, i.e. ends up deepest).
        pi: primary-input drive string, one char per (non-scan) input.
        expected_po: expected primary-output string at capture.
        unloads: chain name → expected response bit-string observed when
            this vector's capture is shifted out.
    """

    loads: dict[str, str] = field(default_factory=dict)
    pi: str = ""
    expected_po: str = ""
    unloads: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for chain, bits in self.loads.items():
            _check_chars(bits, DRIVE_CHARS, f"load for chain {chain!r}")
        _check_chars(self.pi, DRIVE_CHARS, "pi drive")
        _check_chars(self.expected_po, EXPECT_CHARS, "po expect")
        for chain, bits in self.unloads.items():
            _check_chars(bits, EXPECT_CHARS, f"unload for chain {chain!r}")


@dataclass
class FunctionalVector:
    """One functional (cycle-based) vector: drive PIs, expect POs."""

    pi: str = ""
    expected_po: str = ""

    def __post_init__(self) -> None:
        _check_chars(self.pi, DRIVE_CHARS, "pi drive")
        _check_chars(self.expected_po, EXPECT_CHARS, "po expect")


@dataclass
class CorePatternSet:
    """All concrete patterns for one core.

    Attributes:
        core_name: owning core.
        pi_order: non-scan input port names, in drive-string order (bus
            ports appear bit-expanded, MSB first: ``d[3] d[2] ...``).
        po_order: output port names, in expect-string order.
        chain_order: scan chain names in declaration order.
        scan_vectors / functional_vectors: the payloads.
    """

    core_name: str
    pi_order: list[str] = field(default_factory=list)
    po_order: list[str] = field(default_factory=list)
    chain_order: list[str] = field(default_factory=list)
    scan_vectors: list[ScanVector] = field(default_factory=list)
    functional_vectors: list[FunctionalVector] = field(default_factory=list)

    @property
    def scan_count(self) -> int:
        return len(self.scan_vectors)

    @property
    def functional_count(self) -> int:
        return len(self.functional_vectors)

    def validate_against_chains(self, chain_lengths: dict[str, int]) -> list[str]:
        """Check every scan vector's load/unload lengths match the chain
        lengths; returns problem strings (empty = clean)."""
        problems = []
        for i, vec in enumerate(self.scan_vectors):
            for chain, bits in vec.loads.items():
                expected = chain_lengths.get(chain)
                if expected is None:
                    problems.append(f"vector {i}: unknown chain {chain!r}")
                elif len(bits) != expected:
                    problems.append(
                        f"vector {i}: chain {chain!r} load is {len(bits)} bits, "
                        f"chain length is {expected}"
                    )
            for chain, bits in vec.unloads.items():
                expected = chain_lengths.get(chain)
                if expected is not None and len(bits) != expected:
                    problems.append(
                        f"vector {i}: chain {chain!r} unload is {len(bits)} bits, "
                        f"chain length is {expected}"
                    )
        return problems
