"""Resumable, checkpointed fuzz campaigns: soaking at 10^5–10^6 scenarios.

``repro fuzz`` is one-shot and in-memory; a soak over a million
generated chips must survive a crash, a ``kill -9``, or a Ctrl-C and
pick up where it stopped.  A :class:`Campaign` owns a directory:

``campaign.json``
    The immutable campaign definition (``repro/campaign/v1``): profile,
    seed range, strategies, chunk size, backend.  Written once at
    creation; resume refuses a directory whose definition changed.
``checkpoint.json``
    All mutable progress, written **atomically** (temp file + fsync +
    ``os.replace``) at every chunk barrier: the seed cursor,
    per-strategy stats, dedupe keys already seen, findings, accumulated
    runtime, and a digest of the resolved definition (resume refuses a
    mismatch).  The checkpoint is RNG-free — every scenario is
    regenerated from its ``(profile, seed)`` coordinates — so a resumed
    campaign is deterministic.  An in-flight chunk accumulates its
    effects in a *staged copy* of this state and folds them in only at
    the barrier, so the in-memory checkpoint state is persistable at
    any instant.
``scenarios.jsonl``
    Append-only per-scenario log (the fuzz scenario documents, one per
    line, flushed per chunk).  On resume, lines past the checkpoint
    cursor — the in-flight chunk a crash may have half-written — are
    truncated before re-running, so the finished log is bit-identical
    to an uninterrupted run's.
``findings/``
    One standalone ``.soc`` repro file per deduplicated finding (see
    below).
``report.json``
    The final ``repro/campaign-report/v1`` document, written when the
    cursor reaches the end.  Identical (modulo the ``runtime`` section)
    however many times the campaign was interrupted and resumed.

**Dedupe.**  Findings are deduplicated by ``(rule, strategy,
minimized-chip digest)``: each new error-severity violation is shrunk
to a minimal reproducing SOC (:mod:`repro.gen.shrink`) and the digest
of that minimized chip keys the finding, so the same defect surfacing
on ten thousand seeds is reported once with ten thousand duplicates
counted.  Warnings are counted per scenario but not shrunk.

**Repro files.**  Each finding writes ``findings/NNN-<digest>.soc``: a
plain ITC'02 ``.soc`` body (human-readable, parses anywhere) headed by
a ``# repro:`` comment embedding the machine replay document — origin
coordinates, shrink ops, pin/power budgets, memories the exchange
format cannot carry, and the violation signature.
:func:`replay_repro` re-runs one standalone and reports whether the
violation still fires.

The serving layer deliberately does **not** grow a ``campaign`` job
kind: a campaign is a long-lived stateful directory with its own
persistence and resume protocol, not a cacheable request/response
document (see :mod:`repro.serve`).  Campaigns are CLI-first:
``repro campaign run/resume/status/replay``.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence

from repro.obs import METRICS, JobProgress, span

CAMPAIGN_SCHEMA = "repro/campaign/v1"
CHECKPOINT_SCHEMA = "repro/campaign-checkpoint/v1"
CAMPAIGN_REPORT_SCHEMA = "repro/campaign-report/v1"
REPRO_SCHEMA = "repro/repro-soc/v1"

#: Comment prefix carrying the machine replay document in a repro file.
_REPRO_PREFIX = "# repro: "

_SCENARIOS = METRICS.counter("campaign.scenarios", "campaign scenarios executed")
_VIOLATIONS = METRICS.counter("campaign.violations", "error violations found")
_FINDINGS = METRICS.counter("campaign.findings", "deduplicated findings emitted")
_DUPLICATES = METRICS.counter("campaign.duplicates", "violations deduped away")
_CHUNKS = METRICS.counter("campaign.chunks", "chunk barriers checkpointed")
_RESUMES = METRICS.counter("campaign.resumes", "campaign resumes")

#: Fresh per-strategy tally (scenario outcomes, not violation counts).
_STAT_KEYS = ("ok", "violated", "infeasible", "crashed", "skipped")


@dataclass(frozen=True)
class CampaignConfig:
    """The immutable definition of one campaign (what ``campaign.json``
    stores; every field is semantic — together with the code version it
    determines the final report bit-for-bit)."""

    profile: str = "tiny"
    seeds: int = 1000
    seed_base: int = 0
    strategies: tuple = ()
    ilp_max_tasks: int = 6
    chunk_size: int = 200
    workers: Optional[int] = None
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError(f"campaign needs at least 1 seed, got {self.seeds}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk size must be >= 1, got {self.chunk_size}")

    def resolved(self) -> "CampaignConfig":
        """Pin every late-bound default (strategy list, worker count,
        backend) so the stored definition is self-contained."""
        from repro.core.batch import auto_workers, resolve_backend
        from repro.sched import available_strategies

        strategies = tuple(self.strategies or available_strategies())
        if self.workers is not None:
            workers = max(1, self.workers)
        elif self.backend in ("thread", "process"):
            workers = auto_workers(min(self.seeds, self.chunk_size))
        else:
            workers = 1
        backend = resolve_backend(self.backend, workers, self.seeds)
        return replace(self, strategies=strategies, workers=workers, backend=backend)

    def to_dict(self) -> dict:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "profile": self.profile,
            "seeds": self.seeds,
            "seed_base": self.seed_base,
            "strategies": list(self.strategies),
            "ilp_max_tasks": self.ilp_max_tasks,
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignConfig":
        return cls(
            profile=doc["profile"],
            seeds=doc["seeds"],
            seed_base=doc["seed_base"],
            strategies=tuple(doc["strategies"]),
            ilp_max_tasks=doc["ilp_max_tasks"],
            chunk_size=doc["chunk_size"],
            workers=doc["workers"],
            backend=doc["backend"],
        )


def _config_digest(doc: dict) -> str:
    """Digest of a (resolved) campaign definition document — stored in
    the checkpoint so resume refuses a directory whose ``campaign.json``
    was edited after creation."""
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()


@dataclass
class _Checkpoint:
    """The mutable campaign state one chunk barrier persists."""

    config_digest: str = ""  # digest of the campaign.json this belongs to
    cursor: int = 0  # seeds completed (next seed = seed_base + cursor)
    violation_count: int = 0
    warning_count: int = 0
    duplicates: int = 0
    strategy_stats: dict = field(default_factory=dict)
    seen: list = field(default_factory=list)  # dedupe keys, insertion order
    findings: list = field(default_factory=list)
    elapsed_seconds: float = 0.0
    resumes: int = 0

    def to_dict(self) -> dict:
        return {
            "schema": CHECKPOINT_SCHEMA,
            "config_digest": self.config_digest,
            "cursor": self.cursor,
            "violation_count": self.violation_count,
            "warning_count": self.warning_count,
            "duplicates": self.duplicates,
            "strategy_stats": self.strategy_stats,
            "seen": self.seen,
            "findings": self.findings,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "resumes": self.resumes,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "_Checkpoint":
        return cls(
            config_digest=doc["config_digest"],
            cursor=doc["cursor"],
            violation_count=doc["violation_count"],
            warning_count=doc["warning_count"],
            duplicates=doc["duplicates"],
            strategy_stats=doc["strategy_stats"],
            seen=list(doc["seen"]),
            findings=list(doc["findings"]),
            elapsed_seconds=doc["elapsed_seconds"],
            resumes=doc["resumes"],
        )


def _write_atomic(path: Path, doc: dict) -> None:
    """Crash-safe JSON write: temp file in the same directory, fsync,
    ``os.replace`` — a reader (or a resume after ``kill -9``) sees the
    old document or the new one, never a torn half."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class CampaignInterrupted(Exception):
    """Internal marker: the chunk loop stopped at a barrier without
    finishing (``max_chunks`` pause); state is checkpointed."""


class Campaign:
    """One campaign directory: definition, checkpoint, logs, findings."""

    def __init__(self, directory: str | os.PathLike):
        self.dir = Path(directory)
        self.config_path = self.dir / "campaign.json"
        self.checkpoint_path = self.dir / "checkpoint.json"
        self.scenarios_path = self.dir / "scenarios.jsonl"
        self.findings_dir = self.dir / "findings"
        self.report_path = self.dir / "report.json"
        self.config: Optional[CampaignConfig] = None
        self.state = _Checkpoint()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, directory: str | os.PathLike, config: CampaignConfig) -> "Campaign":
        """Start a fresh campaign directory (refuses one that already
        holds a campaign — resume that instead of silently restarting)."""
        campaign = cls(directory)
        if campaign.config_path.exists():
            raise FileExistsError(
                f"{campaign.config_path} exists — an interrupted campaign lives "
                f"here; resume it (repro campaign resume {campaign.dir}) or pick "
                "a fresh directory"
            )
        campaign.dir.mkdir(parents=True, exist_ok=True)
        campaign.findings_dir.mkdir(exist_ok=True)
        campaign.config = config.resolved()
        config_doc = campaign.config.to_dict()
        _write_atomic(campaign.config_path, config_doc)
        campaign.state = _Checkpoint(
            config_digest=_config_digest(config_doc),
            strategy_stats={
                name: dict.fromkeys(_STAT_KEYS, 0)
                for name in campaign.config.strategies
            },
        )
        campaign._checkpoint()
        campaign.scenarios_path.touch()
        return campaign

    @classmethod
    def open(cls, directory: str | os.PathLike) -> "Campaign":
        """Attach to an existing campaign directory (the resume path)."""
        campaign = cls(directory)
        if not campaign.config_path.exists():
            raise FileNotFoundError(
                f"{campaign.dir} holds no campaign (missing campaign.json)"
            )
        with open(campaign.config_path) as handle:
            doc = json.load(handle)
        if doc.get("schema") != CAMPAIGN_SCHEMA:
            raise ValueError(f"unsupported campaign schema {doc.get('schema')!r}")
        campaign.config = CampaignConfig.from_dict(doc)
        with open(campaign.checkpoint_path) as handle:
            checkpoint_doc = json.load(handle)
        if checkpoint_doc.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {checkpoint_doc.get('schema')!r}"
            )
        campaign.state = _Checkpoint.from_dict(checkpoint_doc)
        if campaign.state.config_digest != _config_digest(doc):
            raise ValueError(
                f"{campaign.config_path} is not the definition this checkpoint "
                "was created from — the campaign definition changed; start a "
                "fresh directory instead of resuming"
            )
        if campaign.state.cursor > campaign.config.seeds:
            raise ValueError(
                f"checkpoint cursor {campaign.state.cursor} exceeds the "
                f"campaign's {campaign.config.seeds} seeds — the checkpoint "
                "was edited or corrupted outside the campaign"
            )
        return campaign

    @property
    def complete(self) -> bool:
        return self.state.cursor >= (self.config.seeds if self.config else 0)

    def status(self) -> dict:
        """A JSON-native progress snapshot (``repro campaign status``)."""
        state = self.state
        return {
            "dir": str(self.dir),
            "complete": self.complete,
            "done": state.cursor,
            "total": self.config.seeds if self.config else 0,
            "violation_count": state.violation_count,
            "warning_count": state.warning_count,
            "findings": len(state.findings),
            "duplicates": state.duplicates,
            "resumes": state.resumes,
            "elapsed_seconds": round(state.elapsed_seconds, 6),
        }

    # -- persistence ---------------------------------------------------------

    def _checkpoint(self) -> None:
        _write_atomic(self.checkpoint_path, self.state.to_dict())

    def _truncate_scenarios(self) -> None:
        """Drop scenario-log lines past the checkpoint cursor — the
        half-flushed in-flight chunk a crash may have left — so re-run
        chunks never duplicate lines."""
        if not self.scenarios_path.exists():
            self.scenarios_path.touch()
            return
        keep = self.state.cursor
        offset = 0
        with open(self.scenarios_path, "rb") as handle:
            for _ in range(keep):
                line = handle.readline()
                if not line.endswith(b"\n"):
                    raise ValueError(
                        f"{self.scenarios_path} holds fewer complete lines than "
                        f"the checkpoint cursor ({keep}) — the log was edited "
                        "or corrupted outside the campaign"
                    )
                offset += len(line)
        with open(self.scenarios_path, "rb+") as handle:
            handle.truncate(offset)

    # -- the chunk loop ------------------------------------------------------

    def run(
        self, progress: Optional[JobProgress] = None, max_chunks: Optional[int] = None
    ) -> dict:
        """Run (or resume) to completion, returning the final report.

        Checkpoints at every chunk barrier; on ``KeyboardInterrupt`` the
        current state is already safe — the interrupt is re-raised after
        the worker pool is cancelled, losing at most the in-flight
        chunk.  ``max_chunks`` stops at a barrier after that many chunks
        (raising :class:`CampaignInterrupted`) — the deterministic
        "interrupt" used by tests and the CI smoke.
        """
        config = self.config
        state = self.state
        if progress is not None:
            progress.start(config.seeds)
            if state.cursor:
                # totals grow across resumes: re-seed done/violations
                # from the checkpoint so done/total spans the whole
                # campaign, not just this process's share
                progress.resume(state.cursor, violations=state.violation_count)
        if self.complete:
            return self._finish()
        resuming = state.cursor > 0
        if resuming:
            state.resumes += 1
            _RESUMES.inc()
        self._truncate_scenarios()

        with span(
            "campaign.run",
            profile=config.profile,
            seeds=config.seeds,
            backend=config.backend,
            resume=resuming,
        ):
            try:
                self._chunk_loop(max_chunks, progress)
            except KeyboardInterrupt:
                # ``self.state`` only ever holds barrier state — the
                # in-flight chunk accumulates in a staged copy — so
                # re-persisting here is safe at any instant (and
                # restores a checkpoint.json removed out-of-band); then
                # let the interrupt propagate (the CLI exits 130)
                self._checkpoint()
                raise
        return self._finish()

    def _chunk_loop(self, max_chunks, progress) -> None:
        from repro.core.batch import ChunkRunner
        from repro.gen.fuzzing import fuzz_scenario

        config = self.config
        chunks_run = 0
        started = time.perf_counter()
        with ChunkRunner(config.backend, config.workers) as runner, open(
            self.scenarios_path, "a"
        ) as log:
            while not self.complete:
                if max_chunks is not None and chunks_run >= max_chunks:
                    raise CampaignInterrupted(
                        f"paused after {chunks_run} chunk(s); resume with: "
                        f"repro campaign resume {self.dir}"
                    )
                first = config.seed_base + self.state.cursor
                seeds = list(
                    range(first, min(first + config.chunk_size,
                                     config.seed_base + config.seeds))
                )
                with span("campaign.chunk", first=first, size=len(seeds)):
                    outcomes = runner.map(
                        fuzz_scenario,
                        (
                            itertools.repeat(config.profile),
                            seeds,
                            itertools.repeat(config.strategies),
                            itertools.repeat(config.ilp_max_tasks),
                        ),
                    )
                # transactional absorb: the chunk's effects (counters,
                # dedupe keys, findings) accumulate in a staged copy;
                # ``self.state`` stays at the last barrier, so an
                # interrupt landing anywhere in this loop — shrinking
                # runs here, in this process — never exposes half a
                # chunk to a checkpoint.  Repro files written along the
                # way are rewritten identically when the chunk re-runs.
                staged = copy.deepcopy(self.state)
                seen = {tuple(key) for key in staged.seen}
                for seed, (doc, count) in zip(seeds, outcomes):
                    self._absorb(staged, seen, seed, doc, count, log)
                    if progress is not None:
                        progress.advance(violations=count)
                log.flush()
                os.fsync(log.fileno())
                staged.cursor += len(seeds)
                now = time.perf_counter()
                staged.elapsed_seconds += now - started
                started = now
                # the barrier: scenario lines are durable before the
                # staged state (whose cursor claims them) becomes
                # current and is checkpointed
                self.state = staged
                self._checkpoint()
                _CHUNKS.inc()
                chunks_run += 1

    def _absorb(
        self, state: _Checkpoint, seen: set, seed: int, doc: dict,
        violation_count: int, log,
    ) -> None:
        """Fold one finished scenario into the chunk's staged state:
        log line, per-strategy tallies, and dedupe/shrink for every new
        error signature."""
        from repro.gen.fuzzing import scenario_warning_count
        from repro.gen.shrink import scenario_signatures

        log.write(json.dumps(doc, sort_keys=True) + "\n")
        _SCENARIOS.inc()
        state.violation_count += violation_count
        state.warning_count += scenario_warning_count(doc)
        _VIOLATIONS.inc(violation_count)
        for strategy, cell in doc["strategies"].items():
            stats = state.strategy_stats.setdefault(
                strategy, dict.fromkeys(_STAT_KEYS, 0)
            )
            if "skipped" in cell:
                stats["skipped"] += 1
            elif "infeasible" in cell:
                stats["infeasible"] += 1
            elif "crashed" in cell:
                stats["crashed"] += 1
            elif cell["ok"]:
                stats["ok"] += 1
            else:
                stats["violated"] += 1
        for sig in scenario_signatures(doc):
            self._record_finding(state, seen, seed, doc, sig)

    def _record_finding(
        self, state: _Checkpoint, seen: set, seed: int, doc: dict, sig
    ) -> None:
        """Shrink one error signature and dedupe it by
        ``(rule, strategy, minimized-chip digest)``.  ``seen`` is the
        set form of ``state.seen`` for O(1) membership — the list form
        persists in the checkpoint, the set rides alongside."""
        from repro.gen.generator import SocGenerator
        from repro.gen.shrink import shrink_scenario

        config = self.config
        soc = SocGenerator(seed, config.profile).generate()
        with span("campaign.shrink", seed=seed, signature=sig.describe()):
            try:
                minimized, ops = shrink_scenario(soc, sig, config.ilp_max_tasks)
            except ValueError:
                # the violation is flaky under re-execution (e.g. a
                # crash that depends on ambient state): keep the
                # unshrunk chip as the repro
                minimized, ops = soc, []
        digest = minimized.digest()
        key = (sig.rule or sig.kind, sig.strategy, digest)
        if key in seen:
            state.duplicates += 1
            _DUPLICATES.inc()
            return
        seen.add(key)
        state.seen.append(list(key))
        finding = {
            "index": len(state.findings),
            "signature": sig.to_dict(),
            "rule": sig.rule or sig.kind,
            "strategy": sig.strategy,
            "digest": digest,
            "profile": config.profile,
            "seed": seed,
            "soc": doc["soc"],
            "minimized": {
                "cores": len(minimized.cores),
                "memories": len(minimized.memories),
                "test_pins": minimized.test_pins,
                "power_budget": minimized.power_budget,
            },
            "ops": ops,
            "file": f"findings/{len(state.findings):04d}-{digest[:12]}.soc",
        }
        self._write_repro(finding, minimized)
        state.findings.append(finding)
        _FINDINGS.inc()

    def _write_repro(self, finding: dict, minimized) -> None:
        """Emit the standalone ``.soc`` repro file for one finding."""
        from repro.gen.writer import soc_to_text

        replay = {
            "schema": REPRO_SCHEMA,
            "signature": finding["signature"],
            "profile": finding["profile"],
            "seed": finding["seed"],
            "ilp_max_tasks": self.config.ilp_max_tasks,
            "ops": finding["ops"],
            "test_pins": minimized.test_pins,
            "power_budget": minimized.power_budget,
        }
        body = soc_to_text(minimized) if minimized.cores else f"SocName {minimized.name}\n"
        text = _REPRO_PREFIX + json.dumps(replay, sort_keys=True) + "\n" + body
        path = self.dir / finding["file"]
        path.parent.mkdir(exist_ok=True)
        with open(path, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())

    def _finish(self) -> dict:
        """Assemble (and persist) the final report."""
        report = self.report()
        _write_atomic(self.report_path, report)
        return report

    def report(self) -> dict:
        """The ``repro/campaign-report/v1`` document for current state.

        Everything outside ``runtime`` is a pure function of the
        campaign definition and the code — byte-identical across any
        interrupt/resume history.
        """
        config = self.config
        state = self.state
        return {
            "schema": CAMPAIGN_REPORT_SCHEMA,
            "profile": config.profile,
            "seed_base": config.seed_base,
            "seeds": config.seeds,
            "strategies": list(config.strategies),
            "ilp_max_tasks": config.ilp_max_tasks,
            "chunk_size": config.chunk_size,
            "backend": config.backend,
            "workers": config.workers,
            "complete": self.complete,
            "scenarios": state.cursor,
            "ok": state.violation_count == 0,
            "violation_count": state.violation_count,
            "warning_count": state.warning_count,
            "findings": state.findings,
            "duplicates": state.duplicates,
            # the one section resume history may change — compare
            # reports with this key removed
            "runtime": {
                "elapsed_seconds": round(state.elapsed_seconds, 6),
                "resumes": state.resumes,
            },
        }


# -- module-level front ends -------------------------------------------------


def run_campaign(
    directory: str | os.PathLike,
    profile: str = "tiny",
    seeds: int = 1000,
    seed_base: int = 0,
    strategies: Optional[Sequence[str]] = None,
    ilp_max_tasks: int = 6,
    chunk_size: int = 200,
    workers: Optional[int] = None,
    backend: str = "auto",
    progress: Optional[JobProgress] = None,
    max_chunks: Optional[int] = None,
) -> dict:
    """Create and run a fresh campaign — the ``repro campaign run``
    entry point.  Returns the final report document."""
    campaign = Campaign.create(
        directory,
        CampaignConfig(
            profile=profile,
            seeds=seeds,
            seed_base=seed_base,
            strategies=tuple(strategies or ()),
            ilp_max_tasks=ilp_max_tasks,
            chunk_size=chunk_size,
            workers=workers,
            backend=backend,
        ),
    )
    return campaign.run(progress=progress, max_chunks=max_chunks)


def resume_campaign(
    directory: str | os.PathLike,
    progress: Optional[JobProgress] = None,
    max_chunks: Optional[int] = None,
) -> dict:
    """Resume an interrupted campaign — ``repro campaign resume``."""
    return Campaign.open(directory).run(progress=progress, max_chunks=max_chunks)


def campaign_status(directory: str | os.PathLike) -> dict:
    """Progress snapshot for ``repro campaign status``."""
    return Campaign.open(directory).status()


def load_repro(path: str | os.PathLike) -> dict:
    """Read the machine replay document embedded in a repro file."""
    with open(path) as handle:
        first = handle.readline()
    if not first.startswith(_REPRO_PREFIX):
        raise ValueError(f"{path} is not a campaign repro file (no '# repro:' header)")
    doc = json.loads(first[len(_REPRO_PREFIX):])
    if doc.get("schema") != REPRO_SCHEMA:
        raise ValueError(f"unsupported repro schema {doc.get('schema')!r}")
    return doc


def replay_repro(path: str | os.PathLike) -> dict:
    """Re-run one repro file standalone: regenerate the origin chip,
    re-apply the recorded shrink ops, and check whether the violation
    signature still fires.  Returns ``{"fires": bool, ...}``."""
    from repro.gen.generator import SocGenerator
    from repro.gen.shrink import ViolationSignature, apply_ops, signature_fires

    doc = load_repro(path)
    sig = ViolationSignature.from_dict(doc["signature"])
    soc = SocGenerator(doc["seed"], doc["profile"]).generate()
    minimized = apply_ops(soc, doc["ops"])
    fires = signature_fires(minimized, sig, doc["ilp_max_tasks"])
    return {
        "file": str(path),
        "signature": sig.to_dict(),
        "soc": minimized.name,
        "digest": minimized.digest(),
        "fires": fires,
    }
