"""Synthetic SOC workload generation (the SAIBERSOC posture for STEAC).

Seeded, profile-driven generation of valid :class:`repro.soc.Soc`
instances, an ITC'02 ``.soc`` writer that round-trips through the
existing parser, and a corpus API yielding reproducible scenario
streams — the substrate the differential fuzz harness
(``python -m repro fuzz``), the property-based tests, and the scaling
benchmarks all draw from.  On top of the one-shot sweep,
:mod:`repro.gen.campaign` runs resumable, checkpointed soaks
(``python -m repro campaign``) with violation dedupe and greedy failure
shrinking (:mod:`repro.gen.shrink`).
"""

from repro.gen.campaign import (
    CAMPAIGN_REPORT_SCHEMA,
    Campaign,
    CampaignConfig,
    CampaignInterrupted,
    campaign_status,
    load_repro,
    replay_repro,
    resume_campaign,
    run_campaign,
)
from repro.gen.corpus import (
    DEFAULT_PROFILES,
    Scenario,
    ScenarioSpec,
    scenario_specs,
    scenarios,
)
from repro.gen.fuzzing import FUZZ_SCHEMA, fuzz_scenario, run_fuzz
from repro.gen.generator import SocGenerator, chip_name, generate_soc
from repro.gen.profiles import (
    GenProfile,
    available_profiles,
    get_profile,
    register_profile,
)
from repro.gen.shrink import (
    ViolationSignature,
    apply_ops,
    shrink_scenario,
    shrink_soc,
)
from repro.gen.writer import (
    core_to_module,
    roundtrip_errors,
    roundtrips,
    soc_to_modules,
    soc_to_text,
)

__all__ = [
    "CAMPAIGN_REPORT_SCHEMA",
    "Campaign",
    "CampaignConfig",
    "CampaignInterrupted",
    "DEFAULT_PROFILES",
    "FUZZ_SCHEMA",
    "GenProfile",
    "ViolationSignature",
    "Scenario",
    "ScenarioSpec",
    "SocGenerator",
    "apply_ops",
    "available_profiles",
    "campaign_status",
    "chip_name",
    "core_to_module",
    "fuzz_scenario",
    "generate_soc",
    "get_profile",
    "load_repro",
    "register_profile",
    "replay_repro",
    "resume_campaign",
    "roundtrip_errors",
    "roundtrips",
    "run_campaign",
    "run_fuzz",
    "scenario_specs",
    "scenarios",
    "shrink_scenario",
    "shrink_soc",
    "soc_to_modules",
    "soc_to_text",
]
