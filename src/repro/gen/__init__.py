"""Synthetic SOC workload generation (the SAIBERSOC posture for STEAC).

Seeded, profile-driven generation of valid :class:`repro.soc.Soc`
instances, an ITC'02 ``.soc`` writer that round-trips through the
existing parser, and a corpus API yielding reproducible scenario
streams — the substrate the differential fuzz harness
(``python -m repro fuzz``), the property-based tests, and the scaling
benchmarks all draw from.
"""

from repro.gen.corpus import (
    DEFAULT_PROFILES,
    Scenario,
    ScenarioSpec,
    scenario_specs,
    scenarios,
)
from repro.gen.fuzzing import FUZZ_SCHEMA, fuzz_scenario, run_fuzz
from repro.gen.generator import SocGenerator, chip_name, generate_soc
from repro.gen.profiles import (
    GenProfile,
    available_profiles,
    get_profile,
    register_profile,
)
from repro.gen.writer import (
    core_to_module,
    roundtrip_errors,
    roundtrips,
    soc_to_modules,
    soc_to_text,
)

__all__ = [
    "DEFAULT_PROFILES",
    "FUZZ_SCHEMA",
    "GenProfile",
    "Scenario",
    "ScenarioSpec",
    "SocGenerator",
    "available_profiles",
    "chip_name",
    "core_to_module",
    "fuzz_scenario",
    "generate_soc",
    "get_profile",
    "register_profile",
    "roundtrip_errors",
    "roundtrips",
    "run_fuzz",
    "scenario_specs",
    "scenarios",
    "soc_to_modules",
    "soc_to_text",
]
