"""Differential fuzzing as a library: every registered strategy over a
generated corpus, every schedule invariant-checked, every chip
round-tripped through the ``.soc`` writer/parser.

This is the engine behind ``python -m repro fuzz`` *and* the serving
layer's ``fuzz`` job kind — both produce the same
``repro/fuzz-report/v2`` document, so a sweep submitted over HTTP is
byte-comparable with one run from the shell.  :func:`fuzz_scenario` is
module-level and fed only ``(profile, seed)`` coordinates, never live
models, so the process backend can pickle the work out to workers.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

#: v2: strategy cells split ``violations`` into per-severity ``errors``
#: / ``warnings`` lists (v1 listed both under one key while only errors
#: counted toward the verdict, so a warnings-only scenario reported
#: ``ok: true`` beside a non-empty ``violations`` list), and the
#: top-level report records its execution coordinates (resolved
#: ``backend``, ``workers``, ``ilp_max_tasks``) so a saved report can be
#: reproduced exactly.
FUZZ_SCHEMA = "repro/fuzz-report/v2"


def fuzz_scenario(
    profile: str, seed: int, strategies: tuple, ilp_max_tasks: int
) -> tuple[dict, int]:
    """One fuzz scenario: generate the chip from its coordinates, race
    every strategy, invariant-check each schedule, round-trip the
    ``.soc`` writer/parser.  Returns ``(scenario doc, violation count)``.
    """
    from repro.core import CompileBist, FlowContext, SteacConfig
    from repro.gen.generator import SocGenerator
    from repro.gen.writer import roundtrip_errors
    from repro.sched import (
        InfeasibleScheduleError,
        resolve_schedule,
        schedule_lower_bound,
    )
    from repro.verify import verify_schedule

    soc = SocGenerator(seed, profile).generate()
    violation_count = 0
    ctx = FlowContext(soc=soc, config=SteacConfig(compare_strategies=False))
    CompileBist().run(ctx)
    bound = schedule_lower_bound(soc, ctx.tasks)
    rt_errors = roundtrip_errors(soc)
    violation_count += len(rt_errors)
    doc = {
        "soc": soc.name,
        "seed": seed,
        "tasks": len(ctx.tasks),
        "lower_bound": bound,
        "roundtrip_ok": not rt_errors,
        "roundtrip_errors": rt_errors,
        "strategies": {},
    }
    for strategy in strategies:
        if strategy == "ilp" and len(ctx.tasks) > ilp_max_tasks:
            doc["strategies"][strategy] = {"skipped": f"> {ilp_max_tasks} tasks"}
            continue
        try:
            result = resolve_schedule(strategy, soc, ctx.tasks)
        except InfeasibleScheduleError as exc:
            violation_count += 1
            doc["strategies"][strategy] = {"infeasible": str(exc)}
            continue
        except ImportError as exc:
            # an optional dependency (scipy for "ilp") is absent —
            # not a scheduling violation, skip like the pipeline does
            doc["strategies"][strategy] = {"skipped": f"optional dependency: {exc}"}
            continue
        except Exception as exc:
            # a crashing scheduler is the defect class a differential
            # harness exists to report: record it (with the replay
            # coordinates) instead of sinking the whole sweep
            violation_count += 1
            doc["strategies"][strategy] = {"crashed": f"{type(exc).__name__}: {exc}"}
            continue
        report = verify_schedule(soc, result, tasks=ctx.tasks)
        violation_count += len(report.errors)
        # errors and warnings ride in separate lists: only errors count
        # toward the verdict, and consumers must never have to re-filter
        # a mixed list to learn why "ok" said what it said
        doc["strategies"][strategy] = {
            "total_time": result.total_time,
            "sessions": result.session_count,
            "ok": report.ok,
            "errors": [v.to_dict() for v in report.errors],
            "warnings": [v.to_dict() for v in report.warnings],
        }
    return doc, violation_count


def scenario_warning_count(doc: dict) -> int:
    """Warning-severity violations recorded in one scenario document."""
    return sum(
        len(cell.get("warnings", ())) for cell in doc.get("strategies", {}).values()
    )


def run_fuzz(
    profile: str = "tiny",
    seeds: int = 20,
    seed_base: int = 0,
    strategies: Optional[Sequence[str]] = None,
    ilp_max_tasks: int = 6,
    workers: Optional[int] = None,
    backend: str = "auto",
    progress=None,
) -> dict:
    """Run a differential fuzz sweep, returning the
    ``repro/fuzz-report/v2`` document (``doc["ok"]`` is the verdict;
    the CLI and the serving layer both wrap this call).

    ``workers=None`` keeps an explicitly parallel backend honest (one
    worker per seed, capped at the CPUs) and the default sweep serial —
    serial stays safe for in-process plugin registries, whose entries
    never reach spawned worker processes.

    ``progress`` is an optional :class:`repro.obs.JobProgress` bumped
    once per finished scenario (with its violation count), so a served
    fuzz job exposes live ``done/total`` while the sweep runs.
    """
    from repro.core.batch import auto_workers, map_backend, resolve_backend
    from repro.obs import span
    from repro.sched import available_strategies

    if seeds < 1:
        raise ValueError(f"fuzz needs at least 1 seed, got {seeds}")
    strategy_list = list(strategies or available_strategies())
    seed_list = list(range(seed_base, seed_base + seeds))
    if workers is not None:
        worker_count = max(1, workers)
    elif backend in ("thread", "process"):
        worker_count = auto_workers(len(seed_list))
    else:
        worker_count = 1
    resolved = resolve_backend(backend, worker_count, len(seed_list))
    note = None
    if progress is not None:
        progress.start(len(seed_list))

        def note(outcome) -> None:
            progress.advance(violations=outcome[1])

    with span("fuzz.run", profile=profile, seeds=seeds, backend=resolved):
        outcomes = map_backend(
            fuzz_scenario,
            (
                itertools.repeat(profile),
                seed_list,
                itertools.repeat(tuple(strategy_list)),
                itertools.repeat(ilp_max_tasks),
            ),
            resolved,
            worker_count,
            progress=note,
        )
    violation_count = sum(count for _, count in outcomes)
    return {
        "schema": FUZZ_SCHEMA,
        "profile": profile,
        "seed_base": seed_base,
        "seeds": seeds,
        "strategies": strategy_list,
        # the execution coordinates a reproduction needs: the resolved
        # backend (like batch-result v3 records it), the worker count,
        # and the MILP gate that decided which scenarios skipped "ilp"
        "backend": resolved,
        "workers": worker_count,
        "ilp_max_tasks": ilp_max_tasks,
        "ok": violation_count == 0,
        "violation_count": violation_count,
        "warning_count": sum(scenario_warning_count(doc) for doc, _ in outcomes),
        "scenarios": [doc for doc, _ in outcomes],
    }
