"""Seeded synthetic SOC generation.

:class:`SocGenerator` draws valid :class:`repro.soc.Soc` instances from
a :class:`~repro.gen.profiles.GenProfile` — the SAIBERSOC idea (inject
parameterized synthetic workloads to benchmark the test platform)
applied to STEAC: instead of exercising the schedulers, wrapper
generator, and repair engine on two hand-built chips, thousands of
reproducible scenarios can be streamed through them.

Two properties are load-bearing:

* **Determinism** — one ``(seed, index)`` pair maps to one bit-identical
  chip, whatever the platform or process (``random.Random`` with a
  derived seed, draws in a fixed order).  A fuzz failure is reproduced
  from its seed alone.
* **Feasibility by construction** — the pin budget is set above the
  computed floor of the *dedicated-pin* (non-session) baseline and any
  power budget is drawn above the heaviest single test, so every
  registered strategy can schedule every generated chip and the
  differential harness never trips over a spurious infeasibility.

Cores are drawn as ITC'02 module records and materialized through
:func:`repro.soc.itc02.module_to_core` — the same path the d695
benchmark uses — so every generated SOC round-trips through the
``.soc`` writer/parser pair (:mod:`repro.gen.writer`).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.gen.profiles import GenProfile, get_profile
from repro.sched.ioalloc import BIST_PORT_PINS, SharingPolicy, control_pins
from repro.sched.tasks import tasks_from_soc
from repro.soc.core import CoreType
from repro.soc.itc02 import Itc02Module, module_to_core
from repro.soc.memory import MemorySpec, MemoryType, RedundancySpec
from repro.soc.soc import Soc
from repro.soc.tests import functional_test

#: Mixing constant for (seed, index) -> sub-seed derivation (same scheme
#: as the Monte-Carlo repair engine's per-trial seeding).
_SEED_STRIDE = 1_000_003


def chip_name(profile: GenProfile | str, seed: int, index: int) -> str:
    """The deterministic name of chip ``(profile, seed, index)`` — known
    without generating the chip, so spec-based batch work items can be
    labelled before any worker materializes them."""
    resolved = get_profile(profile) if isinstance(profile, str) else profile
    return f"gen_{resolved.slug}_s{seed}_{index}"


class SocGenerator:
    """Deterministic synthetic-SOC source for one ``(seed, profile)``.

    >>> from repro.gen import SocGenerator
    >>> soc = SocGenerator(seed=7, profile="small").generate()
    >>> soc is not SocGenerator(7, "small").generate()  # fresh object...
    True

    ...but structurally bit-identical (``tests/test_gen.py`` pins this).
    """

    def __init__(self, seed: int, profile: GenProfile | str = "small"):
        self.seed = seed
        self.profile = get_profile(profile) if isinstance(profile, str) else profile

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SocGenerator(seed={self.seed}, profile={self.profile.name!r})"

    # -- generation --------------------------------------------------------

    def generate(self, index: int = 0) -> Soc:
        """Generate chip ``index`` of this generator's stream."""
        rng = random.Random(self.seed * _SEED_STRIDE + index)
        profile = self.profile
        name = chip_name(profile, self.seed, index)

        soc = Soc(name=name, test_pins=64)  # pin budget fixed up below
        n_cores = rng.randint(*profile.cores)
        for i in range(n_cores):
            soc.add_core(self._draw_core(rng, f"c{i}"))
        for j in range(rng.randint(*profile.memories)):
            soc.add_memory(self._draw_memory(rng, f"m{j}"))
        soc.gate_count = rng.randint(*profile.glue_gates)
        soc.test_pins = self._feasible_pins(soc) + rng.randint(*profile.extra_pins)
        soc.power_budget = self._draw_power_budget(rng, soc)
        return soc

    def stream(self, count: int, start: int = 0) -> Iterator[Soc]:
        """Yield chips ``start .. start+count-1`` of the stream."""
        for index in range(start, start + count):
            yield self.generate(index)

    # -- draws (fixed order: cores, memories, glue, pins, power) -----------

    def _draw_core(self, rng: random.Random, name: str):
        profile = self.profile
        scanned = rng.random() < profile.scan_fraction
        if scanned:
            n_chains = rng.randint(*profile.chains)
            lengths = tuple(
                rng.randint(*profile.chain_flops) for _ in range(n_chains)
            )
            patterns = rng.randint(*profile.scan_patterns)
        else:
            lengths = ()
            patterns = rng.randint(*profile.functional_patterns)
        module = Itc02Module(
            name=name,
            inputs=rng.randint(*profile.inputs),
            outputs=rng.randint(*profile.outputs),
            bidirs=rng.randint(*profile.bidirs),
            scan_chain_lengths=lengths,
            patterns=patterns,
        )
        core = module_to_core(module, power=round(rng.uniform(*profile.test_power), 2))
        if scanned and rng.random() >= profile.soft_fraction:
            core.core_type = CoreType.HARD
        if scanned and rng.random() < profile.dual_test_fraction:
            core.tests.append(
                functional_test(
                    rng.randint(*profile.functional_patterns),
                    name=f"{name}_func",
                    power=round(rng.uniform(*profile.test_power), 2),
                )
            )
        return core

    def _draw_memory(self, rng: random.Random, name: str) -> MemorySpec:
        profile = self.profile
        redundancy = None
        if rng.random() < profile.redundancy_fraction:
            redundancy = RedundancySpec(rng.randint(1, 4), rng.randint(1, 4))
        return MemorySpec(
            name=name,
            words=rng.choice(profile.memory_words_choices),
            bits=rng.choice(profile.memory_bits_choices),
            mem_type=MemoryType.TWO_PORT if rng.random() < 0.2 else MemoryType.SINGLE_PORT,
            power=round(rng.uniform(*profile.test_power), 2),
            redundancy=redundancy,
        )

    # -- feasibility floors ------------------------------------------------

    @staticmethod
    def _feasible_pins(soc: Soc) -> int:
        """The pin floor keeping every registered strategy feasible.

        The binding constraint is the non-session baseline: *all* control
        IOs of *all* tests held on dedicated pins concurrently, plus the
        BIST port when memories exist, plus one TAM wire pair.  Only
        control-IO accounting matters here, so the tasks are built
        without scan-time models (``design_wrapper`` sweeps would
        otherwise dominate generation time).
        """
        ctrl = control_pins(tasks_from_soc(soc, time_models=False), SharingPolicy.none())
        if soc.memories:
            ctrl += BIST_PORT_PINS
        return ctrl + 2

    def _draw_power_budget(self, rng: random.Random, soc: Soc) -> float:
        """A finite budget or 0 (unconstrained).

        The floor is the heavier of 1.3x the hottest single test
        (singleton sessions always fit) and ~a third of the total chip
        test power (the session heuristic's 8-session cap stays
        reachable even when every session must share the budget).
        """
        if rng.random() >= self.profile.power_budget_fraction:
            return 0.0
        powers = [t.power for c in soc.cores for t in c.tests] + [
            m.power for m in soc.memories
        ]
        peak, total = max(powers, default=0.0), sum(powers)
        if peak <= 0.0:
            return 0.0
        return round(max(1.3 * peak, rng.uniform(0.35, 0.9) * total), 2)


def generate_soc(seed: int, profile: GenProfile | str = "small", index: int = 0) -> Soc:
    """One-call convenience: ``SocGenerator(seed, profile).generate(index)``."""
    return SocGenerator(seed, profile).generate(index)
