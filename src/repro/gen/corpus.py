"""Reproducible scenario streams over the generator.

A *scenario* is one generated chip plus the coordinates that recreate
it — ``(profile, seed, index)``.  The corpus API is how harnesses
consume the generator at scale: the CLI ``fuzz`` command walks a
:func:`scenarios` stream, and any failure it reports is replayed with
:meth:`Scenario.regenerate` (or ``python -m repro generate --profile P
--seed S``) from the printed coordinates alone.

For batch execution the coordinates themselves are the work unit:
:class:`ScenarioSpec` is a few integers that ``build()`` into the chip
on demand, so ``repro.core.batch``'s process backend ships specs to
workers (cheap to pickle) and materializes each SOC inside the worker
instead of serializing live models across the process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.gen.generator import SocGenerator, chip_name
from repro.gen.profiles import GenProfile, get_profile
from repro.soc.soc import Soc

#: Default profile mix for corpus streams: the sizes every strategy
#: (including the exact MILP, on the tiny end) can digest.
DEFAULT_PROFILES: tuple[str, ...] = ("tiny", "small")


@dataclass(frozen=True)
class ScenarioSpec:
    """Coordinates of one generated chip, plus optional budget overrides.

    The spec is the *transferable* form of a scenario — a handful of
    ints/strings that pickle in a few bytes — and doubles as a batch
    work item (``repro.core.batch`` calls :meth:`build` in the worker).
    """

    profile: str
    seed: int
    index: int = 0
    test_pins: Optional[int] = None
    power_budget: Optional[float] = None

    @property
    def name(self) -> str:
        """The chip's deterministic name (no generation needed)."""
        return chip_name(self.profile, self.seed, self.index)

    def build(self) -> Soc:
        """Materialize the chip (bit-identical for equal coordinates)."""
        soc = SocGenerator(self.seed, self.profile).generate(self.index)
        if self.test_pins is not None:
            soc.test_pins = self.test_pins
        if self.power_budget is not None:
            soc.power_budget = self.power_budget
        return soc

    def describe(self) -> str:
        """Replay coordinates for failure reports."""
        return (
            f"{self.name} (profile={self.profile} seed={self.seed} "
            f"index={self.index})"
        )


@dataclass(frozen=True)
class Scenario:
    """One corpus entry: a chip and the seed coordinates that rebuild it."""

    profile: str
    seed: int
    index: int
    soc: Soc

    @property
    def spec(self) -> ScenarioSpec:
        """The transferable coordinates of this scenario."""
        return ScenarioSpec(profile=self.profile, seed=self.seed, index=self.index)

    def regenerate(self) -> Soc:
        """Rebuild the chip from coordinates (bit-identical to ``soc``)."""
        return SocGenerator(self.seed, self.profile).generate(self.index)

    def describe(self) -> str:
        """Replay coordinates for failure reports."""
        return f"{self.soc.name} (profile={self.profile} seed={self.seed} index={self.index})"


def scenario_specs(
    count: int,
    profiles: Sequence[GenProfile | str] = DEFAULT_PROFILES,
    base_seed: int = 0,
) -> list[ScenarioSpec]:
    """The coordinates of :func:`scenarios` without generating any chip.

    Use these as batch work items: ``integrate_many(scenario_specs(64,
    ["d695-like"]), backend="process")`` ships only coordinates to the
    worker processes.
    """
    resolved = [get_profile(p) if isinstance(p, str) else p for p in profiles]
    if not resolved:
        raise ValueError("corpus needs at least one profile")
    return [
        ScenarioSpec(profile=resolved[i % len(resolved)].name, seed=base_seed + i)
        for i in range(count)
    ]


def scenarios(
    count: int,
    profiles: Sequence[GenProfile | str] = DEFAULT_PROFILES,
    base_seed: int = 0,
) -> Iterator[Scenario]:
    """Yield ``count`` scenarios, cycling through ``profiles``.

    Seeds run ``base_seed .. base_seed+count-1``; profile ``i % len``
    gets seed ``base_seed + i``.  The stream is fully reproducible:
    equal arguments yield structurally identical chips in the same
    order.
    """
    for spec in scenario_specs(count, profiles, base_seed):
        yield Scenario(
            profile=spec.profile,
            seed=spec.seed,
            index=spec.index,
            soc=spec.build(),
        )
