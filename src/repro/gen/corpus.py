"""Reproducible scenario streams over the generator.

A *scenario* is one generated chip plus the coordinates that recreate
it — ``(profile, seed, index)``.  The corpus API is how harnesses
consume the generator at scale: the CLI ``fuzz`` command walks a
:func:`scenarios` stream, and any failure it reports is replayed with
:meth:`Scenario.regenerate` (or ``python -m repro generate --profile P
--seed S``) from the printed coordinates alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.gen.generator import SocGenerator
from repro.gen.profiles import GenProfile, get_profile
from repro.soc.soc import Soc

#: Default profile mix for corpus streams: the sizes every strategy
#: (including the exact MILP, on the tiny end) can digest.
DEFAULT_PROFILES: tuple[str, ...] = ("tiny", "small")


@dataclass(frozen=True)
class Scenario:
    """One corpus entry: a chip and the seed coordinates that rebuild it."""

    profile: str
    seed: int
    index: int
    soc: Soc

    def regenerate(self) -> Soc:
        """Rebuild the chip from coordinates (bit-identical to ``soc``)."""
        return SocGenerator(self.seed, self.profile).generate(self.index)

    def describe(self) -> str:
        """Replay coordinates for failure reports."""
        return f"{self.soc.name} (profile={self.profile} seed={self.seed} index={self.index})"


def scenarios(
    count: int,
    profiles: Sequence[GenProfile | str] = DEFAULT_PROFILES,
    base_seed: int = 0,
) -> Iterator[Scenario]:
    """Yield ``count`` scenarios, cycling through ``profiles``.

    Seeds run ``base_seed .. base_seed+count-1``; profile ``i % len``
    gets seed ``base_seed + i``.  The stream is fully reproducible:
    equal arguments yield structurally identical chips in the same
    order.
    """
    resolved = [get_profile(p) if isinstance(p, str) else p for p in profiles]
    if not resolved:
        raise ValueError("corpus needs at least one profile")
    for i in range(count):
        profile = resolved[i % len(resolved)]
        seed = base_seed + i
        yield Scenario(
            profile=profile.name,
            seed=seed,
            index=0,
            soc=SocGenerator(seed, profile).generate(),
        )
