"""ITC'02 ``.soc`` writer for generated (and hand-built) SOCs.

The inverse of :func:`repro.soc.itc02.module_to_core`: a :class:`Soc`
whose cores follow the ITC'02 port convention (functional ``pi``/``po``/
``pb`` pins, one clock, reset + SE when scanned) renders to the ``.soc``
exchange format and **round-trips through the existing parser with
equality** — the property the fuzz harness checks on every generated
chip, and the acceptance gate for this subsystem::

    parse_soc(soc_to_text(soc)) == (soc.name, soc_to_modules(soc))

Information the exchange format cannot carry (memories, power budgets,
hard/soft core types, secondary tests) is deliberately dropped — the
round-trip invariant is at the module level, exactly what the format
defines.
"""

from __future__ import annotations

from repro.soc.core import Core
from repro.soc.itc02 import Itc02Module, modules_to_text, parse_soc
from repro.soc.ports import Direction, SignalKind
from repro.soc.soc import Soc


def core_to_module(core: Core) -> Itc02Module:
    """Project a core onto its ITC'02 module record.

    Functional IO counts are width-weighted (a 4-bit bus counts 4, as
    pads do); the pattern count is the core's total scan patterns when
    it has scan chains, else its total functional patterns — matching
    the single-test convention of :func:`~repro.soc.itc02.module_to_core`.
    """
    inputs = outputs = bidirs = 0
    for port in core.ports:
        if port.kind is not SignalKind.FUNCTIONAL:
            continue
        if port.direction is Direction.IN:
            inputs += port.width
        elif port.direction is Direction.OUT:
            outputs += port.width
        else:
            bidirs += port.width
    patterns = core.scan_patterns if core.scan_chains else core.functional_patterns
    return Itc02Module(
        name=core.name,
        inputs=inputs,
        outputs=outputs,
        bidirs=bidirs,
        scan_chain_lengths=tuple(core.chain_lengths),
        patterns=patterns,
    )


def soc_to_modules(soc: Soc) -> list[Itc02Module]:
    """Every core of ``soc`` as an ITC'02 module record, in core order."""
    return [core_to_module(core) for core in soc.cores]


def soc_to_text(soc: Soc) -> str:
    """Render ``soc`` in the ``.soc`` exchange format."""
    return modules_to_text(soc.name, soc_to_modules(soc))


def roundtrip_errors(soc: Soc) -> list[str]:
    """Check the writer → parser round trip, returning human-readable
    mismatch descriptions (empty = clean, the invariant holds)."""
    expected = soc_to_modules(soc)
    name, parsed = parse_soc(soc_to_text(soc))
    errors: list[str] = []
    if name != soc.name:
        errors.append(f"SocName {name!r} != {soc.name!r}")
    if len(parsed) != len(expected):
        errors.append(f"module count {len(parsed)} != {len(expected)}")
        return errors
    for want, got in zip(expected, parsed):
        if want != got:
            errors.append(f"module {want.name!r}: {got} != {want}")
    return errors


def roundtrips(soc: Soc) -> bool:
    """True when ``soc`` survives the writer → parser round trip intact."""
    return not roundtrip_errors(soc)
