"""Greedy failure shrinking: reduce a violating SOC to a minimal repro.

A fuzz campaign over 10^5+ generated chips surfaces violations on chips
with dozens of cores and memories; almost none of that structure is
needed to reproduce the bug.  :func:`shrink_soc` greedily removes chip
elements — whole cores, whole memories, secondary tests, individual
scan chains — re-checking the violation after every cut and keeping
only cuts that preserve it, then canonicalizes the survivors (glue
gates to zero, power budget to unconstrained, pin budget to the
feasibility floor, name to ``"repro"``) so the same underlying defect
found on different seeds shrinks to the same chip whenever the
structure allows.  The digest of the minimized chip is the third leg of
the campaign's dedupe key ``(rule, strategy, minimized-chip digest)``.

Every accepted cut is recorded as a JSON-native *op*
(``{"op": "drop_core", "name": "c3"}``, ...), so a repro is replayed
bit-identically from ``(profile, seed)`` coordinates plus the op list
alone — :func:`apply_ops` is the deterministic inverse the campaign's
``.soc`` repro files embed (see :mod:`repro.gen.campaign`).

The shrinker is deliberately *signature-driven*: a candidate cut counts
as "still failing" only when the **same** violation signature —
``(strategy, kind, rule)`` where kind is ``verify`` / ``infeasible`` /
``crashed`` / ``roundtrip`` — reproduces on the cut chip.  A cut that
flips the failure into a different rule (or into a crash somewhere
else) is rejected, so minimality statements stay about the original
finding.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable

from repro.soc.soc import Soc

#: Canonical name every minimized chip is renamed to, so structurally
#: equal repros from different seeds share one digest.
CANONICAL_NAME = "repro"

#: Violation kinds a signature can carry (mirrors what
#: :func:`repro.gen.fuzzing.fuzz_scenario` records per strategy).
SIGNATURE_KINDS = ("verify", "infeasible", "crashed", "roundtrip")


@dataclass(frozen=True)
class ViolationSignature:
    """The identity of one finding, independent of the chip it hit.

    Attributes:
        strategy: the scheduling strategy that misbehaved (the literal
            ``"roundtrip"`` for writer/parser mismatches, which involve
            no scheduler).
        kind: ``verify`` (an invariant rule fired), ``infeasible``,
            ``crashed`` (the exception type name rides in ``rule``), or
            ``roundtrip``.
        rule: the verify rule id, the crashing exception type name, or
            ``""`` where the kind needs no qualifier.
    """

    strategy: str
    kind: str
    rule: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SIGNATURE_KINDS:
            raise ValueError(f"unknown signature kind {self.kind!r}")

    def to_dict(self) -> dict:
        return {"strategy": self.strategy, "kind": self.kind, "rule": self.rule}

    @classmethod
    def from_dict(cls, doc: dict) -> "ViolationSignature":
        return cls(strategy=doc["strategy"], kind=doc["kind"], rule=doc["rule"])

    def describe(self) -> str:
        tail = f":{self.rule}" if self.rule else ""
        return f"{self.strategy}/{self.kind}{tail}"


def scenario_signatures(doc: dict) -> list[ViolationSignature]:
    """Every *error*-severity signature in one fuzz scenario document
    (``repro/fuzz-report/v2`` shape), in document order without
    duplicates — the campaign shrinks each exactly once per scenario."""
    out: list[ViolationSignature] = []
    seen: set[ViolationSignature] = set()

    def add(sig: ViolationSignature) -> None:
        if sig not in seen:
            seen.add(sig)
            out.append(sig)

    if doc.get("roundtrip_errors"):
        add(ViolationSignature("roundtrip", "roundtrip"))
    for strategy, cell in doc.get("strategies", {}).items():
        if "infeasible" in cell:
            add(ViolationSignature(strategy, "infeasible"))
        if "crashed" in cell:
            exc_type = str(cell["crashed"]).split(":", 1)[0]
            add(ViolationSignature(strategy, "crashed", exc_type))
        for violation in cell.get("errors", []):
            add(ViolationSignature(strategy, "verify", violation["rule"]))
    return out


def signature_fires(soc: Soc, sig: ViolationSignature, ilp_max_tasks: int) -> bool:
    """Does ``sig`` reproduce on ``soc``?

    Runs exactly the slice of the fuzz scenario the signature needs (the
    round-trip check alone, or compile + the one strategy + verify) and
    matches the outcome against the signature.  Any *other* failure —
    a different rule, a crash during compile, an exception from a
    malformed mutant — is "does not fire": the shrinker must never trade
    one bug for another.
    """
    try:
        if sig.kind == "roundtrip":
            from repro.gen.writer import roundtrip_errors

            return bool(roundtrip_errors(soc))

        from repro.core import CompileBist, FlowContext, SteacConfig
        from repro.sched import InfeasibleScheduleError, resolve_schedule
        from repro.verify import verify_schedule

        ctx = FlowContext(soc=soc, config=SteacConfig(compare_strategies=False))
        CompileBist().run(ctx)
        if sig.strategy == "ilp" and len(ctx.tasks) > ilp_max_tasks:
            return False
        try:
            result = resolve_schedule(sig.strategy, soc, ctx.tasks)
        except InfeasibleScheduleError:
            return sig.kind == "infeasible"
        except Exception as exc:
            return sig.kind == "crashed" and type(exc).__name__ == sig.rule
        if sig.kind != "verify":
            return False
        report = verify_schedule(soc, result, tasks=ctx.tasks)
        return any(v.rule == sig.rule for v in report.errors)
    except Exception:
        # the mutant broke something upstream of the signature (task
        # compilation, verification itself): not a reproduction
        return False


# -- replayable mutation ops -------------------------------------------------


def apply_op(soc: Soc, op: dict) -> None:
    """Apply one recorded shrink op to ``soc`` in place."""
    kind = op["op"]
    if kind == "drop_core":
        soc.cores[:] = [c for c in soc.cores if c.name != op["name"]]
    elif kind == "drop_memory":
        soc.memories[:] = [m for m in soc.memories if m.name != op["name"]]
    elif kind == "drop_test":
        core = soc.core(op["core"])
        core.tests[:] = [t for t in core.tests if t.name != op["name"]]
    elif kind == "drop_chain":
        core = soc.core(op["core"])
        core.scan_chains[:] = [c for c in core.scan_chains if c.name != op["name"]]
    elif kind == "set":
        field = op["field"]
        if field not in ("gate_count", "power_budget", "test_pins"):
            raise ValueError(f"unknown shrink-op field {field!r}")
        setattr(soc, field, op["value"])
    elif kind == "rename":
        soc.name = op["value"]
    else:
        raise ValueError(f"unknown shrink op {kind!r}")


def apply_ops(soc: Soc, ops: list[dict]) -> Soc:
    """Apply a recorded op list to (a deep copy of) ``soc``, returning
    the mutated copy — the replay half of a campaign repro file."""
    out = copy.deepcopy(soc)
    for op in ops:
        apply_op(out, op)
    return out


# -- the greedy reducer ------------------------------------------------------


def _candidate_ops(soc: Soc) -> list[dict]:
    """Every single-element cut available on ``soc``, in a fixed order
    (cores, memories, secondary tests, chains) so shrinking is
    deterministic."""
    ops: list[dict] = []
    for core in soc.cores:
        ops.append({"op": "drop_core", "name": core.name})
    for memory in soc.memories:
        ops.append({"op": "drop_memory", "name": memory.name})
    for core in soc.cores:
        for test in core.tests[1:]:
            ops.append({"op": "drop_test", "core": core.name, "name": test.name})
    for core in soc.cores:
        if len(core.scan_chains) > 1:
            for chain in core.scan_chains:
                ops.append(
                    {"op": "drop_chain", "core": core.name, "name": chain.name}
                )
    return ops


def _canonical_ops(soc: Soc) -> list[dict]:
    """Scalar canonicalization attempts, tried once each after the cut
    loop converges: zero glue gates, unconstrained power, the pin floor,
    the canonical name."""
    from repro.gen.generator import SocGenerator

    ops: list[dict] = []
    if soc.gate_count != 0:
        ops.append({"op": "set", "field": "gate_count", "value": 0})
    if soc.power_budget != 0.0:
        ops.append({"op": "set", "field": "power_budget", "value": 0.0})
    try:
        floor = SocGenerator._feasible_pins(soc)
    except Exception:
        floor = None
    if floor is not None and floor != soc.test_pins:
        ops.append({"op": "set", "field": "test_pins", "value": floor})
    if soc.name != CANONICAL_NAME:
        ops.append({"op": "rename", "value": CANONICAL_NAME})
    return ops


def shrink_soc(
    soc: Soc,
    still_fails: Callable[[Soc], bool],
    max_checks: int = 2000,
) -> tuple[Soc, list[dict]]:
    """Greedily 1-minimize ``soc`` under the predicate ``still_fails``.

    Repeats passes over every available single-element cut, keeping a
    cut whenever the predicate still holds on the cut chip, until a full
    pass accepts nothing (so removing any one remaining element
    un-reproduces the failure — 1-minimality); then applies the scalar
    canonicalization ops under the same predicate.  Returns the
    minimized chip and the accepted op list (replayable with
    :func:`apply_ops`).  ``max_checks`` caps predicate evaluations so a
    pathological chip cannot stall a campaign; the partially shrunk chip
    is still valid when the cap trips.

    Raises:
        ValueError: the predicate does not hold on the input chip (the
            caller is shrinking a non-failure).
    """
    current = copy.deepcopy(soc)
    if not still_fails(current):
        raise ValueError(
            f"shrink_soc: predicate does not fail on the input chip {soc.name!r}"
        )
    accepted: list[dict] = []
    checks = 0

    def try_op(op: dict) -> bool:
        nonlocal current, checks
        if checks >= max_checks:
            return False
        candidate = copy.deepcopy(current)
        try:
            apply_op(candidate, op)
        except KeyError:
            # the op's target rode out on an earlier accepted cut this
            # pass (a drop_test/drop_chain whose core was just dropped)
            return False
        checks += 1
        if still_fails(candidate):
            current = candidate
            accepted.append(op)
            return True
        return False

    progress = True
    while progress and checks < max_checks:
        progress = False
        for op in _candidate_ops(current):
            if try_op(op):
                progress = True
    for op in _canonical_ops(current):
        try_op(op)
    return current, accepted


def shrink_scenario(
    soc: Soc, sig: ViolationSignature, ilp_max_tasks: int, max_checks: int = 2000
) -> tuple[Soc, list[dict]]:
    """Shrink ``soc`` against one violation signature — the campaign's
    entry point.  Returns ``(minimized chip, replay ops)``."""
    return shrink_soc(
        soc,
        lambda mutant: signature_fires(mutant, sig, ilp_max_tasks),
        max_checks=max_checks,
    )
