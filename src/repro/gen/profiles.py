"""Size/shape profiles for the synthetic SOC generator.

A :class:`GenProfile` is the parameter envelope one generated chip is
drawn from: how many cores, how their scan chains and pattern counts are
distributed, how many embedded memories (and whether they carry repair
spares), and how tight the power/pin budgets are.  Profiles are
registered by name — the CLI ``generate``/``fuzz`` commands and the
corpus API resolve them through :func:`get_profile`, mirroring the
scheduler and allocator registries:

    >>> from repro.gen import register_profile, GenProfile
    >>> register_profile(GenProfile(name="mychip", cores=(12, 12)))

The shipped ladder — ``tiny`` / ``small`` / ``d695-like`` / ``large`` /
``huge`` — spans two to sixty-four cores, so every scheduler in the
registry can be exercised from property-test size up to
stress-benchmark size (``benchmarks/bench_generator_scaling.py``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GenProfile:
    """Parameter ranges for one class of generated SOCs.

    All ``(lo, hi)`` tuples are inclusive integer ranges; ``*_fraction``
    values are probabilities in [0, 1]; ``*_choices`` are drawn
    uniformly.

    Attributes:
        name: registry name of the profile.
        cores: core count range.
        scan_fraction: probability a core is scanned (vs. purely
            functional, like d695's ISCAS85 combinational cores).
        soft_fraction: probability a *scanned* core is soft (chains
            re-stitchable for an assigned TAM width) rather than hard.
        chains: scan-chain count range for scanned cores.
        chain_flops: per-chain flip-flop count range.
        scan_patterns: scan pattern count range.
        functional_patterns: functional pattern count range.
        dual_test_fraction: probability a scanned core *also* carries a
            functional test (the DSC's TV encoder does).
        inputs / outputs / bidirs: functional IO count ranges.
        memories: embedded SRAM count range.
        memory_words_choices / memory_bits_choices: geometry menu.
        redundancy_fraction: probability a memory ships spare rows/cols.
        test_power: per-test abstract power range.
        power_budget_fraction: probability the chip has a finite power
            budget (drawn to keep every single test schedulable).
        extra_pins: pins granted beyond the computed feasibility floor
            (the floor keeps even the dedicated-pin non-session baseline
            schedulable, so differential fuzzing never hits a spurious
            infeasibility).
        glue_gates: unwrapped glue-logic gate count range.
    """

    name: str
    cores: tuple[int, int] = (4, 8)
    scan_fraction: float = 0.8
    soft_fraction: float = 0.6
    chains: tuple[int, int] = (1, 8)
    chain_flops: tuple[int, int] = (20, 200)
    scan_patterns: tuple[int, int] = (10, 250)
    functional_patterns: tuple[int, int] = (50, 2000)
    dual_test_fraction: float = 0.2
    inputs: tuple[int, int] = (4, 64)
    outputs: tuple[int, int] = (4, 64)
    bidirs: tuple[int, int] = (0, 8)
    memories: tuple[int, int] = (0, 2)
    memory_words_choices: tuple[int, ...] = (256, 512, 1024, 2048, 4096)
    memory_bits_choices: tuple[int, ...] = (8, 16, 32)
    redundancy_fraction: float = 0.5
    test_power: tuple[float, float] = (0.5, 4.0)
    power_budget_fraction: float = 0.5
    extra_pins: tuple[int, int] = (0, 24)
    glue_gates: tuple[int, int] = (1_000, 50_000)

    def __post_init__(self) -> None:
        for field_name in ("cores", "chains", "chain_flops", "scan_patterns",
                           "functional_patterns", "inputs", "outputs", "bidirs",
                           "memories", "extra_pins", "glue_gates"):
            lo, hi = getattr(self, field_name)
            if lo < 0 or hi < lo:
                raise ValueError(
                    f"profile {self.name!r}: bad range {field_name}=({lo}, {hi})"
                )
        if self.cores[0] < 1:
            raise ValueError(f"profile {self.name!r}: needs at least one core")
        if self.chains[0] < 1:
            raise ValueError(f"profile {self.name!r}: scanned cores need a chain")
        for frac_name in ("scan_fraction", "soft_fraction", "dual_test_fraction",
                          "redundancy_fraction", "power_budget_fraction"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"profile {self.name!r}: {frac_name}={value} outside [0, 1]"
                )

    @property
    def slug(self) -> str:
        """The profile name as an identifier fragment (for SOC names)."""
        return self.name.replace("-", "_")


_REGISTRY: dict[str, GenProfile] = {}


def register_profile(profile: GenProfile) -> GenProfile:
    """Register ``profile`` under its name (last registration wins)."""
    _REGISTRY[profile.name] = profile
    return profile


def get_profile(name: str) -> GenProfile:
    """Look up a profile by name.

    Raises:
        ValueError: unknown name (message lists what is available).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown generator profile {name!r}; "
            f"available: {', '.join(available_profiles())}"
        ) from None


def available_profiles() -> list[str]:
    """Registered profile names, sorted."""
    return sorted(_REGISTRY)


# -- the shipped size ladder -------------------------------------------------

#: Property-test size: schedules in milliseconds, ILP-friendly.
TINY = register_profile(GenProfile(
    name="tiny",
    cores=(2, 4),
    chains=(1, 3),
    chain_flops=(10, 60),
    scan_patterns=(5, 60),
    functional_patterns=(20, 400),
    inputs=(2, 16),
    outputs=(2, 16),
    bidirs=(0, 2),
    memories=(0, 1),
    memory_words_choices=(64, 128, 256),
    memory_bits_choices=(4, 8),
    extra_pins=(0, 8),
    glue_gates=(500, 5_000),
))

#: Everyday differential-fuzz size.
SMALL = register_profile(GenProfile(
    name="small",
    cores=(4, 8),
    chains=(1, 6),
    chain_flops=(20, 150),
    scan_patterns=(10, 150),
    memories=(0, 2),
    memory_words_choices=(128, 256, 512, 1024),
    extra_pins=(0, 16),
))

#: Shaped like the ITC'02 d695 instance: ten cores, a couple purely
#: combinational, big chain-count spread, no embedded memories.
D695_LIKE = register_profile(GenProfile(
    name="d695-like",
    cores=(10, 10),
    scan_fraction=0.8,
    soft_fraction=1.0,
    chains=(1, 32),
    chain_flops=(30, 60),
    scan_patterns=(12, 236),
    functional_patterns=(12, 80),
    dual_test_fraction=0.0,
    inputs=(14, 207),
    outputs=(1, 320),
    bidirs=(0, 0),
    memories=(0, 0),
    power_budget_fraction=0.0,
    extra_pins=(8, 32),
    glue_gates=(1_000, 10_000),
))

#: Design-sweep size: stresses the heuristics' local search.
LARGE = register_profile(GenProfile(
    name="large",
    cores=(16, 32),
    chains=(2, 16),
    chain_flops=(50, 400),
    scan_patterns=(20, 500),
    memories=(2, 6),
    memory_words_choices=(1024, 2048, 4096, 8192),
    memory_bits_choices=(16, 32, 64),
    extra_pins=(8, 48),
    glue_gates=(20_000, 200_000),
))

#: Stress size for scaling benchmarks (heuristics only; far past the ILP).
HUGE = register_profile(GenProfile(
    name="huge",
    cores=(48, 64),
    chains=(2, 32),
    chain_flops=(50, 600),
    scan_patterns=(20, 800),
    memories=(4, 12),
    memory_words_choices=(2048, 4096, 8192, 16384),
    memory_bits_choices=(16, 32, 64),
    extra_pins=(16, 64),
    glue_gates=(100_000, 1_000_000),
))
