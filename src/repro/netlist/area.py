"""Area accounting and overhead reports in NAND2-equivalent gates.

Reproduces the paper's Section 3 accounting style: per-block gate counts
for the generated DFT circuitry and the overhead percentage relative to
the chip ("the Test Controller and TAM multiplexer require about 371 and
132 gates, respectively — their hardware overhead is only about 0.3%").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.netlist import Module, Netlist
from repro.util import Table, format_gates


@dataclass
class AreaItem:
    """One line of an area report."""

    name: str
    gates: float
    note: str = ""


@dataclass
class AreaReport:
    """DFT area overhead relative to a chip's functional gate count."""

    chip_gates: float
    items: list[AreaItem] = field(default_factory=list)

    def add(self, name: str, gates: float, note: str = "") -> None:
        """Add a DFT block to the report."""
        self.items.append(AreaItem(name, gates, note))

    def add_module(self, name: str, module: Module, netlist: Netlist | None = None, note: str = "") -> None:
        """Add a netlist module, measuring its area."""
        self.add(name, module.area(netlist), note)

    @property
    def dft_gates(self) -> float:
        """Total generated DFT gates."""
        return sum(item.gates for item in self.items)

    @property
    def overhead_percent(self) -> float:
        """DFT gates as a percentage of chip functional gates."""
        if self.chip_gates <= 0:
            return 0.0
        return 100.0 * self.dft_gates / self.chip_gates

    def render(self) -> str:
        """Render the report as an ASCII table with an overhead line."""
        table = Table(["DFT block", "Gates", "Note"], title="DFT area overhead")
        for item in self.items:
            table.add_row([item.name, f"{item.gates:.1f}", item.note])
        lines = [
            table.render(),
            f"total DFT: {format_gates(self.dft_gates)} on a "
            f"{format_gates(self.chip_gates)} chip -> {self.overhead_percent:.2f}% overhead",
        ]
        return "\n".join(lines)
