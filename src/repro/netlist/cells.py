"""Standard-cell library with NAND2-equivalent areas.

The paper quotes all DFT overhead in "two-input NAND gates" (the WBR cell
is "equivalent to 26 two-input NAND gates"; the test controller and TAM
mux "require about 371 and 132 gates").  We therefore measure every
generated circuit in NAND2 equivalents, using a small library with
representative area ratios for a 0.25 µm standard-cell process.

Combinational cells carry an evaluation function over 3-valued logic
(0, 1, X); sequential cells (DFF variants, latches) are state elements
handled by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

#: Logic values used by the simulator: 0, 1 and unknown.
LOW, HIGH, X = 0, 1, 2


def _and2(a: int, b: int) -> int:
    if a == LOW or b == LOW:
        return LOW
    if a == HIGH and b == HIGH:
        return HIGH
    return X


def _or2(a: int, b: int) -> int:
    if a == HIGH or b == HIGH:
        return HIGH
    if a == LOW and b == LOW:
        return LOW
    return X


def _not(a: int) -> int:
    if a == LOW:
        return HIGH
    if a == HIGH:
        return LOW
    return X


def _xor2(a: int, b: int) -> int:
    if X in (a, b):
        return X
    return a ^ b


def _mux2(d0: int, d1: int, s: int) -> int:
    if s == LOW:
        return d0
    if s == HIGH:
        return d1
    # unknown select: output known only if both data inputs agree
    return d0 if d0 == d1 else X


@dataclass(frozen=True)
class Cell:
    """A library cell.

    Attributes:
        name: cell name (e.g. ``"NAND2"``).
        inputs: ordered input pin names.
        outputs: ordered output pin names (all our cells have one).
        area: NAND2-equivalent gate count.
        func: for combinational cells, maps input values (in pin order)
            to the output value; ``None`` for sequential cells.
        sequential: True for flip-flops and latches.
        clock_pin / data_pin / reset_pin / enable_pin: pin roles for
            sequential cells (reset is active-low asynchronous).
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    area: float
    func: Optional[Callable[..., int]] = None
    sequential: bool = False
    clock_pin: Optional[str] = None
    data_pin: Optional[str] = None
    reset_pin: Optional[str] = None
    enable_pin: Optional[str] = None

    @property
    def output(self) -> str:
        """The single output pin name."""
        return self.outputs[0]

    @property
    def pins(self) -> tuple[str, ...]:
        return self.inputs + self.outputs


def _comb(name: str, inputs: tuple[str, ...], area: float, func) -> Cell:
    return Cell(name=name, inputs=inputs, outputs=("Y",), area=area, func=func)


#: The library, keyed by cell name.  Areas in NAND2 equivalents.
LIBRARY: dict[str, Cell] = {}


def _register(cell: Cell) -> Cell:
    LIBRARY[cell.name] = cell
    return cell


INV = _register(_comb("INV", ("A",), 0.7, _not))
BUF = _register(_comb("BUF", ("A",), 1.0, lambda a: a))
NAND2 = _register(_comb("NAND2", ("A", "B"), 1.0, lambda a, b: _not(_and2(a, b))))
NAND3 = _register(
    _comb("NAND3", ("A", "B", "C"), 1.5, lambda a, b, c: _not(_and2(_and2(a, b), c)))
)
NOR2 = _register(_comb("NOR2", ("A", "B"), 1.0, lambda a, b: _not(_or2(a, b))))
NOR3 = _register(_comb("NOR3", ("A", "B", "C"), 1.5, lambda a, b, c: _not(_or2(_or2(a, b), c))))
AND2 = _register(_comb("AND2", ("A", "B"), 1.5, _and2))
AND3 = _register(_comb("AND3", ("A", "B", "C"), 2.0, lambda a, b, c: _and2(_and2(a, b), c)))
OR2 = _register(_comb("OR2", ("A", "B"), 1.5, _or2))
OR3 = _register(_comb("OR3", ("A", "B", "C"), 2.0, lambda a, b, c: _or2(_or2(a, b), c)))
XOR2 = _register(_comb("XOR2", ("A", "B"), 2.5, _xor2))
XNOR2 = _register(_comb("XNOR2", ("A", "B"), 2.5, lambda a, b: _not(_xor2(a, b))))
MUX2 = _register(
    Cell(name="MUX2", inputs=("D0", "D1", "S"), outputs=("Y",), area=2.5, func=_mux2)
)
TIE0 = _register(Cell(name="TIE0", inputs=(), outputs=("Y",), area=0.5, func=lambda: LOW))
TIE1 = _register(Cell(name="TIE1", inputs=(), outputs=("Y",), area=0.5, func=lambda: HIGH))

DFF = _register(
    Cell(
        name="DFF",
        inputs=("D", "CK"),
        outputs=("Q",),
        area=7.0,
        sequential=True,
        clock_pin="CK",
        data_pin="D",
    )
)
DFFR = _register(
    Cell(
        name="DFFR",
        inputs=("D", "CK", "RN"),
        outputs=("Q",),
        area=8.0,
        sequential=True,
        clock_pin="CK",
        data_pin="D",
        reset_pin="RN",
    )
)
DFFE = _register(
    Cell(
        name="DFFE",
        inputs=("D", "CK", "E"),
        outputs=("Q",),
        area=9.0,
        sequential=True,
        clock_pin="CK",
        data_pin="D",
        enable_pin="E",
    )
)
SDFF = _register(
    # Scan flip-flop: D/SI muxed by SE in front of a DFF.
    Cell(
        name="SDFF",
        inputs=("D", "SI", "SE", "CK"),
        outputs=("Q",),
        area=9.5,
        sequential=True,
        clock_pin="CK",
        data_pin="D",  # effective D resolved by the simulator from SE
    )
)
DLATCH = _register(
    # Transparent-high latch (used as the WBC update stage).
    Cell(
        name="DLATCH",
        inputs=("D", "G"),
        outputs=("Q",),
        area=4.0,
        sequential=True,
        clock_pin="G",
        data_pin="D",
    )
)


def cell(name: str) -> Cell:
    """Look up a library cell by name."""
    try:
        return LIBRARY[name]
    except KeyError:
        raise KeyError(f"no cell {name!r} in library") from None
