"""Procedural netlist construction helpers.

Two generators used across tests, examples and benchmarks:

* :func:`random_combinational` — a seeded random gate cloud (ATPG and
  fault-simulation stress input);
* :func:`random_scan_core` — the same cloud registered by a scan chain,
  with the matching :class:`repro.soc.Core` model, so the whole
  ATPG → STIL → wrapper → replay pipeline can be exercised at arbitrary
  sizes.
"""

from __future__ import annotations

import random

from repro.netlist.netlist import Module
from repro.soc.core import Core, CoreType
from repro.soc.ports import Direction, Port, SignalKind
from repro.soc.scan import ScanChain
from repro.soc.tests import scan_test

_GATES = ("AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2")


def random_combinational(
    name: str,
    n_inputs: int,
    n_gates: int,
    n_outputs: int,
    seed: int = 1,
) -> Module:
    """A random acyclic gate cloud: every gate draws inputs from earlier
    signals, outputs tap the last gates (guaranteeing observability of
    the deep logic)."""
    if n_inputs < 2 or n_gates < 1 or n_outputs < 1:
        raise ValueError("need >=2 inputs, >=1 gate, >=1 output")
    rng = random.Random(seed)
    m = Module(name)
    signals = []
    for i in range(n_inputs):
        signals.append(m.add_input(f"i{i}"))
    for g in range(n_gates):
        cell = rng.choice(_GATES)
        a, b = rng.sample(signals, 2) if len(signals) > 1 else (signals[0], signals[0])
        net = m.add_net(f"g{g}")
        m.add_instance(f"u_g{g}", cell, A=a, B=b, Y=net)
        signals.append(net)
    taps = signals[-n_outputs:] if n_outputs <= len(signals) else signals
    for o, tap in enumerate(taps):
        m.add_output(f"o{o}")
        m.add_instance(f"u_o{o}", "BUF", A=tap, Y=f"o{o}")
    return m


def random_scan_core(
    name: str,
    n_inputs: int = 6,
    n_gates: int = 30,
    n_flops: int = 8,
    seed: int = 1,
) -> tuple[Module, Core]:
    """A random sequential core with one scan chain, plus its model.

    Structure: random cloud → flops (D from cloud taps) → second cloud
    layer feeding outputs; flops stitched ``si → ff0 → … → so``.
    """
    if n_flops < 1:
        raise ValueError("need at least one flop")
    rng = random.Random(seed)
    m = Module(name)
    for pin in ("clk", "se", "si"):
        m.add_input(pin)
    m.add_output("so")
    signals = []
    for i in range(n_inputs):
        signals.append(m.add_input(f"i{i}"))
    for g in range(n_gates):
        cell = rng.choice(_GATES)
        a, b = rng.sample(signals, 2)
        net = m.add_net(f"g{g}")
        m.add_instance(f"u_g{g}", cell, A=a, B=b, Y=net)
        signals.append(net)
    prev_q = "si"
    q_nets = []
    for f in range(n_flops):
        d_net = rng.choice(signals[n_inputs:]) if n_gates else signals[0]
        q_net = m.add_net(f"q{f}")
        m.add_instance(
            f"ff{f}", "SDFF", D=d_net, SI=prev_q, SE="se", CK="clk", Q=q_net
        )
        prev_q = q_net
        q_nets.append(q_net)
        signals.append(q_net)
    m.add_instance("u_so", "BUF", A=prev_q, Y="so")
    n_outputs = max(1, n_flops // 2)
    for o in range(n_outputs):
        m.add_output(f"o{o}")
        m.add_instance(f"u_o{o}", "BUF", A=q_nets[o % len(q_nets)], Y=f"o{o}")

    ports = [
        Port("clk", Direction.IN, SignalKind.CLOCK, clock_domain=f"{name}_clk"),
        Port("se", Direction.IN, SignalKind.SCAN_ENABLE),
        Port("si", Direction.IN, SignalKind.SCAN_IN),
        Port("so", Direction.OUT, SignalKind.SCAN_OUT),
    ]
    ports.extend(Port(f"i{i}", Direction.IN) for i in range(n_inputs))
    ports.extend(Port(f"o{o}", Direction.OUT) for o in range(n_outputs))
    core = Core(
        name,
        core_type=CoreType.HARD,
        ports=ports,
        scan_chains=[ScanChain("c0", n_flops, "si", "so")],
        tests=[scan_test(0, name=f"{name}_scan", power=1.0)],
        gate_count=n_gates,
    )
    return m, core
