"""Gate-level netlist substrate: cells, modules, Verilog, simulation, area.

The paper's test-insertion tool emits real circuitry ("the generated test
circuitry is inserted into the original SOC netlist automatically"); this
package is the fabric it is built from.  Areas are measured in NAND2
equivalents to match the paper's reporting style.
"""

from repro.netlist.area import AreaItem, AreaReport
from repro.netlist.cells import HIGH, LIBRARY, LOW, X, Cell, cell
from repro.netlist.netlist import Instance, Module, ModulePort, Netlist, PortDir, flatten
from repro.netlist.sim import CombLoopError, Simulator
from repro.netlist.verilog import library_stubs, module_to_verilog, netlist_to_verilog

__all__ = [
    "AreaItem",
    "AreaReport",
    "HIGH",
    "LIBRARY",
    "LOW",
    "X",
    "Cell",
    "cell",
    "Instance",
    "Module",
    "ModulePort",
    "Netlist",
    "PortDir",
    "flatten",
    "CombLoopError",
    "Simulator",
    "library_stubs",
    "module_to_verilog",
    "netlist_to_verilog",
]
