"""Structural netlist model: modules, instances, nets.

A :class:`Module` is a bag of named nets, a port list, and instances of
either library cells or other modules (hierarchy).  The test-insertion
tool builds wrapper/TAM/controller logic as modules and stitches them
into the chip module; :mod:`repro.netlist.verilog` writes the result out
and :mod:`repro.netlist.sim` simulates it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.netlist.cells import LIBRARY
from repro.util import check_name


class PortDir(enum.Enum):
    """Module port direction."""

    IN = "input"
    OUT = "output"


@dataclass(frozen=True)
class ModulePort:
    """A single-bit module port (buses are expanded bit by bit)."""

    name: str
    direction: PortDir


@dataclass
class Instance:
    """One instantiation of a cell or module.

    Attributes:
        name: instance name, unique within the parent module.
        ref: the library cell name or module name being instantiated.
        conns: pin/port name → net name in the parent module.
    """

    name: str
    ref: str
    conns: dict[str, str]


class Netlist:
    """A design: a set of modules, one of which is the top."""

    def __init__(self, top: str | None = None):
        self.modules: dict[str, "Module"] = {}
        self.top_name = top

    def add(self, module: "Module") -> "Module":
        """Register a module (names unique)."""
        if module.name in self.modules:
            raise ValueError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        if self.top_name is None:
            self.top_name = module.name
        return module

    @property
    def top(self) -> "Module":
        """The top module."""
        if self.top_name is None:
            raise ValueError("netlist has no modules")
        return self.modules[self.top_name]

    def module(self, name: str) -> "Module":
        try:
            return self.modules[name]
        except KeyError:
            raise KeyError(f"no module {name!r} in netlist") from None

    def area(self, module_name: str | None = None) -> float:
        """Total NAND2-equivalent area of a module (default: top),
        recursing through the hierarchy."""
        name = module_name or self.top_name
        return self.module(name).area(self)


class Module:
    """One module: ports, nets and instances."""

    def __init__(self, name: str):
        check_name(name, "module name")
        self.name = name
        self.ports: list[ModulePort] = []
        self.nets: set[str] = set()
        self.instances: list[Instance] = []
        self._instance_names: set[str] = set()

    # -- construction ------------------------------------------------------

    def add_port(self, name: str, direction: PortDir) -> str:
        """Declare a port; the port is also a net of the same name."""
        check_name(name, "port name")
        if any(p.name == name for p in self.ports):
            raise ValueError(f"duplicate port {name!r} on module {self.name!r}")
        self.ports.append(ModulePort(name, direction))
        self.nets.add(name)
        return name

    def add_input(self, name: str) -> str:
        return self.add_port(name, PortDir.IN)

    def add_output(self, name: str) -> str:
        return self.add_port(name, PortDir.OUT)

    def add_net(self, name: str) -> str:
        """Declare an internal net (idempotent)."""
        check_name(name, "net name")
        self.nets.add(name)
        return name

    def add_instance(self, name: str, ref: str, **conns: str) -> Instance:
        """Instantiate ``ref`` (cell or module name) with pin connections.

        All referenced nets are declared implicitly.
        """
        check_name(name, "instance name")
        if name in self._instance_names:
            raise ValueError(f"duplicate instance {name!r} in module {self.name!r}")
        for net in conns.values():
            self.add_net(net)
        inst = Instance(name=name, ref=ref, conns=dict(conns))
        self.instances.append(inst)
        self._instance_names.add(name)
        return inst

    # -- queries -----------------------------------------------------------

    @property
    def input_ports(self) -> list[str]:
        return [p.name for p in self.ports if p.direction is PortDir.IN]

    @property
    def output_ports(self) -> list[str]:
        return [p.name for p in self.ports if p.direction is PortDir.OUT]

    def port_dir(self, name: str) -> PortDir:
        for p in self.ports:
            if p.name == name:
                return p.direction
        raise KeyError(f"module {self.name!r} has no port {name!r}")

    def instance(self, name: str) -> Instance:
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise KeyError(f"module {self.name!r} has no instance {name!r}")

    def cell_counts(self, netlist: Optional[Netlist] = None) -> dict[str, int]:
        """Histogram of leaf-cell usage (recursing through hierarchy when
        a :class:`Netlist` is provided)."""
        counts: dict[str, int] = {}
        for inst in self.instances:
            if inst.ref in LIBRARY:
                counts[inst.ref] = counts.get(inst.ref, 0) + 1
            elif netlist is not None and inst.ref in netlist.modules:
                for cell_name, n in netlist.module(inst.ref).cell_counts(netlist).items():
                    counts[cell_name] = counts.get(cell_name, 0) + n
            else:
                counts[inst.ref] = counts.get(inst.ref, 0) + 1  # blackbox
        return counts

    def area(self, netlist: Optional[Netlist] = None) -> float:
        """NAND2-equivalent area: Σ leaf-cell areas; hierarchical
        instances resolve through ``netlist`` (blackboxes count 0)."""
        total = 0.0
        for inst in self.instances:
            if inst.ref in LIBRARY:
                total += LIBRARY[inst.ref].area
            elif netlist is not None and inst.ref in netlist.modules:
                total += netlist.module(inst.ref).area(netlist)
        return total

    def validate(self, netlist: Optional[Netlist] = None) -> list[str]:
        """Structural checks; returns a list of problem descriptions.

        Checks: every instance pin exists on its cell/module; every net
        has at most one driver (cell outputs and module input ports
        drive); output ports are driven.
        """
        problems: list[str] = []
        drivers: dict[str, list[str]] = {}

        def note_driver(net: str, who: str) -> None:
            drivers.setdefault(net, []).append(who)

        for port in self.ports:
            if port.direction is PortDir.IN:
                note_driver(port.name, f"input port {port.name}")

        for inst in self.instances:
            if inst.ref in LIBRARY:
                cell = LIBRARY[inst.ref]
                for pin in inst.conns:
                    if pin not in cell.pins:
                        problems.append(f"{inst.name}: cell {inst.ref} has no pin {pin!r}")
                for pin, net in inst.conns.items():
                    if pin in cell.outputs:
                        note_driver(net, f"{inst.name}.{pin}")
                missing = [p for p in cell.inputs if p not in inst.conns]
                if missing:
                    problems.append(f"{inst.name}: unconnected input pins {missing}")
            elif netlist is not None and inst.ref in netlist.modules:
                sub = netlist.module(inst.ref)
                sub_ports = {p.name: p.direction for p in sub.ports}
                for pin, net in inst.conns.items():
                    if pin not in sub_ports:
                        problems.append(f"{inst.name}: module {inst.ref} has no port {pin!r}")
                    elif sub_ports[pin] is PortDir.OUT:
                        note_driver(net, f"{inst.name}.{pin}")

        for net, who in drivers.items():
            if len(who) > 1:
                problems.append(f"net {net!r} has multiple drivers: {who}")
        for port in self.ports:
            if port.direction is PortDir.OUT and port.name not in drivers:
                problems.append(f"output port {port.name!r} is undriven")
        return problems


def flatten(netlist: Netlist, top_name: str | None = None) -> Module:
    """Flatten a hierarchical design into a single module of leaf cells.

    Hierarchical nets are prefixed with the instance path (``u_wrap.si``);
    unknown references (blackboxes) are kept as leaf instances.
    """
    top = netlist.module(top_name or netlist.top_name)
    flat = Module(f"{top.name}_flat")
    for port in top.ports:
        flat.add_port(port.name, port.direction)

    def emit(module: Module, prefix: str, net_map: dict[str, str]) -> None:
        def mapped(net: str) -> str:
            if net in net_map:
                return net_map[net]
            full = f"{prefix}{net}" if prefix else net
            flat.add_net(full)
            return full

        for inst in module.instances:
            inst_name = f"{prefix}{inst.name}" if prefix else inst.name
            if inst.ref in netlist.modules and inst.ref not in LIBRARY:
                sub = netlist.module(inst.ref)
                sub_map = {
                    pin: mapped(net) for pin, net in inst.conns.items()
                }
                emit(sub, f"{inst_name}.", sub_map)
            else:
                flat.add_instance(
                    inst_name, inst.ref, **{pin: mapped(net) for pin, net in inst.conns.items()}
                )

    emit(top, "", {p.name: p.name for p in top.ports})
    return flat
