"""Levelized 3-valued (0/1/X) logic simulator for flat netlists.

Used to *verify* generated DFT logic rather than to race it: the wrapper
tests shift bits through generated WBR chains, the controller tests step
the session FSM, and the ATPG package runs it underneath PODEM.

The simulator is full-sweep levelized (every evaluation recomputes the
whole combinational cloud in topological order), which is simple, exact
and fast enough for the few-thousand-gate circuits this platform emits.
Sequential cells (DFF/DFFR/DFFE/SDFF, DLATCH) hold explicit state;
flip-flops update on :meth:`Simulator.clock` calls, transparent latches
are resolved to a fixpoint inside :meth:`Simulator.evaluate`.
"""

from __future__ import annotations

from repro.netlist.cells import HIGH, LIBRARY, LOW, X, Cell
from repro.netlist.netlist import Module


class CombLoopError(ValueError):
    """Raised when the combinational part of a netlist has a cycle."""


class Simulator:
    """Simulate a flat module built from library cells only."""

    def __init__(self, module: Module):
        self.module = module
        self.values: dict[str, int] = {net: X for net in module.nets}
        self.state: dict[str, int] = {}
        self._comb: list = []
        self._seq: list = []
        self._latches: list = []
        for inst in module.instances:
            cell = LIBRARY.get(inst.ref)
            if cell is None:
                raise ValueError(
                    f"instance {inst.name!r} references non-library cell {inst.ref!r}; "
                    "flatten the design first"
                )
            if not cell.sequential:
                self._comb.append((inst, cell))
            elif cell.name == "DLATCH":
                self._latches.append((inst, cell))
                self.state[inst.name] = X
            else:
                self._seq.append((inst, cell))
                self.state[inst.name] = X
        self._order = self._levelize()

    # -- construction helpers ----------------------------------------------

    def _levelize(self) -> list:
        """Topologically order combinational instances (Kahn)."""
        driver_of: dict[str, tuple] = {}
        for inst, cell in self._comb:
            for pin in cell.outputs:
                net = inst.conns.get(pin)
                if net is not None:
                    driver_of[net] = (inst, cell)
        indeg: dict[str, int] = {}
        deps: dict[str, list] = {}
        for inst, cell in self._comb:
            count = 0
            for pin in cell.inputs:
                net = inst.conns.get(pin)
                if net in driver_of:
                    count += 1
                    drv_inst, _ = driver_of[net]
                    deps.setdefault(drv_inst.name, []).append((inst, cell))
            indeg[inst.name] = count
        ready = [(inst, cell) for inst, cell in self._comb if indeg[inst.name] == 0]
        order = []
        while ready:
            inst, cell = ready.pop()
            order.append((inst, cell))
            for succ_inst, succ_cell in deps.get(inst.name, []):
                indeg[succ_inst.name] -= 1
                if indeg[succ_inst.name] == 0:
                    ready.append((succ_inst, succ_cell))
        if len(order) != len(self._comb):
            stuck = [i.name for i, _ in self._comb if indeg[i.name] > 0]
            raise CombLoopError(f"combinational loop involving: {sorted(stuck)[:10]}")
        return order

    # -- driving -------------------------------------------------------------

    def poke(self, net: str, value: int) -> None:
        """Drive a primary input (or force any net before evaluation)."""
        if net not in self.module.nets:
            raise KeyError(f"no net {net!r} in module {self.module.name!r}")
        if value not in (LOW, HIGH, X):
            raise ValueError(f"bad logic value {value!r}")
        self.values[net] = value

    def set_inputs(self, assignments: dict[str, int]) -> None:
        """Drive several primary inputs at once."""
        for net, value in assignments.items():
            self.poke(net, value)

    # -- evaluation ------------------------------------------------------------

    def _seq_output(self, inst, cell: Cell) -> int:
        """Present output of a sequential cell, honoring async reset."""
        stored = self.state[inst.name]
        if cell.reset_pin is not None:
            rn = self.values.get(inst.conns.get(cell.reset_pin, ""), X)
            if rn == LOW:
                return LOW
            if rn == X:
                return X if stored != LOW else LOW
        return stored

    def evaluate(self) -> None:
        """Propagate values through the combinational cloud (and
        transparent latches) until stable."""
        for _ in range(len(self._latches) + 2):
            # sequential outputs act as sources
            for inst, cell in self._seq:
                out_net = inst.conns.get(cell.output)
                if out_net is not None:
                    self.values[out_net] = self._seq_output(inst, cell)
            for inst, cell in self._latches:
                out_net = inst.conns.get(cell.output)
                if out_net is not None:
                    self.values[out_net] = self.state[inst.name]
            for inst, cell in self._order:
                args = [self.values.get(inst.conns.get(pin, ""), X) for pin in cell.inputs]
                out_net = inst.conns.get(cell.output)
                if out_net is not None:
                    self.values[out_net] = cell.func(*args)
            changed = False
            for inst, _cell in self._latches:
                gate = self.values.get(inst.conns.get("G", ""), X)
                if gate == HIGH:
                    new = self.values.get(inst.conns.get("D", ""), X)
                elif gate == X:
                    d = self.values.get(inst.conns.get("D", ""), X)
                    new = self.state[inst.name] if d == self.state[inst.name] else X
                else:
                    new = self.state[inst.name]
                if new != self.state[inst.name]:
                    self.state[inst.name] = new
                    changed = True
            if not changed:
                return
        raise CombLoopError("latch network failed to stabilize")

    def get(self, net: str) -> int:
        """Read a net value (call :meth:`evaluate` first)."""
        try:
            return self.values[net]
        except KeyError:
            raise KeyError(f"no net {net!r} in module {self.module.name!r}") from None

    # -- clocking ----------------------------------------------------------------

    def _effective_d(self, inst, cell: Cell) -> int:
        """Next-state value of a flip-flop at a clock edge."""
        if cell.name == "SDFF":
            se = self.values.get(inst.conns.get("SE", ""), X)
            d = self.values.get(inst.conns.get("D", ""), X)
            si = self.values.get(inst.conns.get("SI", ""), X)
            if se == HIGH:
                return si
            if se == LOW:
                return d
            return d if d == si else X
        d = self.values.get(inst.conns.get(cell.data_pin, ""), X)
        if cell.enable_pin is not None:
            en = self.values.get(inst.conns.get(cell.enable_pin, ""), X)
            if en == LOW:
                return self.state[inst.name]
            if en == X:
                return d if d == self.state[inst.name] else X
        return d

    def clock(self, clock_net: str, cycles: int = 1) -> None:
        """Apply ``cycles`` rising edges on ``clock_net``.

        Each edge: evaluate, capture the next state of every flip-flop
        clocked by the net (simultaneous update), then evaluate again so
        outputs reflect the new state.
        """
        targets = [
            (inst, cell)
            for inst, cell in self._seq
            if inst.conns.get(cell.clock_pin) == clock_net
        ]
        for _ in range(cycles):
            self.evaluate()
            next_state = {inst.name: self._effective_d(inst, cell) for inst, cell in targets}
            for inst, cell in targets:
                if cell.reset_pin is not None:
                    rn = self.values.get(inst.conns.get(cell.reset_pin, ""), X)
                    if rn == LOW:
                        next_state[inst.name] = LOW
            self.state.update(next_state)
            self.evaluate()

    # -- convenience ----------------------------------------------------------

    def shift(self, clock_net: str, si_net: str, bits: list[int], so_net: str | None = None) -> list[int]:
        """Shift ``bits`` in on ``si_net`` (one per clock), returning the
        values observed on ``so_net`` (if given) *before* each edge."""
        observed = []
        for bit in bits:
            self.poke(si_net, bit)
            self.evaluate()
            if so_net is not None:
                observed.append(self.get(so_net))
            self.clock(clock_net)
        return observed

    def reset_state(self, value: int = X) -> None:
        """Force every sequential element to ``value`` (default X)."""
        for name in self.state:
            self.state[name] = value
        for net in self.values:
            self.values[net] = X
