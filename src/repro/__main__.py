"""Command-line front end: ``python -m repro <command>``.

BRAINS "can generate the BIST circuit using the GUI or command shell";
this is the command shell for the whole reproduction:

* ``python -m repro dsc``            — integrate the DSC chip, print the report
* ``python -m repro dsc --verilog``  — also dump the DFT-inserted Verilog
* ``python -m repro march``          — list the March algorithm library
* ``python -m repro coverage``       — March fault-coverage table
* ``python -m repro d695 [pins]``    — schedule the ITC'02 d695 benchmark
"""

from __future__ import annotations

import argparse
import sys


def _cmd_dsc(args: argparse.Namespace) -> int:
    from repro.core import Steac, SteacConfig
    from repro.soc.dsc import build_dsc_chip

    config = SteacConfig(bist_power_headroom=args.headroom)
    result = Steac(config).integrate(
        build_dsc_chip(test_pins=args.pins, power_budget=args.power)
    )
    print(result.report())
    if args.verilog:
        from repro.netlist import netlist_to_verilog

        text = netlist_to_verilog(result.netlist)
        if args.verilog == "-":
            print(text)
        else:
            with open(args.verilog, "w") as handle:
                handle.write(text)
            print(f"\nwrote {len(text.splitlines()):,} lines to {args.verilog}")
    return 0


def _cmd_march(args: argparse.Namespace) -> int:
    from repro.bist import ALGORITHMS, with_retention

    for march in ALGORITHMS:
        print(f"{march.name:<10} {march.complexity:>3}N   {march.format()}")
    if args.retention:
        print()
        for march in ALGORITHMS:
            try:
                variant = with_retention(march)
                print(f"{variant.name:<15} {variant.format()}")
            except ValueError:
                pass
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from repro.bist import ALGORITHMS, coverage_table

    print(coverage_table(list(ALGORITHMS), size=args.size, coupling_pairs=args.pairs).render())
    return 0


def _cmd_d695(args: argparse.Namespace) -> int:
    from repro.sched import schedule_sessions, tasks_from_soc
    from repro.soc.itc02 import d695_soc

    soc = d695_soc(test_pins=args.pins)
    result = schedule_sessions(soc, tasks_from_soc(soc))
    print(result.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STEAC SOC test integration platform (Wu, DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dsc = sub.add_parser("dsc", help="integrate the DSC case-study chip")
    p_dsc.add_argument("--pins", type=int, default=28, help="tester pin budget")
    p_dsc.add_argument("--power", type=float, default=8.0, help="power budget")
    p_dsc.add_argument("--headroom", action="store_true",
                       help="enable BIST power-headroom co-optimization")
    p_dsc.add_argument("--verilog", metavar="FILE", nargs="?", const="-",
                       help="dump DFT-inserted Verilog (to FILE or stdout)")
    p_dsc.set_defaults(func=_cmd_dsc)

    p_march = sub.add_parser("march", help="list the March algorithm library")
    p_march.add_argument("--retention", action="store_true",
                         help="also show data-retention variants")
    p_march.set_defaults(func=_cmd_march)

    p_cov = sub.add_parser("coverage", help="March fault-coverage table")
    p_cov.add_argument("--size", type=int, default=12, help="array cells")
    p_cov.add_argument("--pairs", type=int, default=12, help="sampled coupling pairs")
    p_cov.set_defaults(func=_cmd_coverage)

    p_d695 = sub.add_parser("d695", help="schedule the ITC'02 d695 benchmark")
    p_d695.add_argument("--pins", type=int, default=48, help="tester pin budget")
    p_d695.set_defaults(func=_cmd_d695)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
