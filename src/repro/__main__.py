"""Command-line front end: ``python -m repro <command>`` (or the
``repro`` console script).

BRAINS "can generate the BIST circuit using the GUI or command shell";
this is the command shell for the whole reproduction:

* ``python -m repro dsc``            — integrate the DSC chip, print the report
* ``python -m repro dsc --json``     — machine-readable integration result
* ``python -m repro dsc --verilog``  — also dump the DFT-inserted Verilog
* ``python -m repro batch``          — integrate many SOCs concurrently
  (``--backend serial|thread|process`` picks the executor)
* ``python -m repro march``          — list the March algorithm library
* ``python -m repro coverage``       — March fault-coverage table
* ``python -m repro d695 [pins]``    — schedule the ITC'02 d695 benchmark
* ``python -m repro repair``         — memory diagnosis, repair, and yield
* ``python -m repro strategies``     — list every registered strategy name
* ``python -m repro generate``       — emit a synthetic SOC (``.soc`` or JSON)
* ``python -m repro fuzz``           — differentially test every scheduler
  over a generated corpus, checking the :mod:`repro.verify` invariants
* ``python -m repro campaign``       — resumable checkpointed fuzz soaks
  (``run`` / ``resume`` / ``status`` / ``replay``); survives Ctrl-C and
  ``kill -9``, dedupes findings, shrinks failures to minimal repro chips
* ``python -m repro serve``          — HTTP job queue with a result cache
* ``python -m repro metrics``        — scrape a running server's /metrics

``dsc``, ``d695``, ``batch``, and ``fuzz`` accept ``--trace-out FILE``
to record :mod:`repro.obs` spans for the run and dump them as JSONL
(replay with :func:`repro.obs.load_jsonl` / :func:`repro.obs.span_tree`).

Scheduling strategies everywhere resolve by name through
:mod:`repro.sched.registry` — ``--strategy ilp`` runs the exact MILP —
repair allocators through :mod:`repro.repair.registry`, and generator
profiles through :mod:`repro.gen.profiles`; the ``strategies`` command
prints the first two registries.

Batch specs also accept generated chips: ``gen-<profile>-<seed>`` (e.g.
``gen-tiny-7:48`` for seed 7 of the ``tiny`` profile at 48 pins).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys


@contextlib.contextmanager
def _maybe_trace(args: argparse.Namespace):
    """Honour ``--trace-out FILE``: enable :mod:`repro.obs` tracing for
    the command's duration and export the recorded spans as JSONL on the
    way out (stderr note, so ``--json`` stdout stays machine-readable)."""
    path = getattr(args, "trace_out", None)
    if not path:
        yield
        return
    from repro.obs import TRACER, disable_tracing, enable_tracing

    enable_tracing()
    try:
        yield
    finally:
        count = len(TRACER.records())
        TRACER.export_jsonl(path)
        disable_tracing()
        TRACER.clear()
        print(f"wrote {count} span(s) to {path}", file=sys.stderr)


def _strategy_choices() -> list[str]:
    from repro.sched.registry import available_strategies

    return available_strategies()


def _allocator_choices() -> list[str]:
    from repro.repair.registry import available_allocators

    return available_allocators()


def _profile_choices() -> list[str]:
    from repro.gen.profiles import available_profiles

    return available_profiles()


def _backend_choices() -> list[str]:
    from repro.core.batch import BACKENDS

    return list(BACKENDS)


def _soc_builders() -> dict:
    from repro.soc.dsc import build_dsc_chip
    from repro.soc.itc02 import d695_soc

    return {"dsc": build_dsc_chip, "d695": d695_soc}


def _build_work_item(spec: str):
    """Parse a batch SOC spec: ``name[:pins[:power]]``.

    Names: ``dsc`` (the paper's case-study chip), ``d695`` (ITC'02), or
    ``gen-<profile>-<seed>`` for a synthetic chip from :mod:`repro.gen`.
    Examples: ``dsc``, ``dsc:24``, ``dsc:28:6.5``, ``d695:48``,
    ``gen-tiny-7``, ``gen-d695-like-3:48``.

    Named chips materialize here; generated chips come back as
    :class:`repro.gen.ScenarioSpec` coordinates so batch workers (in
    particular the process backend) generate them on their side of the
    boundary instead of unpickling a live model.
    """
    builders = _soc_builders()
    parts = spec.split(":")
    name, rest = parts[0], parts[1:]
    try:
        kwargs = {}
        if len(rest) >= 1:
            kwargs["test_pins"] = int(rest[0])
        if len(rest) >= 2:
            kwargs["power_budget"] = float(rest[1])
        if len(rest) >= 3:
            raise ValueError("too many fields")
    except ValueError as exc:
        raise SystemExit(
            f"bad SOC spec {spec!r}: {exc} (format: name[:pins[:power]], "
            "pins an int, power a float)"
        ) from None
    if name.startswith("gen-"):
        from repro.gen import ScenarioSpec, available_profiles, get_profile

        profile_name, _, seed_text = name[4:].rpartition("-")
        try:
            profile = get_profile(profile_name)
            seed = int(seed_text)
        except ValueError:
            raise SystemExit(
                f"bad generated-SOC spec {spec!r} (format: gen-<profile>-<seed>; "
                f"profiles: {', '.join(available_profiles())})"
            ) from None
        return ScenarioSpec(
            profile=profile.name,
            seed=seed,
            test_pins=kwargs.get("test_pins"),
            power_budget=kwargs.get("power_budget"),
        )
    if name not in builders:
        raise SystemExit(
            f"unknown SOC {name!r} in spec {spec!r} "
            f"(use {' or '.join(sorted(builders))}, or gen-<profile>-<seed>)"
        )
    return builders[name](**kwargs)


def _cmd_dsc(args: argparse.Namespace) -> int:
    from repro.core import Steac, SteacConfig
    from repro.soc.dsc import build_dsc_chip

    if args.json and args.verilog == "-":
        raise SystemExit(
            "--json keeps stdout machine-readable; give --verilog a FILE"
        )
    config = SteacConfig(bist_power_headroom=args.headroom, strategy=args.strategy)
    result = Steac(config).integrate(
        build_dsc_chip(test_pins=args.pins, power_budget=args.power)
    )
    if args.json:
        print(result.to_json())
    else:
        print(result.report())
    if args.verilog:
        from repro.netlist import netlist_to_verilog

        text = netlist_to_verilog(result.netlist)
        if args.verilog == "-":
            print(text)
        else:
            with open(args.verilog, "w") as handle:
                handle.write(text)
            if not args.json:
                print(f"\nwrote {len(text.splitlines()):,} lines to {args.verilog}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.core import Steac, SteacConfig

    specs = args.socs or ["dsc:24", "dsc:28", "dsc:36", "dsc:48"]
    items = [_build_work_item(spec) for spec in specs]
    config = SteacConfig(strategy=args.strategy, compare_strategies=False,
                         verify_schedule=args.verify)
    batch = Steac(config).integrate_many(
        items, workers=args.workers, backend=args.backend
    )
    if args.json:
        print(batch.to_json())
    else:
        print(batch.render())
    return 0 if batch.ok else 1


def _cmd_march(args: argparse.Namespace) -> int:
    from repro.bist import ALGORITHMS, with_retention

    for march in ALGORITHMS:
        print(f"{march.name:<10} {march.complexity:>3}N   {march.format()}")
    if args.retention:
        print()
        for march in ALGORITHMS:
            try:
                variant = with_retention(march)
                print(f"{variant.name:<15} {variant.format()}")
            except ValueError:
                pass
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from repro.bist import ALGORITHMS, coverage_table

    print(coverage_table(list(ALGORITHMS), size=args.size, coupling_pairs=args.pairs).render())
    return 0


def _cmd_d695(args: argparse.Namespace) -> int:
    from repro.sched import resolve_schedule, tasks_from_soc
    from repro.soc.itc02 import d695_soc

    soc = d695_soc(test_pins=args.pins)
    result = resolve_schedule(args.strategy, soc, tasks_from_soc(soc))
    if args.json:
        print(json.dumps(
            {"schema": "repro/schedule-result/v1", "soc": soc.name, **result.to_dict()},
            indent=2, sort_keys=True,
        ))
    else:
        print(result.render())
    return 0


def _cmd_strategies(args: argparse.Namespace) -> int:
    from repro.repair.registry import available_allocators
    from repro.sched.registry import available_strategies

    print("scheduling strategies (repro.sched.registry):")
    for name in available_strategies():
        print(f"  {name}")
    print("repair allocators (repro.repair.registry):")
    for name in available_allocators():
        print(f"  {name}")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    """Close the loop for one chip: inject seeded defects into every
    memory, diagnose with a real March run, allocate spares, and score
    the design with a Monte-Carlo repair-rate estimate (the report body
    lives in :mod:`repro.repair.service`, shared with ``repro serve``)."""
    from repro.repair.service import render_repair_report, repair_report

    soc = _soc_builders()[args.soc]()
    doc = repair_report(
        soc,
        seed=args.seed,
        trials=args.trials,
        workers=args.workers or 0,
        allocator=args.allocator,
        defects=args.defects,
        defect_density=args.defect_density,
        spare_rows=args.spare_rows,
        spare_cols=args.spare_cols,
        model_rows=args.model_rows,
    )
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_repair_report(doc))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    """Emit synthetic SOCs: ``.soc`` exchange text by default, or a JSON
    document carrying both the summary and the text."""
    from repro.gen import SocGenerator, soc_to_text

    if args.count < 1:
        raise SystemExit(f"--count must be at least 1, got {args.count}")
    generator = SocGenerator(args.seed, args.profile)
    socs = [generator.generate(i) for i in range(args.count)]
    if args.json:
        text = json.dumps({
            "schema": "repro/generated-soc/v1",
            "profile": args.profile,
            "seed": args.seed,
            "socs": [
                {
                    "name": soc.name,
                    "cores": len(soc.cores),
                    "memories": len(soc.memories),
                    "test_pins": soc.test_pins,
                    "power_budget": soc.power_budget,
                    "total_gates": soc.total_gates,
                    "memory_bits": soc.total_memory_bits,
                    "soc_text": soc_to_text(soc),
                }
                for soc in socs
            ],
        }, indent=2, sort_keys=True) + "\n"
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(text)
            print(f"wrote {len(socs)} SOC(s) to {args.out}")
        else:
            print(text, end="")
        return 0
    # .soc text: one document per chip — concatenating them would merge
    # into a single mis-parsed chip, so count > 1 writes one file each
    if len(socs) > 1 and not args.out:
        raise SystemExit(
            "--count > 1 needs --json (one document) or --out "
            "(one .soc file per chip)"
        )
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        written = []
        for index, soc in enumerate(socs):
            path = (
                args.out if len(socs) == 1
                else str(out.with_name(f"{out.stem}_{index}{out.suffix}"))
            )
            with open(path, "w") as handle:
                handle.write(soc_to_text(soc))
            written.append(path)
        print(f"wrote {len(socs)} SOC(s) to {', '.join(written)}")
        for soc in socs:
            print(f"  {soc.describe()}")
    else:
        print(soc_to_text(socs[0]), end="")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: every strategy over a generated corpus,
    every schedule invariant-checked, every chip round-tripped through
    the ITC'02 writer/parser (the sweep itself lives in
    :mod:`repro.gen.fuzzing`, shared with ``repro serve``).  Exit 1 on
    any violation."""
    from repro.gen.fuzzing import run_fuzz
    from repro.util import Table

    if args.seeds < 1:
        raise SystemExit(f"--seeds must be at least 1, got {args.seeds}")
    report = run_fuzz(
        profile=args.profile,
        seeds=args.seeds,
        seed_base=args.seed_base,
        strategies=args.strategies,
        ilp_max_tasks=args.ilp_max_tasks,
        workers=args.workers,
        backend=args.backend,
    )
    strategies = report["strategies"]
    scenario_docs = report["scenarios"]
    violation_count = report["violation_count"]
    ok = report["ok"]
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if ok else 1
    table = Table(
        ["SOC", "Tasks", "LB"] + strategies + ["Roundtrip"],
        title=f"differential fuzz: {args.seeds} x {args.profile!r} seeds "
        f"{args.seed_base}..{args.seed_base + args.seeds - 1}",
    )
    for doc in scenario_docs:
        row = [doc["soc"], doc["tasks"], doc["lower_bound"]]
        for strategy in strategies:
            cell = doc["strategies"][strategy]
            if "skipped" in cell:
                row.append("skip")
            elif "infeasible" in cell:
                row.append("INFEASIBLE")
            elif "crashed" in cell:
                row.append("CRASHED")
            else:
                row.append(cell["total_time"] if cell["ok"] else "VIOLATED")
        row.append("ok" if doc["roundtrip_ok"] else "FAIL")
        table.add_row(row)
    print(table.render())
    verdict = "clean" if ok else f"{violation_count} violations"
    if report["warning_count"]:
        verdict += f" ({report['warning_count']} warnings)"
    print(f"\n{len(scenario_docs)} SOCs x {len(strategies)} strategies: {verdict}")
    if not ok:
        for doc in scenario_docs:
            for strategy, cell in doc["strategies"].items():
                for violation in cell.get("errors", []):
                    print(f"  {doc['soc']} [{strategy}] {violation['rule']}"
                          f"({violation['subject']}): {violation['message']}")
                if "infeasible" in cell:
                    print(f"  {doc['soc']} [{strategy}] infeasible: {cell['infeasible']}")
                if "crashed" in cell:
                    print(f"  {doc['soc']} [{strategy}] crashed: {cell['crashed']}")
            for error in doc["roundtrip_errors"]:
                print(f"  {doc['soc']} [roundtrip] {error}")
        print(f"reproduce a chip with: python -m repro generate "
              f"--profile {args.profile} --seed <seed>")
    return 0 if ok else 1


def _render_campaign_report(report: dict) -> str:
    """Human-readable campaign summary (the non-``--json`` output of
    ``repro campaign run/resume``)."""
    from repro.util import Table

    lines = [
        f"campaign: {report['seeds']} x {report['profile']!r} seeds "
        f"{report['seed_base']}..{report['seed_base'] + report['seeds'] - 1}, "
        f"{report['backend']} backend ({report['workers']} workers), "
        f"chunks of {report['chunk_size']}",
        f"scenarios: {report['scenarios']}  violations: "
        f"{report['violation_count']}  warnings: {report['warning_count']}  "
        f"findings: {len(report['findings'])} "
        f"(+{report['duplicates']} duplicates)  "
        f"resumes: {report['runtime']['resumes']}  "
        f"elapsed: {report['runtime']['elapsed_seconds']:.2f} s",
    ]
    if report["findings"]:
        table = Table(
            ["#", "Strategy", "Rule", "Seed", "Minimized", "Repro"],
            title="deduplicated findings (rule, strategy, minimized-chip digest)",
        )
        for finding in report["findings"]:
            shape = finding["minimized"]
            table.add_row([
                finding["index"],
                finding["strategy"],
                finding["rule"],
                finding["seed"],
                f"{shape['cores']}c/{shape['memories']}m @{shape['test_pins']}p",
                finding["file"],
            ])
        lines.append(table.render())
    verdict = "clean" if report["ok"] else f"{report['violation_count']} violations"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Resumable checkpointed fuzz soaks (:mod:`repro.gen.campaign`):
    ``run`` starts a fresh campaign directory, ``resume`` continues an
    interrupted one (after Ctrl-C, ``kill -9``, or ``--max-chunks``),
    ``status`` snapshots progress, ``replay`` re-runs one emitted
    ``.soc`` repro file and checks the violation still fires."""
    from repro.gen.campaign import (
        Campaign,
        CampaignInterrupted,
        campaign_status,
        replay_repro,
        resume_campaign,
        run_campaign,
    )

    try:
        if args.action == "status":
            doc = campaign_status(args.dir)
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
            else:
                state = "complete" if doc["complete"] else "in progress"
                print(f"campaign {args.dir}: {state}, {doc['done']}/{doc['total']} "
                      f"scenarios, {doc['violation_count']} violations, "
                      f"{doc['findings']} findings (+{doc['duplicates']} "
                      f"duplicates), {doc['resumes']} resumes")
            return 0
        if args.action == "replay":
            doc = replay_repro(args.dir)
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
            else:
                sig = doc["signature"]
                verdict = "fires" if doc["fires"] else "DOES NOT FIRE"
                print(f"{doc['file']}: {sig['strategy']}/{sig['kind']}"
                      f"{':' + sig['rule'] if sig['rule'] else ''} {verdict} "
                      f"on {doc['soc']} ({doc['digest'][:12]})")
            return 0 if doc["fires"] else 1
        if args.action == "resume":
            report = resume_campaign(args.dir, max_chunks=args.max_chunks)
        else:
            report = run_campaign(
                args.dir,
                profile=args.profile,
                seeds=args.seeds,
                seed_base=args.seed_base,
                strategies=args.strategies,
                ilp_max_tasks=args.ilp_max_tasks,
                chunk_size=args.chunk_size,
                workers=args.workers,
                backend=args.backend,
                max_chunks=args.max_chunks,
            )
    except CampaignInterrupted as exc:
        status = Campaign.open(args.dir).status()
        print(f"{exc} ({status['done']}/{status['total']} scenarios done)",
              file=sys.stderr)
        return 3
    except (FileExistsError, FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render_campaign_report(report))
    return 0 if report["ok"] else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """detlint (:mod:`repro.analysis`): statically machine-check the
    repo's determinism, picklability, lock-discipline, and schema-
    version contracts.  Exit 1 on errors, 0 clean."""
    from repro.analysis import available_rules, get_rule, lint_paths
    from repro.analysis.report import render_human, render_json

    if args.list_rules:
        for rule_id in available_rules():
            rule = get_rule(rule_id)
            print(f"{rule_id:<8} {rule.severity:<8} {rule.description}")
        return 0
    paths = args.paths or ["src"]
    try:
        report = lint_paths(
            paths,
            root=args.root,
            rules=args.rules,
            update_fingerprints=args.update_fingerprints,
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    text = render_json(report) if args.json else render_human(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        if not args.json:
            print(text)
    else:
        print(text)
    if args.update_fingerprints:
        print("schema fingerprints regenerated", file=sys.stderr)
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the integration service (:mod:`repro.serve`): an HTTP job
    queue over integrate/batch/fuzz/repair with a content-addressed
    result cache.  Serves until Ctrl-C or ``POST /shutdown``, draining
    in-flight jobs on the way out."""
    from repro.serve import DEFAULT_MAX_JOBS, create_server

    if args.max_jobs is None:
        max_jobs = DEFAULT_MAX_JOBS
    else:
        max_jobs = args.max_jobs if args.max_jobs > 0 else None

    server = create_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
        cache_dir=args.cache_dir,
        cache_capacity=args.cache_size,
        verbose=args.verbose,
        max_jobs=max_jobs,
    )
    cache = f", cache dir {args.cache_dir}" if args.cache_dir else ""
    # flush so a parent process reading our pipe learns the bound port
    # (--port 0) before the first request
    print(
        f"repro serve on {server.url} "
        f"({args.workers} worker(s), backend {args.backend or 'auto'}{cache})",
        flush=True,
    )
    print(
        "POST /jobs to submit; Ctrl-C or POST /shutdown to drain and exit",
        flush=True,
    )
    server.run()
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Print a running server's Prometheus exposition (``GET /metrics``)
    — the shell-side twin of pointing a scraper at the service."""
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url, timeout=10.0)
    try:
        print(client.metrics_text(), end="")
    except (ServeError, OSError) as exc:
        print(f"cannot fetch {args.url}/metrics: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    strategies = _strategy_choices()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STEAC SOC test integration platform (Wu, DATE 2005 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dsc = sub.add_parser("dsc", help="integrate the DSC case-study chip")
    p_dsc.add_argument("--pins", type=int, default=28, help="tester pin budget")
    p_dsc.add_argument("--power", type=float, default=8.0, help="power budget")
    p_dsc.add_argument("--strategy", choices=strategies, default="session",
                       help="scheduling strategy (registry name)")
    p_dsc.add_argument("--headroom", action="store_true",
                       help="enable BIST power-headroom co-optimization")
    p_dsc.add_argument("--json", action="store_true",
                       help="emit the machine-readable integration result")
    p_dsc.add_argument("--verilog", metavar="FILE", nargs="?", const="-",
                       help="dump DFT-inserted Verilog (to FILE or stdout)")
    p_dsc.add_argument("--trace-out", metavar="FILE",
                       help="record repro.obs spans and write them as JSONL")
    p_dsc.set_defaults(func=_cmd_dsc)

    p_batch = sub.add_parser(
        "batch", help="integrate many SOCs concurrently (specs: name[:pins[:power]])"
    )
    p_batch.add_argument("socs", nargs="*", metavar="SPEC",
                         help="SOC specs, e.g. dsc:24 dsc:28 d695:48 "
                              "(default: a DSC pin-budget sweep)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="worker count (default: one per SOC, capped at CPUs)")
    p_batch.add_argument("--backend", choices=_backend_choices(), default="auto",
                         help="executor backend (auto picks serial for trivial "
                              "batches, process otherwise)")
    p_batch.add_argument("--strategy", choices=strategies, default="session",
                         help="scheduling strategy (registry name)")
    p_batch.add_argument("--json", action="store_true",
                         help="emit the machine-readable batch result")
    p_batch.add_argument("--verify", action="store_true",
                         help="invariant-check every schedule (exit 1 on violations)")
    p_batch.add_argument("--trace-out", metavar="FILE",
                         help="record repro.obs spans and write them as JSONL")
    p_batch.set_defaults(func=_cmd_batch)

    p_march = sub.add_parser("march", help="list the March algorithm library")
    p_march.add_argument("--retention", action="store_true",
                         help="also show data-retention variants")
    p_march.set_defaults(func=_cmd_march)

    p_cov = sub.add_parser("coverage", help="March fault-coverage table")
    p_cov.add_argument("--size", type=int, default=12, help="array cells")
    p_cov.add_argument("--pairs", type=int, default=12, help="sampled coupling pairs")
    p_cov.set_defaults(func=_cmd_coverage)

    p_d695 = sub.add_parser("d695", help="schedule the ITC'02 d695 benchmark")
    p_d695.add_argument("--pins", type=int, default=48, help="tester pin budget")
    p_d695.add_argument("--strategy", choices=strategies, default="session",
                        help="scheduling strategy (registry name)")
    p_d695.add_argument("--json", action="store_true",
                        help="emit the machine-readable schedule result")
    p_d695.add_argument("--trace-out", metavar="FILE",
                        help="record repro.obs spans and write them as JSONL")
    p_d695.set_defaults(func=_cmd_d695)

    p_repair = sub.add_parser(
        "repair", help="memory diagnosis, redundancy allocation, and repair rate"
    )
    p_repair.add_argument("--soc", choices=sorted(_soc_builders()), default="dsc",
                          help="chip to analyze")
    p_repair.add_argument("--seed", type=int, default=7,
                          help="defect-injection base seed")
    p_repair.add_argument("--trials", type=int, default=500,
                          help="Monte-Carlo chips sampled")
    p_repair.add_argument("--workers", type=int, default=None,
                          help="Monte-Carlo process count (default: serial)")
    p_repair.add_argument("--allocator", choices=_allocator_choices(), default="greedy",
                          help="repair allocator (registry name)")
    p_repair.add_argument("--defects", type=int, default=3,
                          help="defects injected per memory in the diagnosis table")
    p_repair.add_argument("--defect-density", type=float, default=0.3,
                          help="mean defects per Mbit (Monte-Carlo section)")
    p_repair.add_argument("--spare-rows", type=int, default=None,
                          help="spare rows per memory (default: 2)")
    p_repair.add_argument("--spare-cols", type=int, default=None,
                          help="spare columns per memory (default: 2)")
    p_repair.add_argument("--model-rows", type=int, default=32,
                          help="word-line cap for the modelled arrays")
    p_repair.add_argument("--json", action="store_true",
                          help="emit the machine-readable repair report")
    p_repair.set_defaults(func=_cmd_repair)

    p_strat = sub.add_parser(
        "strategies", help="list registered scheduling strategies and repair allocators"
    )
    p_strat.set_defaults(func=_cmd_strategies)

    profiles = _profile_choices()
    p_gen = sub.add_parser(
        "generate", help="generate synthetic SOCs (repro.gen), in .soc format"
    )
    p_gen.add_argument("--seed", type=int, default=0, help="generator seed")
    p_gen.add_argument("--profile", choices=profiles, default="small",
                       help="size/shape profile (registry name)")
    p_gen.add_argument("--count", type=int, default=1,
                       help="chips to emit (stream indices 0..count-1)")
    p_gen.add_argument("--out", metavar="FILE", help="write .soc text to FILE")
    p_gen.add_argument("--json", action="store_true",
                       help="emit a machine-readable document instead of .soc text")
    p_gen.set_defaults(func=_cmd_generate)

    p_fuzz = sub.add_parser(
        "fuzz", help="differentially fuzz every scheduler over generated SOCs"
    )
    p_fuzz.add_argument("--seeds", type=int, default=20,
                        help="number of generated chips (one seed each)")
    p_fuzz.add_argument("--seed-base", type=int, default=0,
                        help="first seed of the corpus")
    p_fuzz.add_argument("--profile", choices=profiles, default="tiny",
                        help="generator profile for the corpus")
    p_fuzz.add_argument("--strategies", nargs="*", choices=strategies, default=None,
                        metavar="STRATEGY",
                        help="strategies to race (default: every registered one)")
    p_fuzz.add_argument("--ilp-max-tasks", type=int, default=6,
                        help="skip the exact MILP above this task count")
    p_fuzz.add_argument("--workers", type=int, default=None,
                        help="worker count for the corpus sweep (default: 1)")
    p_fuzz.add_argument("--backend", choices=_backend_choices(), default="auto",
                        help="executor backend for the corpus sweep")
    p_fuzz.add_argument("--json", action="store_true",
                        help="emit the machine-readable fuzz report")
    p_fuzz.add_argument("--trace-out", metavar="FILE",
                        help="record repro.obs spans and write them as JSONL")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_campaign = sub.add_parser(
        "campaign",
        help="resumable checkpointed fuzz soaks (run / resume / status / replay)",
    )
    campaign_sub = p_campaign.add_subparsers(dest="action", required=True)

    pc_run = campaign_sub.add_parser(
        "run", help="start a fresh campaign in DIR (checkpointed per chunk)"
    )
    pc_run.add_argument("dir", help="campaign directory (created; must not "
                                    "already hold a campaign)")
    pc_run.add_argument("--seeds", type=int, default=1000,
                        help="number of generated chips (one seed each)")
    pc_run.add_argument("--seed-base", type=int, default=0,
                        help="first seed of the corpus")
    pc_run.add_argument("--profile", choices=profiles, default="tiny",
                        help="generator profile for the corpus")
    pc_run.add_argument("--strategies", nargs="*", choices=strategies,
                        default=None, metavar="STRATEGY",
                        help="strategies to race (default: every registered one)")
    pc_run.add_argument("--ilp-max-tasks", type=int, default=6,
                        help="skip the exact MILP above this task count")
    pc_run.add_argument("--chunk-size", type=int, default=200,
                        help="scenarios per checkpoint barrier")
    pc_run.add_argument("--workers", type=int, default=None,
                        help="worker count for each chunk (default: 1)")
    pc_run.add_argument("--backend", choices=_backend_choices(), default="auto",
                        help="executor backend for chunk dispatch")
    pc_run.add_argument("--max-chunks", type=int, default=None,
                        help="pause (exit 3) after this many chunks — a "
                             "deterministic interrupt for smoke tests")
    pc_run.add_argument("--json", action="store_true",
                        help="emit the machine-readable campaign report")
    pc_run.set_defaults(func=_cmd_campaign, action="run")

    pc_resume = campaign_sub.add_parser(
        "resume", help="continue an interrupted campaign from its checkpoint"
    )
    pc_resume.add_argument("dir", help="existing campaign directory")
    pc_resume.add_argument("--max-chunks", type=int, default=None,
                           help="pause again (exit 3) after this many chunks")
    pc_resume.add_argument("--json", action="store_true",
                           help="emit the machine-readable campaign report")
    pc_resume.set_defaults(func=_cmd_campaign, action="resume")

    pc_status = campaign_sub.add_parser(
        "status", help="snapshot a campaign's checkpointed progress"
    )
    pc_status.add_argument("dir", help="existing campaign directory")
    pc_status.add_argument("--json", action="store_true",
                           help="emit the machine-readable status document")
    pc_status.set_defaults(func=_cmd_campaign, action="status")

    pc_replay = campaign_sub.add_parser(
        "replay", help="re-run one findings/*.soc repro file standalone "
                       "(exit 1 if the violation no longer fires)"
    )
    pc_replay.add_argument("dir", metavar="FILE", help="repro .soc file "
                           "emitted by a campaign")
    pc_replay.add_argument("--json", action="store_true",
                           help="emit the machine-readable replay document")
    pc_replay.set_defaults(func=_cmd_campaign, action="replay")

    p_lint = sub.add_parser(
        "lint",
        help="detlint: static determinism/concurrency contract checks "
             "(exit 1 on errors)",
    )
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--root", default=".",
                        help="repository root (for the committed schema-"
                             "fingerprint file)")
    p_lint.add_argument("--rules", nargs="*", default=None, metavar="RULE",
                        help="rule ids to run (default: every registered rule)")
    p_lint.add_argument("--list", dest="list_rules", action="store_true",
                        help="list registered rules and exit")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable repro/lint-report/v1 "
                             "document")
    p_lint.add_argument("--out", metavar="FILE",
                        help="also write the report to FILE")
    p_lint.add_argument("--update-fingerprints", action="store_true",
                        help="regenerate src/repro/analysis/schema_"
                             "fingerprints.json from the tree")
    p_lint.set_defaults(func=_cmd_lint)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP job-queue service with a result cache"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: loopback only)")
    p_serve.add_argument("--port", type=int, default=8750,
                         help="bind port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent jobs (each job parallelizes "
                              "internally via --backend)")
    p_serve.add_argument("--backend", choices=_backend_choices(), default=None,
                         help="default executor backend for submitted jobs")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persist cached results to this directory")
    p_serve.add_argument("--cache-size", type=int, default=256,
                         help="in-memory result-cache entries")
    p_serve.add_argument("--max-jobs", type=int, default=None,
                         help="retained job records; terminal jobs past the "
                              "cap are evicted LRU-first (default 4096, "
                              "0 = unbounded)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")
    p_serve.set_defaults(func=_cmd_serve)

    p_metrics = sub.add_parser(
        "metrics", help="fetch a running server's /metrics exposition"
    )
    p_metrics.add_argument("--url", default="http://127.0.0.1:8750",
                           help="base URL of the repro serve instance")
    p_metrics.set_defaults(func=_cmd_metrics)

    args = parser.parse_args(argv)
    try:
        with _maybe_trace(args):
            return args.func(args)
    except KeyboardInterrupt:
        # Ctrl-C is a normal way to stop a long sweep or campaign: no
        # traceback, the conventional 128+SIGINT code.  Pool-backed
        # commands cancel queued work on the way up (see
        # repro.core.batch), and a campaign's checkpoint already covers
        # everything before the in-flight chunk — `repro campaign
        # resume DIR` continues it.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
