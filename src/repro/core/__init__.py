"""STEAC: the SOC test integration platform (the paper's contribution)."""

from repro.core.steac import IntegrationResult, Steac, SteacConfig

__all__ = ["IntegrationResult", "Steac", "SteacConfig"]
