"""STEAC: the SOC test integration platform (the paper's contribution).

Three API layers, thin over thick:

* one-call — ``Steac().integrate(soc)`` runs the whole Fig.-1 flow;
* staged — :mod:`repro.core.pipeline` exposes each box (``ParseStil``,
  ``CompileBist``, ``Schedule``, ``InsertDft``, ``TranslatePatterns``)
  as a replaceable :class:`Stage` over a :class:`FlowContext`;
* batch — ``Steac().integrate_many(socs, workers=N, backend=...)`` fans
  the flow out over a pluggable executor backend (serial / thread /
  process) with per-SOC error isolation and one platform instance per
  worker.

Results serialize via ``IntegrationResult.to_dict()`` / ``to_json()``.
"""

from repro.core.batch import BatchItem, BatchResult, integrate_many
from repro.core.pipeline import (
    CompileBist,
    FlowContext,
    InsertDft,
    ParseStil,
    Pipeline,
    Schedule,
    Stage,
    TranslatePatterns,
    default_stages,
)
from repro.core.results import IntegrationResult
from repro.core.steac import Steac, SteacConfig

__all__ = [
    "BatchItem",
    "BatchResult",
    "CompileBist",
    "FlowContext",
    "InsertDft",
    "IntegrationResult",
    "ParseStil",
    "Pipeline",
    "Schedule",
    "Stage",
    "Steac",
    "SteacConfig",
    "TranslatePatterns",
    "default_stages",
    "integrate_many",
]
