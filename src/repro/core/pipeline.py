"""The STEAC flow as a composable pipeline (paper Fig. 1, staged).

The platform is a pipeline — STIL Parser → BRAINS → Core Test Scheduler
→ Test Insertion → Pattern Translator — and this module exposes each box
as a first-class :class:`Stage` over a shared :class:`FlowContext`
artifact bag.  ``Steac.integrate()`` is a thin wrapper over
:func:`default_stages`; callers who need more control can run a partial
flow, replace a stage, or append their own:

    >>> from repro.core.pipeline import Pipeline, FlowContext, Schedule
    >>> ctx = FlowContext(soc=build_dsc_chip())            # doctest: +SKIP
    >>> Pipeline.default().until("schedule").run(ctx)      # doctest: +SKIP
    >>> ctx.schedule.total_time                            # doctest: +SKIP

Stages mutate the context in place; each records its wall-clock time in
``ctx.stage_seconds`` (and in the ``pipeline.stage.seconds`` histogram
— plus one ``pipeline.<stage>`` span when :mod:`repro.obs` tracing is
enabled).  A stage only reads artifacts produced by earlier stages, so
any prefix of the default flow is a valid flow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Sequence

from repro.bist.compiler import BistEngine, Brains, BrainsConfig
from repro.netlist import Module, Netlist, PortDir
from repro.obs import METRICS, span
from repro.patterns.ate import AteProgram
from repro.patterns.core_patterns import CorePatternSet
from repro.patterns.translate import (
    chip_level_program,
    translate_core_to_wrapper,
    wrapper_functional_program,
    wrapper_scan_program,
)
from repro.sched.registry import resolve_schedule
from repro.sched.result import ScheduleResult, TestTask
from repro.sched.session import InfeasibleScheduleError
from repro.sched.tasks import tasks_from_soc
from repro.soc.soc import Soc
from repro.stil.semantics import core_from_stil
from repro.tam.bus import TamBus, build_tam
from repro.tam.mux import make_tam_mux
from repro.wrapper.generator import GeneratedWrapper, generate_wrapper

if TYPE_CHECKING:  # pragma: no cover
    from repro.repair.analysis import RepairAnalysis
    from repro.verify.report import VerificationReport

#: Strategies run by ``compare_strategies`` when the config does not name
#: its own set.  The MILP is deliberately absent — it is minutes, not
#: milliseconds, on real chips; opt in via ``SteacConfig.compare_with``.
DEFAULT_COMPARE_STRATEGIES: tuple[str, ...] = ("session", "nonsession", "serial")

_STAGE_SECONDS = METRICS.histogram(
    "pipeline.stage.seconds", "wall time per pipeline stage execution"
)


@dataclass
class FlowContext:
    """Everything a flow reads and produces, in dependency order.

    Inputs (caller-set): ``soc``, ``config``, ``stil_texts``,
    ``pattern_data``.  Artifacts (stage-set): everything else.  The
    ``soc`` field is re-pointed at a shallow working copy by
    :class:`ParseStil` when STIL input adds or replaces cores, so the
    caller's model is never mutated.
    """

    soc: Soc
    config: "SteacConfig" = None  # type: ignore[assignment]  # default set in __post_init__
    stil_texts: dict[str, str] = field(default_factory=dict)
    pattern_data: dict[str, CorePatternSet] = field(default_factory=dict)

    # -- artifacts, in the order the default flow produces them ----------
    tasks: list[TestTask] = field(default_factory=list)
    bist_engine: Optional[BistEngine] = None
    repair: Optional["RepairAnalysis"] = None
    schedule: Optional[ScheduleResult] = None
    comparison: dict[str, Optional[int]] = field(default_factory=dict)
    wrappers: dict[str, GeneratedWrapper] = field(default_factory=dict)
    tam_bus: Optional[TamBus] = None
    netlist: Optional[Netlist] = None
    controller_module: Optional[Module] = None
    tam_module: Optional[Module] = None
    programs: dict[str, AteProgram] = field(default_factory=dict)
    verification: Optional["VerificationReport"] = None
    stage_seconds: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.config is None:
            from repro.core.steac import SteacConfig

            self.config = SteacConfig()

    def require(self, *artifacts: str) -> None:
        """Fail fast when a stage runs before its producers."""
        missing = [a for a in artifacts if getattr(self, a) is None]
        if missing:
            raise MissingArtifactError(
                f"stage needs {', '.join(missing)} — run the producing "
                f"stage(s) first (default order: {[s.name for s in default_stages()]})"
            )


class MissingArtifactError(RuntimeError):
    """A stage ran before the stage that produces its input."""


class Stage:
    """One box of the Fig.-1 flow.

    Subclasses set ``name`` and implement :meth:`execute`; :meth:`run`
    wraps it with per-stage timing.  Stages are cheap, stateless-ish
    objects — construct freely, reuse across SOCs.
    """

    name: str = "stage"

    def execute(self, ctx: FlowContext) -> None:
        raise NotImplementedError

    def run(self, ctx: FlowContext) -> FlowContext:
        started = time.perf_counter()
        with span("pipeline." + self.name, soc=ctx.soc.name):
            self.execute(ctx)
        elapsed = time.perf_counter() - started
        ctx.stage_seconds[self.name] = (
            ctx.stage_seconds.get(self.name, 0.0) + elapsed
        )
        _STAGE_SECONDS.observe(elapsed, stage=self.name)
        return ctx

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class ParseStil(Stage):
    """STIL Parser: digest core test views, extend/replace the SOC's cores.

    Works on a shallow copy of the SOC (fresh ``cores`` list) so the
    caller's model survives integration untouched.  Vectors carried by
    the STIL feed ``ctx.pattern_data`` for the Pattern Translator.
    """

    name = "parse_stil"

    def execute(self, ctx: FlowContext) -> None:
        if not ctx.stil_texts:
            return
        soc = replace(ctx.soc, cores=list(ctx.soc.cores))
        for _name, text in ctx.stil_texts.items():
            extracted = core_from_stil(text)
            replaced = False
            for i, core in enumerate(soc.cores):
                if core.name == extracted.core.name:
                    soc.cores[i] = extracted.core
                    replaced = True
                    break
            if not replaced:
                soc.add_core(extracted.core)
            if extracted.patterns.scan_vectors or extracted.patterns.functional_vectors:
                ctx.pattern_data.setdefault(extracted.core.name, extracted.patterns)
        ctx.soc = soc


class CompileBist(Stage):
    """BRAINS (Fig. 4): compile memory BIST, emit schedulable group tasks.

    Also derives the core-test task list, so a flow starting here (or at
    ``schedule`` for a memory-less chip) always has ``ctx.tasks``.
    """

    name = "compile_bist"

    def execute(self, ctx: FlowContext) -> None:
        config = ctx.config
        soc = ctx.soc
        tasks = tasks_from_soc(soc)
        if soc.memories:
            bist_budget = soc.power_budget
            if config.bist_power_headroom and soc.power_budget > 0 and tasks:
                bist_budget = max(1e-9, soc.power_budget - max(t.power for t in tasks))
            ctx.bist_engine = Brains().compile(
                soc.memories,
                BrainsConfig(march=config.march, power_budget=bist_budget),
            )
            tasks = tasks + ctx.bist_engine.to_tasks()
        ctx.tasks = tasks


class Schedule(Stage):
    """Core Test Scheduler: resolve the configured strategy by name and,
    when ``compare_strategies`` is on, race it against the others."""

    name = "schedule"

    def execute(self, ctx: FlowContext) -> None:
        config = ctx.config
        if not ctx.tasks and "compile_bist" not in ctx.stage_seconds:
            # allow schedule-only flows on a bare SOC
            ctx.tasks = tasks_from_soc(ctx.soc)
        ctx.schedule = self._schedule(ctx, config.strategy)
        if config.compare_strategies:
            compare_with = (
                config.compare_with
                if config.compare_with is not None
                else DEFAULT_COMPARE_STRATEGIES
            )
            for strategy in compare_with:
                if strategy == config.strategy:
                    ctx.comparison[strategy] = ctx.schedule.total_time
                    continue
                try:
                    ctx.comparison[strategy] = self._schedule(ctx, strategy).total_time
                except (InfeasibleScheduleError, ImportError):
                    # infeasible under this strategy, or an optional
                    # dependency (scipy for "ilp") is absent — either
                    # way the comparison entry is unavailable, not fatal
                    ctx.comparison[strategy] = None

    @staticmethod
    def _schedule(ctx: FlowContext, strategy: str) -> ScheduleResult:
        return resolve_schedule(
            strategy,
            ctx.soc,
            ctx.tasks,
            n_sessions=ctx.config.n_sessions,
            policy=ctx.config.policy,
        )


class InsertDft(Stage):
    """Test Insertion: wrappers, TAM bus + mux, test controller, and the
    stitched DFT-inserted chip top."""

    name = "insert_dft"

    def execute(self, ctx: FlowContext) -> None:
        ctx.require("schedule")
        from repro.controller.generator import make_test_controller

        soc = ctx.soc
        schedule = ctx.schedule
        netlist = Netlist()
        widths = schedule.scheduled_widths()
        for core in soc.wrapped_cores:
            ctx.wrappers[core.name] = generate_wrapper(
                core, netlist, width=widths.get(core.name, 1)
            )
        ctx.tam_bus = build_tam(schedule)
        ctx.tam_module = make_tam_mux(ctx.tam_bus)
        netlist.add(ctx.tam_module)
        ctx.controller_module = make_test_controller(schedule)
        netlist.add(ctx.controller_module)
        top = self._build_top(ctx, netlist)
        netlist.top_name = top.name
        ctx.netlist = netlist

    def _build_top(self, ctx: FlowContext, netlist: Netlist) -> Module:
        """Stitch the DFT-inserted chip top: wrappers (cores inside),
        serial-chained WSI/WSO, TAM pins, controller hookup."""
        from repro.soc.ports import SignalKind

        soc = ctx.soc
        tam_bus = ctx.tam_bus
        tam_module = ctx.tam_module
        controller_module = ctx.controller_module
        top = Module(f"{soc.name}_test_top")
        for pin in ("tck", "trstn", "tc_start", "tc_next", "tc_config_done",
                    "shiftwr", "capturewr", "updatewr", "wsi", "parallel_sel"):
            top.add_input(pin)
        top.add_output("wso")
        top.add_output("tc_done")
        for w in range(tam_bus.width):
            top.add_input(f"tam_in{w}")
            top.add_output(f"tam_out{w}")

        ctrl_conns = {
            "tck": "tck", "trstn": "trstn", "start": "tc_start",
            "next_session": "tc_next", "config_done": "tc_config_done",
            "shiftwr": "shiftwr", "capturewr": "capturewr", "updatewr": "updatewr",
            "selectwir": "n_selectwir", "shift_bcast": "n_shift",
            "capture_bcast": "n_capture", "update_bcast": "n_update",
            "done": "tc_done",
        }
        for port in controller_module.ports:
            if port.name.startswith("te_"):
                ctrl_conns[port.name] = f"n_{port.name}"
            elif port.name.startswith("session_sel"):
                ctrl_conns[port.name] = f"n_{port.name}"
        top.add_instance("u_ctrl", controller_module.name, **ctrl_conns)

        # shared control pins (the session-sharing IO model of E3):
        # one pin per clock domain, one shared SE, one shared reset;
        # TE/test signals come from the controller's te_<core> outputs
        top.add_input("se_shared")
        top.add_input("rst_shared")
        clock_pins: dict[str, str] = {}
        serial_prev = "wsi"
        mux_conns: dict[str, str] = {}
        for port in tam_module.ports:
            if port.name.startswith("sel"):
                bit = port.name[3:]
                mux_conns[port.name] = f"n_session_sel{bit}"

        for _i, (core_name, gen) in enumerate(sorted(ctx.wrappers.items())):
            wrapper = gen.module
            core = soc.core(core_name)
            port_kind = {p.name: p for p in core.ports}
            conns: dict[str, str] = {}
            for port in wrapper.ports:
                if port.name == "wsi":
                    conns[port.name] = serial_prev
                elif port.name == "wso":
                    conns[port.name] = f"n_wso_{core_name}"
                    serial_prev = f"n_wso_{core_name}"
                elif port.name == "wrck":
                    conns[port.name] = "tck"
                elif port.name == "selectwir":
                    conns[port.name] = "n_selectwir"
                elif port.name == "shiftwr":
                    conns[port.name] = "n_shift"
                elif port.name == "capturewr":
                    conns[port.name] = "n_capture"
                elif port.name == "updatewr":
                    conns[port.name] = "n_update"
                elif port.name == "parallel_sel":
                    conns[port.name] = "parallel_sel"
                elif port.name.startswith("wpi"):
                    local = int(port.name[3:])
                    wire = self._slot_wire(tam_bus, core_name, local)
                    conns[port.name] = f"tam_in{wire}" if wire is not None else f"n_nc_{core_name}_{port.name}"
                elif port.name.startswith("wpo"):
                    pin = f"{core_name}_{port.name}"
                    conns[port.name] = f"n_{pin}"
                else:
                    core_port = port_kind.get(port.name)
                    kind = core_port.kind if core_port is not None else None
                    if kind is SignalKind.CLOCK:
                        domain = core_port.clock_domain or port.name
                        if domain not in clock_pins:
                            clock_pins[domain] = top.add_input(f"tclk_{domain}")
                        conns[port.name] = clock_pins[domain]
                    elif kind is SignalKind.SCAN_ENABLE:
                        conns[port.name] = "se_shared"
                    elif kind is SignalKind.RESET:
                        conns[port.name] = "rst_shared"
                    elif kind in (SignalKind.TEST_ENABLE, SignalKind.TEST):
                        conns[port.name] = f"n_te_{core_name}"
                    else:
                        # functional IO: internal glue net (driven by the
                        # mission-mode interconnect, not modelled here)
                        conns[port.name] = f"glue_{core_name}_{port.name}"
            top.add_instance(f"u_wrap_{core_name}", wrapper.name, **conns)
        # TAM mux inputs: wrapper wpo nets.  Map via the bus slots — mux
        # input ports are sanitized task names, so parsing a core name
        # out of the port string breaks for cores with '_' in the name.
        slot_nets: dict[str, str] = {}
        for slot in tam_bus.slots:
            for local in range(slot.width):
                port_name = f"{slot.task_name}_wpo{local}".replace(".", "_")
                slot_nets[port_name] = f"n_{slot.core_name}_wpo{local}"
        for port in tam_module.ports:
            if port.direction is PortDir.IN and port.name in slot_nets:
                mux_conns[port.name] = slot_nets[port.name]
            elif port.name.startswith("tam_out"):
                mux_conns[port.name] = port.name
        top.add_instance("u_tam_mux", tam_module.name, **mux_conns)
        top.add_instance("u_wso_buf", "BUF", A=serial_prev, Y="wso")
        netlist.add(top)
        return top

    @staticmethod
    def _slot_wire(tam_bus: TamBus, core_name: str, local: int):
        for slot in tam_bus.slots:
            if slot.core_name == core_name and local < len(slot.wires):
                return slot.wires[local]
        return None


class TranslatePatterns(Stage):
    """Pattern Translator: core-level vectors → wrapper-level → cycle-based
    chip-level ATE programs, routed through the core's TAM slot."""

    name = "translate_patterns"

    def execute(self, ctx: FlowContext) -> None:
        if not ctx.pattern_data:
            return
        ctx.require("tam_bus")
        soc = ctx.soc
        for core_name, patterns in ctx.pattern_data.items():
            core = soc.core(core_name)
            wrapper = ctx.wrappers.get(core_name)
            if wrapper is None:
                continue
            if patterns.scan_vectors:
                wp = translate_core_to_wrapper(core, patterns, wrapper.plan)
                program = wrapper_scan_program(core, wp)
                task_name = next(
                    (f"{core_name}.{t.name}" for t in core.tests if t.kind.value == "scan"),
                    f"{core_name}.scan",
                )
                try:
                    slot = ctx.tam_bus.slot_for_task(task_name)
                    program = chip_level_program(program, slot)
                except KeyError:
                    pass
                ctx.programs[f"{core_name}.scan"] = program
            if patterns.functional_vectors:
                ctx.programs[f"{core_name}.func"] = wrapper_functional_program(
                    core, patterns
                )


def default_stages(repair: bool = False, verify: bool = False) -> list[Stage]:
    """The paper's Fig.-1 flow, in order.

    ``repair=True`` inserts the optional ``analyze_repair`` stage
    (memory diagnosis & repair, :mod:`repro.repair`) right after BRAINS;
    ``verify=True`` appends the ``verify`` stage (invariant checking,
    :mod:`repro.verify`) after the Pattern Translator.
    """
    stages: list[Stage] = [
        ParseStil(), CompileBist(), Schedule(), InsertDft(), TranslatePatterns(),
    ]
    if repair:
        from repro.repair.analysis import AnalyzeRepair

        stages.insert(2, AnalyzeRepair())
    if verify:
        from repro.verify.stage import VerifySchedule

        stages.append(VerifySchedule())
    return stages


@dataclass
class Pipeline:
    """An ordered list of stages with list-algebra helpers.

    ``Pipeline.default()`` is the full Fig.-1 flow; ``until``/``since``
    slice it, ``replacing`` swaps one stage for another (by name), and
    ``|`` appends.  All helpers return new pipelines — compose freely.
    """

    stages: list[Stage] = field(default_factory=default_stages)

    @classmethod
    def default(cls) -> "Pipeline":
        return cls(default_stages())

    @classmethod
    def with_repair(cls) -> "Pipeline":
        """The default flow plus memory repair analysis after BRAINS."""
        return cls(default_stages(repair=True))

    @classmethod
    def with_verify(cls) -> "Pipeline":
        """The default flow plus invariant verification at the end."""
        return cls(default_stages(verify=True))

    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]

    def run(self, ctx: FlowContext) -> FlowContext:
        """Run every stage, in order, over ``ctx``."""
        for stage in self.stages:
            stage.run(ctx)
        return ctx

    # -- composition helpers ----------------------------------------------

    def until(self, name: str) -> "Pipeline":
        """The prefix ending at (and including) stage ``name``."""
        idx = self._index(name)
        return Pipeline(self.stages[: idx + 1])

    def since(self, name: str) -> "Pipeline":
        """The suffix starting at stage ``name``."""
        return Pipeline(self.stages[self._index(name):])

    def replacing(self, name: str, stage: Stage) -> "Pipeline":
        """A copy with the named stage swapped for ``stage``."""
        idx = self._index(name)
        stages = list(self.stages)
        stages[idx] = stage
        return Pipeline(stages)

    def __or__(self, other: "Pipeline | Stage | Sequence[Stage]") -> "Pipeline":
        if isinstance(other, Pipeline):
            extra = other.stages
        elif isinstance(other, Stage):
            extra = [other]
        else:
            extra = list(other)
        return Pipeline(list(self.stages) + extra)

    def _index(self, name: str) -> int:
        for i, stage in enumerate(self.stages):
            if stage.name == name:
                return i
        raise KeyError(
            f"pipeline has no stage {name!r}; stages: {self.stage_names}"
        )
