"""STEAC — the SOC Test Aid Console (paper Fig. 1).

The integration platform: STIL Parser → Core Test Scheduler → Test
Insertion (wrapper / TAM / test-controller generation into the netlist)
→ Pattern Translator, with BRAINS compiled in for the embedded memories
(Fig. 4).  One call does what the paper reports took "5 minutes" on a
Sun Blade 1000:

    >>> from repro.soc.dsc import build_dsc_chip
    >>> from repro.core import Steac
    >>> result = Steac().integrate(build_dsc_chip())
    >>> print(result.report())                      # doctest: +SKIP

``integrate()`` is a thin wrapper over the staged flow in
:mod:`repro.core.pipeline` — run partial flows, swap stages, or batch
many SOCs through :meth:`Steac.integrate_many`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.bist.march import MARCH_C_MINUS, MarchTest
from repro.core.batch import BatchResult, WorkItem, integrate_many
from repro.core.pipeline import FlowContext, Pipeline, default_stages
from repro.core.results import IntegrationResult
from repro.obs import TRACER, span, summarize
from repro.patterns.core_patterns import CorePatternSet
from repro.sched.ioalloc import SharingPolicy
from repro.sched.registry import resolve_schedule
from repro.sched.result import ScheduleResult
from repro.soc.soc import Soc

__all__ = ["IntegrationResult", "Steac", "SteacConfig"]


@dataclass
class SteacConfig:
    """Platform configuration.

    Attributes:
        march: March algorithm BRAINS embeds for the memories.
        policy: test-IO sharing policy for session scheduling.
        n_sessions: fixed session count (None = search).
        strategy: primary scheduling strategy, resolved by name through
            :mod:`repro.sched.registry` ("session", "nonsession",
            "serial", "ilp", or anything registered by a plugin).
        bist_power_headroom: reserve power for the heaviest logic test
            when grouping memories, so BIST groups can share sessions
            with core tests.  Off by default — this is an optimization
            *beyond* the paper (see the ablation benchmark); the paper's
            flow groups memories against the full chip budget.
        compare_strategies: also run the other schedulers for the report.
        compare_with: strategy names the comparison covers; None = the
            fast built-in trio (session, nonsession, serial).  Add
            "ilp" here to race the exact MILP too.
        analyze_repair: run the optional memory diagnosis & repair stage
            (:mod:`repro.repair`) after BRAINS — BISR area lands in the
            DFT report and a Monte-Carlo repair-rate estimate in the
            result's ``repair`` section.
        repair_trials: Monte-Carlo chips sampled by the repair stage.
        repair_seed: base seed of the repair stage's Monte-Carlo run.
        repair_allocator: allocation solver, resolved by name through
            :mod:`repro.repair.registry` ("greedy" or "exact", or
            anything registered by a plugin).
        verify_schedule: append the invariant-verification stage
            (:mod:`repro.verify`) to the flow — the report lands in
            ``IntegrationResult.verification`` (and the JSON document's
            ``verification`` section).
        verify_strict: escalate verification errors to
            :class:`repro.verify.InvariantViolationError` (batch runs
            then surface the chip as a failed item).
    """

    march: MarchTest = MARCH_C_MINUS
    policy: SharingPolicy = field(default_factory=SharingPolicy)
    n_sessions: Optional[int] = None
    strategy: str = "session"
    bist_power_headroom: bool = False
    compare_strategies: bool = True
    compare_with: Optional[tuple[str, ...]] = None
    analyze_repair: bool = False
    repair_trials: int = 200
    repair_seed: int = 7
    repair_allocator: str = "greedy"
    verify_schedule: bool = False
    verify_strict: bool = False


class Steac:
    """The SOC Test Aid Console."""

    def __init__(self, config: SteacConfig | None = None):
        self.config = config or SteacConfig()

    def context(
        self,
        soc: Soc,
        stil_texts: dict[str, str] | None = None,
        pattern_data: dict[str, CorePatternSet] | None = None,
    ) -> FlowContext:
        """A fresh :class:`FlowContext` for this platform's configuration
        — the entry point for staged / partial flows."""
        return FlowContext(
            soc=soc,
            config=self.config,
            stil_texts=dict(stil_texts or {}),
            pattern_data=dict(pattern_data or {}),
        )

    def integrate(
        self,
        soc: Soc,
        stil_texts: dict[str, str] | None = None,
        pattern_data: dict[str, CorePatternSet] | None = None,
        pipeline: Pipeline | None = None,
    ) -> IntegrationResult:
        """Run the full Fig.-1 flow on ``soc``.

        Args:
            soc: the chip model (never mutated; STIL input operates on a
                working copy).
            stil_texts: optional core-name → STIL text; parsed cores
                replace/extend the SOC's core list, and any vectors they
                carry are translated at the end.
            pattern_data: optional explicit core-name → patterns (e.g.
                straight from :mod:`repro.atpg`).
            pipeline: optional custom stage list; default is the five
                Fig.-1 stages from :func:`repro.core.pipeline.default_stages`
                (plus ``analyze_repair`` when the config enables it).
        """
        started = time.perf_counter()
        ctx = self.context(soc, stil_texts, pattern_data)
        if pipeline is None:
            pipeline = Pipeline(default_stages(
                repair=self.config.analyze_repair,
                verify=self.config.verify_schedule,
            ))
        sp = span("integrate", soc=soc.name, strategy=self.config.strategy)
        with sp:
            pipeline.run(ctx)
        result = IntegrationResult.from_context(
            ctx, runtime_seconds=time.perf_counter() - started
        )
        if sp.id is not None:
            # tracing was on: attach the compact span summary (the
            # ``trace`` section of the v4 result schema)
            result.trace = summarize(TRACER.records(), sp.id)
        return result

    def integrate_many(
        self,
        socs: Sequence[WorkItem],
        workers: Optional[int] = None,
        backend: str = "auto",
        progress=None,
    ) -> BatchResult:
        """Integrate many SOCs (live models or buildable specs)
        concurrently under this configuration.

        Results come back in input order with per-SOC error isolation;
        each worker (thread or process, per ``backend``) runs its own
        ``Steac`` built from this platform's config; see
        :func:`repro.core.batch.integrate_many` (including the
        ``progress`` live-counter hook).
        """
        return integrate_many(
            socs, config=self.config, workers=workers, backend=backend,
            progress=progress,
        )

    def _schedule(self, soc: Soc, tasks, strategy: str) -> ScheduleResult:
        """Resolve ``strategy`` by name and schedule (kept for callers of
        the pre-pipeline API)."""
        return resolve_schedule(
            strategy, soc, tasks, n_sessions=self.config.n_sessions,
            policy=self.config.policy,
        )
