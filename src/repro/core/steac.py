"""STEAC — the SOC Test Aid Console (paper Fig. 1).

The integration platform: STIL Parser → Core Test Scheduler → Test
Insertion (wrapper / TAM / test-controller generation into the netlist)
→ Pattern Translator, with BRAINS compiled in for the embedded memories
(Fig. 4).  One call does what the paper reports took "5 minutes" on a
Sun Blade 1000:

    >>> from repro.soc.dsc import build_dsc_chip
    >>> from repro.core import Steac
    >>> result = Steac().integrate(build_dsc_chip())
    >>> print(result.report())                      # doctest: +SKIP
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.bist.compiler import BistEngine, Brains, BrainsConfig
from repro.bist.march import MARCH_C_MINUS, MarchTest
from repro.controller.generator import make_test_controller
from repro.netlist import AreaReport, Module, Netlist, PortDir
from repro.patterns.ate import AteProgram
from repro.patterns.core_patterns import CorePatternSet
from repro.patterns.translate import (
    chip_level_program,
    translate_core_to_wrapper,
    wrapper_functional_program,
    wrapper_scan_program,
)
from repro.sched.ioalloc import SharingPolicy, io_sharing_report
from repro.sched.nonsession import schedule_nonsession
from repro.sched.rebalance import rebalance_report
from repro.sched.result import ScheduleResult
from repro.sched.session import InfeasibleScheduleError, schedule_serial, schedule_sessions
from repro.sched.tasks import tasks_from_soc
from repro.soc.soc import Soc
from repro.stil.semantics import core_from_stil
from repro.tam.bus import TamBus, build_tam
from repro.tam.mux import make_tam_mux
from repro.util import Table, format_cycles
from repro.wrapper.generator import GeneratedWrapper, generate_wrapper


@dataclass
class SteacConfig:
    """Platform configuration.

    Attributes:
        march: March algorithm BRAINS embeds for the memories.
        policy: test-IO sharing policy for session scheduling.
        n_sessions: fixed session count (None = search).
        strategy: primary scheduling strategy ("session", "nonsession",
            "serial").
        bist_power_headroom: reserve power for the heaviest logic test
            when grouping memories, so BIST groups can share sessions
            with core tests.  Off by default — this is an optimization
            *beyond* the paper (see the ablation benchmark); the paper's
            flow groups memories against the full chip budget.
        compare_strategies: also run the other schedulers for the report.
    """

    march: MarchTest = MARCH_C_MINUS
    policy: SharingPolicy = field(default_factory=SharingPolicy)
    n_sessions: Optional[int] = None
    strategy: str = "session"
    bist_power_headroom: bool = False
    compare_strategies: bool = True


@dataclass
class IntegrationResult:
    """Everything STEAC produces for one SOC."""

    soc: Soc
    schedule: ScheduleResult
    comparison: dict[str, Optional[int]]
    bist_engine: Optional[BistEngine]
    wrappers: dict[str, GeneratedWrapper]
    tam_bus: TamBus
    netlist: Netlist
    controller_module: Module
    tam_module: Module
    programs: dict[str, AteProgram] = field(default_factory=dict)
    runtime_seconds: float = 0.0

    @property
    def total_test_time(self) -> int:
        return self.schedule.total_time

    @property
    def dft_area_report(self) -> AreaReport:
        """Controller + TAM mux overhead (the paper's 0.3% figure); the
        wrapper cells are reported separately, as the paper does."""
        report = AreaReport(chip_gates=self.soc.total_gates)
        report.add_module("Test Controller", self.controller_module, self.netlist,
                          note="paper: ~371 gates")
        report.add_module("TAM multiplexer", self.tam_module, self.netlist,
                          note="paper: ~132 gates")
        return report

    @property
    def wrapper_area_total(self) -> float:
        return sum(w.area(self.netlist) for w in self.wrappers.values())

    def report(self) -> str:
        """The STEAC console report."""
        lines = [self.soc.describe(), ""]
        lines.append(self.schedule.render())
        lines.append("")
        if self.comparison:
            table = Table(["Strategy", "Total test time"], title="Scheduling comparison")
            for strategy, total in self.comparison.items():
                table.add_row(
                    [strategy, format_cycles(total) if total is not None else "infeasible"]
                )
            lines.append(table.render())
            lines.append("")
        if self.bist_engine is not None:
            lines.append(self.bist_engine.plan.render())
            lines.append("")
        lines.append(self.dft_area_report.render())
        lines.append(
            f"wrapper cells: {sum(w.wbc_count for w in self.wrappers.values())} WBCs, "
            f"{self.wrapper_area_total:.0f} gates (reported separately, as in the paper)"
        )
        lines.append("")
        lines.append(f"integration runtime: {self.runtime_seconds:.2f} s "
                     "(paper: 5 minutes on a Sun Blade 1000)")
        return "\n".join(lines)


class Steac:
    """The SOC Test Aid Console."""

    def __init__(self, config: SteacConfig | None = None):
        self.config = config or SteacConfig()

    def integrate(
        self,
        soc: Soc,
        stil_texts: dict[str, str] | None = None,
        pattern_data: dict[str, CorePatternSet] | None = None,
    ) -> IntegrationResult:
        """Run the full Fig.-1 flow on ``soc``.

        Args:
            soc: the chip model (cores may be replaced by STIL input).
            stil_texts: optional core-name → STIL text; parsed cores
                replace/extend the SOC's core list, and any vectors they
                carry are translated at the end.
            pattern_data: optional explicit core-name → patterns (e.g.
                straight from :mod:`repro.atpg`).
        """
        started = time.perf_counter()
        config = self.config
        pattern_data = dict(pattern_data or {})

        # -- 1. STIL parser ------------------------------------------------
        if stil_texts:
            for name, text in stil_texts.items():
                extracted = core_from_stil(text)
                replaced = False
                for i, core in enumerate(soc.cores):
                    if core.name == extracted.core.name:
                        soc.cores[i] = extracted.core
                        replaced = True
                        break
                if not replaced:
                    soc.add_core(extracted.core)
                if extracted.patterns.scan_vectors or extracted.patterns.functional_vectors:
                    pattern_data.setdefault(extracted.core.name, extracted.patterns)

        # -- 2. BRAINS (Fig. 4) ----------------------------------------------
        bist_engine: Optional[BistEngine] = None
        tasks = tasks_from_soc(soc)
        if soc.memories:
            bist_budget = soc.power_budget
            if config.bist_power_headroom and soc.power_budget > 0 and tasks:
                bist_budget = max(
                    1e-9, soc.power_budget - max(t.power for t in tasks)
                )
            bist_engine = Brains().compile(
                soc.memories,
                BrainsConfig(march=config.march, power_budget=bist_budget),
            )
            tasks = tasks + bist_engine.to_tasks()

        # -- 3. Core Test Scheduler ---------------------------------------------
        schedule = self._schedule(soc, tasks, config.strategy)
        comparison: dict[str, Optional[int]] = {}
        if config.compare_strategies:
            for strategy in ("session", "nonsession", "serial"):
                if strategy == config.strategy:
                    comparison[strategy] = schedule.total_time
                    continue
                try:
                    comparison[strategy] = self._schedule(soc, tasks, strategy).total_time
                except InfeasibleScheduleError:
                    comparison[strategy] = None

        # -- 4. Test insertion -------------------------------------------------------
        netlist = Netlist()
        widths: dict[str, int] = {}
        for session in schedule.sessions:
            for test in session.tests:
                if test.task.is_scan:
                    widths[test.task.core_name] = max(
                        widths.get(test.task.core_name, 1), test.width
                    )
        wrappers: dict[str, GeneratedWrapper] = {}
        for core in soc.wrapped_cores:
            wrappers[core.name] = generate_wrapper(
                core, netlist, width=widths.get(core.name, 1)
            )
        tam_bus = build_tam(schedule)
        tam_module = make_tam_mux(tam_bus)
        netlist.add(tam_module)
        controller_module = make_test_controller(schedule)
        netlist.add(controller_module)
        top = self._build_top(soc, netlist, wrappers, tam_bus, tam_module, controller_module)
        netlist.top_name = top.name

        # -- 5. Pattern translator --------------------------------------------------
        programs: dict[str, AteProgram] = {}
        for core_name, patterns in pattern_data.items():
            core = soc.core(core_name)
            wrapper = wrappers.get(core_name)
            if wrapper is None:
                continue
            if patterns.scan_vectors:
                wp = translate_core_to_wrapper(core, patterns, wrapper.plan)
                program = wrapper_scan_program(core, wp)
                task_name = next(
                    (f"{core_name}.{t.name}" for t in core.tests if t.kind.value == "scan"),
                    f"{core_name}.scan",
                )
                try:
                    slot = tam_bus.slot_for_task(task_name)
                    program = chip_level_program(program, slot)
                except KeyError:
                    pass
                programs[f"{core_name}.scan"] = program
            if patterns.functional_vectors:
                programs[f"{core_name}.func"] = wrapper_functional_program(core, patterns)

        elapsed = time.perf_counter() - started
        return IntegrationResult(
            soc=soc,
            schedule=schedule,
            comparison=comparison,
            bist_engine=bist_engine,
            wrappers=wrappers,
            tam_bus=tam_bus,
            netlist=netlist,
            controller_module=controller_module,
            tam_module=tam_module,
            programs=programs,
            runtime_seconds=elapsed,
        )

    def _schedule(self, soc: Soc, tasks, strategy: str) -> ScheduleResult:
        if strategy == "session":
            return schedule_sessions(
                soc, tasks, n_sessions=self.config.n_sessions, policy=self.config.policy
            )
        if strategy == "nonsession":
            return schedule_nonsession(soc, tasks)
        if strategy == "serial":
            return schedule_serial(soc, tasks, policy=self.config.policy)
        raise ValueError(f"unknown scheduling strategy {strategy!r}")

    def _build_top(
        self,
        soc: Soc,
        netlist: Netlist,
        wrappers: dict[str, GeneratedWrapper],
        tam_bus: TamBus,
        tam_module: Module,
        controller_module: Module,
    ) -> Module:
        """Stitch the DFT-inserted chip top: wrappers (cores inside),
        serial-chained WSI/WSO, TAM pins, controller hookup."""
        top = Module(f"{soc.name}_test_top")
        for pin in ("tck", "trstn", "tc_start", "tc_next", "tc_config_done",
                    "shiftwr", "capturewr", "updatewr", "wsi", "parallel_sel"):
            top.add_input(pin)
        top.add_output("wso")
        top.add_output("tc_done")
        for w in range(tam_bus.width):
            top.add_input(f"tam_in{w}")
            top.add_output(f"tam_out{w}")

        ctrl_conns = {
            "tck": "tck", "trstn": "trstn", "start": "tc_start",
            "next_session": "tc_next", "config_done": "tc_config_done",
            "shiftwr": "shiftwr", "capturewr": "capturewr", "updatewr": "updatewr",
            "selectwir": "n_selectwir", "shift_bcast": "n_shift",
            "capture_bcast": "n_capture", "update_bcast": "n_update",
            "done": "tc_done",
        }
        for port in controller_module.ports:
            if port.name.startswith("te_"):
                ctrl_conns[port.name] = f"n_{port.name}"
            elif port.name.startswith("session_sel"):
                ctrl_conns[port.name] = f"n_{port.name}"
        top.add_instance("u_ctrl", controller_module.name, **ctrl_conns)

        # shared control pins (the session-sharing IO model of E3):
        # one pin per clock domain, one shared SE, one shared reset;
        # TE/test signals come from the controller's te_<core> outputs
        top.add_input("se_shared")
        top.add_input("rst_shared")
        clock_pins: dict[str, str] = {}
        serial_prev = "wsi"
        mux_conns: dict[str, str] = {}
        for port in tam_module.ports:
            if port.name.startswith("sel"):
                bit = port.name[3:]
                mux_conns[port.name] = f"n_session_sel{bit}"
        from repro.soc.ports import SignalKind

        for i, (core_name, gen) in enumerate(sorted(wrappers.items())):
            wrapper = gen.module
            core = soc.core(core_name)
            port_kind = {p.name: p for p in core.ports}
            conns: dict[str, str] = {}
            for port in wrapper.ports:
                if port.name == "wsi":
                    conns[port.name] = serial_prev
                elif port.name == "wso":
                    conns[port.name] = f"n_wso_{core_name}"
                    serial_prev = f"n_wso_{core_name}"
                elif port.name == "wrck":
                    conns[port.name] = "tck"
                elif port.name == "selectwir":
                    conns[port.name] = "n_selectwir"
                elif port.name == "shiftwr":
                    conns[port.name] = "n_shift"
                elif port.name == "capturewr":
                    conns[port.name] = "n_capture"
                elif port.name == "updatewr":
                    conns[port.name] = "n_update"
                elif port.name == "parallel_sel":
                    conns[port.name] = "parallel_sel"
                elif port.name.startswith("wpi"):
                    local = int(port.name[3:])
                    wire = self._slot_wire(tam_bus, core_name, local)
                    conns[port.name] = f"tam_in{wire}" if wire is not None else f"n_nc_{core_name}_{port.name}"
                elif port.name.startswith("wpo"):
                    pin = f"{core_name}_{port.name}"
                    conns[port.name] = f"n_{pin}"
                else:
                    core_port = port_kind.get(port.name)
                    kind = core_port.kind if core_port is not None else None
                    if kind is SignalKind.CLOCK:
                        domain = core_port.clock_domain or port.name
                        if domain not in clock_pins:
                            clock_pins[domain] = top.add_input(f"tclk_{domain}")
                        conns[port.name] = clock_pins[domain]
                    elif kind is SignalKind.SCAN_ENABLE:
                        conns[port.name] = "se_shared"
                    elif kind is SignalKind.RESET:
                        conns[port.name] = "rst_shared"
                    elif kind in (SignalKind.TEST_ENABLE, SignalKind.TEST):
                        conns[port.name] = f"n_te_{core_name}"
                    else:
                        # functional IO: internal glue net (driven by the
                        # mission-mode interconnect, not modelled here)
                        conns[port.name] = f"glue_{core_name}_{port.name}"
            top.add_instance(f"u_wrap_{core_name}", wrapper.name, **conns)
        # TAM mux inputs: wrapper wpo nets (named by task in the mux)
        for port in tam_module.ports:
            if port.direction is PortDir.IN and not port.name.startswith("sel"):
                # e.g. "USB_usb_scan_wpo0" -> core USB, local wire 0
                core_name = port.name.split("_", 1)[0]
                local = port.name.rsplit("wpo", 1)[-1]
                mux_conns[port.name] = f"n_{core_name}_wpo{local}"
            elif port.name.startswith("tam_out"):
                mux_conns[port.name] = port.name
        top.add_instance("u_tam_mux", tam_module.name, **mux_conns)
        top.add_instance("u_wso_buf", "BUF", A=serial_prev, Y="wso")
        netlist.add(top)
        return top

    @staticmethod
    def _slot_wire(tam_bus: TamBus, core_name: str, local: int):
        for slot in tam_bus.slots:
            if slot.core_name == core_name and local < len(slot.wires):
                return slot.wires[local]
        return None
