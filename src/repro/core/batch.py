"""Batch integration: many SOCs through the platform at once.

The paper integrates one chip in "5 minutes"; a production platform
integrates design-space sweeps (pin budgets, power budgets, floorplans)
and whole chip families.  :func:`integrate_many` fans the Fig.-1 flow
out over a pluggable executor backend with

* **deterministic ordering** — results come back in input order no
  matter which worker finishes first,
* **per-SOC error isolation** — one infeasible or malformed chip yields
  a failed :class:`BatchItem`; the rest of the batch completes, and
* **per-worker platform instances** — every worker thread/process runs
  its own :class:`~repro.core.steac.Steac`, so a stage that keeps
  per-run state on ``self`` can never race across chips.

Backends (``backend=`` on :func:`integrate_many` / ``--backend`` on the
CLI):

``serial``
    A plain loop in the calling thread — the reference semantics.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  On GIL builds
    the speedup for this pure-Python flow is modest (free-threaded
    builds overlap fully).
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` with chunked
    submission — true multi-core execution.  This became possible once
    scan-task time models were made declarative and picklable
    (:class:`repro.sched.timecalc.ScanTimeModel` replaced the old
    closure-based ``time_fn``, which pinned this module to threads).
    Under ``auto``, a pool-machinery failure — an unpicklable work item
    or result, a crashed worker — transparently retries on the thread
    backend (identical deterministic results, no pickle boundary), so
    per-SOC isolation holds either way; an *explicit* ``process``
    request propagates such failures instead, keeping picklability
    regressions visible to CI smoke runs.
``auto``
    ``serial`` for single-worker or single-chip batches, ``process``
    otherwise.

Work items may be live :class:`~repro.soc.soc.Soc` objects **or**
cheap *specs* exposing ``build() -> Soc`` (e.g.
:class:`repro.gen.corpus.ScenarioSpec`, the ``(profile, seed, index)``
coordinates of a generated chip).  Specs are materialized inside the
worker, so a generated corpus ships a few integers per chip to each
process instead of a pickled SOC model.

Workers are *warm* across chips: a pool process lives for the whole
batch (``_init_process_worker`` builds its ``Steac`` once), so the
process-level scan-time-table cache
(:mod:`repro.sched.timecalc`, keyed by core structural digest) fills as
the worker's first chips integrate and serves every later chip whose
core structures recur — in corpus sweeps over one profile, nearly all
of them.  The cache needs no cross-process coordination: each worker
warms its own copy from the chips it happens to draw.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.core.results import BATCH_SCHEMA, IntegrationResult
from repro.obs import TRACER, span, tracing_enabled
from repro.soc.soc import Soc
from repro.util import Table, format_cycles

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.steac import Steac, SteacConfig

#: Executor backends ``integrate_many`` accepts.
BACKENDS = ("auto", "serial", "thread", "process")

#: Target chunks-per-worker for process submission: small enough to load
#: balance uneven chips, large enough to amortize pickling round-trips.
_CHUNKS_PER_WORKER = 4


@runtime_checkable
class SocSpec(Protocol):
    """Structural type for spec-based work items: anything with a
    ``build() -> Soc`` method (and ideally a cheap ``name``) can ride a
    batch; see :class:`repro.gen.corpus.ScenarioSpec`."""

    def build(self) -> Soc: ...  # pragma: no cover - protocol stub


#: One unit of batch work: a live chip model or a cheap buildable spec.
WorkItem = Union[Soc, SocSpec]


@dataclass
class BatchItem:
    """The outcome for one SOC of a batch: a result or an error string."""

    index: int
    soc_name: str
    result: Optional[IntegrationResult] = None
    error: Optional[str] = None
    #: Span records captured in a process-pool worker, shipped back for
    #: :meth:`repro.obs.Tracer.adopt`; transport-only — cleared on merge
    #: and never serialized into :meth:`to_dict`.
    spans: Optional[list] = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def verification_ok(self) -> Optional[bool]:
        """Invariant-check outcome: True/False when the flow ran with
        ``verify_schedule``, None when it did not (or the item failed)."""
        if self.result is None or self.result.verification is None:
            return None
        return self.result.verification.ok

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "soc_name": self.soc_name,
            "ok": self.ok,
            "error": self.error,
            "verification_ok": self.verification_ok,
            "result": self.result.to_dict() if self.result else None,
        }


@dataclass
class BatchResult:
    """All outcomes of one :func:`integrate_many` run, in input order."""

    items: list[BatchItem] = field(default_factory=list)
    workers: int = 1
    elapsed_seconds: float = 0.0
    backend: str = "serial"

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def ok(self) -> bool:
        """Everything requested succeeded: every item integrated AND,
        when invariant verification ran, every report is clean.  The
        JSON document's ``ok`` and the CLI exit code carry the same
        value; see :attr:`failures` / :attr:`verified_ok` for which
        half went wrong."""
        return all(item.ok for item in self.items) and self.verified_ok

    @property
    def results(self) -> list[IntegrationResult]:
        """Successful results only, still in input order."""
        return [item.result for item in self.items if item.result is not None]

    @property
    def failures(self) -> list[BatchItem]:
        return [item for item in self.items if not item.ok]

    @property
    def verified_ok(self) -> bool:
        """True when every completed item's invariant check (if run) is
        clean — the batch-level gate ``repro batch --verify`` exits on."""
        return all(item.verification_ok is not False for item in self.items)

    def to_dict(self) -> dict:
        return {
            "schema": BATCH_SCHEMA,
            "backend": self.backend,
            "workers": self.workers,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "ok": self.ok,
            "items": [item.to_dict() for item in self.items],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """One-line-per-SOC batch summary table."""
        verified = any(item.verification_ok is not None for item in self.items)
        columns = ["#", "SOC", "Status", "Total test time", "Sessions"]
        if verified:
            columns.append("Invariants")
        table = Table(
            columns,
            title=f"batch integration: {len(self.items)} SOCs, "
            f"{self.backend} backend, {self.workers} workers, "
            f"{self.elapsed_seconds:.2f} s",
        )
        for item in self.items:
            if item.result is not None:
                row = [
                    item.index,
                    item.soc_name,
                    "ok",
                    format_cycles(item.result.total_test_time),
                    item.result.schedule.session_count,
                ]
            else:
                row = [item.index, item.soc_name, f"FAILED: {item.error}", "-", "-"]
            if verified:
                status = item.verification_ok
                if status is None:
                    row.append("-")
                elif status:
                    row.append("clean")
                else:
                    row.append(f"{len(item.result.verification.errors)} violations")
            table.add_row(row)
        return table.render()


# -- worker plumbing ---------------------------------------------------------


def _integrate_item(
    steac: "Steac", index: int, item: WorkItem, span_parent: Optional[int] = None
) -> BatchItem:
    """Run one work item on one platform instance, isolating errors.

    When tracing is on, the item runs under a ``batch.item`` span
    carrying its batch position and — for spec work — the ``(profile,
    seed, index)`` generation coordinates; ``span_parent`` pins the
    batch-run span for worker threads, whose own span stacks are empty.
    """
    sp = span(
        "batch.item", parent=span_parent, index=index,
        profile=getattr(item, "profile", None), seed=getattr(item, "seed", None),
    )
    name = f"soc[{index}]"
    with sp:
        try:
            # inside the try: a malformed spec may raise from its own name
            # property (e.g. an unknown generator profile), and that must
            # fail this item, not the batch
            name = getattr(item, "name", None) or name
            if isinstance(item, Soc):
                soc = item
            else:
                build = getattr(item, "build", None)
                if not callable(build):
                    raise TypeError(
                        f"batch work item {item!r} is neither a Soc nor a spec "
                        "with a build() method"
                    )
                soc = build()
                name = getattr(soc, "name", name)
            out = BatchItem(index=index, soc_name=name, result=steac.integrate(soc))
        except Exception as exc:  # per-SOC isolation: record, don't raise
            out = BatchItem(
                index=index, soc_name=name, error=f"{type(exc).__name__}: {exc}"
            )
        if sp.id is not None:
            sp.set(soc=out.soc_name, ok=out.ok)
        return out


#: Per-process platform instance, created once by :func:`_init_process_worker`.
_PROCESS_STEAC: Optional["Steac"] = None


def _init_process_worker(config: "SteacConfig | None", trace: bool = False) -> None:
    """Process-pool initializer: one ``Steac`` per worker process.

    The worker also accumulates the process-level
    :mod:`repro.sched.timecalc` scan-time-table cache across every chip
    it integrates — deliberately never cleared between items, so
    recurring core structures in a corpus pay for their wrapper sweep
    once per worker lifetime, not once per chip.  ``trace=True``
    (mirrored from the parent's tracer state) turns tracing on in the
    worker so per-item spans exist to ship back."""
    global _PROCESS_STEAC
    from repro.core.steac import Steac

    if trace:
        from repro.obs import enable_tracing

        enable_tracing()
    _PROCESS_STEAC = Steac(config)


def _process_one(index: int, item: WorkItem) -> BatchItem:
    """Module-level (hence picklable) process-pool work function.

    With tracing on, the worker's spans for this item ride back on
    ``BatchItem.spans`` as plain record dicts (the worker runs items
    sequentially, so a post-item drain captures exactly this item's
    subtree); the parent re-homes them via ``Tracer.adopt``."""
    out = _integrate_item(_PROCESS_STEAC, index, item)
    if tracing_enabled():
        out.spans = TRACER.drain()
    return out


def _run_threads(
    items: list[WorkItem],
    config: "SteacConfig | None",
    workers: int,
    span_parent: Optional[int] = None,
    progress: Optional[Callable] = None,
) -> list[BatchItem]:
    """Thread backend: one lazily-constructed ``Steac`` per worker thread."""
    from repro.core.steac import Steac

    local = threading.local()

    def run(index: int, item: WorkItem) -> BatchItem:
        steac = getattr(local, "steac", None)
        if steac is None:
            steac = local.steac = Steac(config)
        return _integrate_item(steac, index, item, span_parent=span_parent)

    return map_backend(
        run, (range(len(items)), items), "thread", workers, progress=progress
    )


def auto_workers(n_items: int) -> int:
    """The default worker count for ``n_items`` units of work: one per
    item, capped at the CPU count, never below one.  Shared by
    :func:`integrate_many`, the fuzz sweep, and the serving layer's
    job-executor pool."""
    return max(1, min(n_items, os.cpu_count() or 1))


def resolve_backend(backend: str, workers: int, n_items: int) -> str:
    """Turn ``auto`` into a concrete backend name (and reject typos)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown batch backend {backend!r}; choose from {', '.join(BACKENDS)}"
        )
    if backend != "auto":
        return backend
    if workers <= 1 or n_items <= 1:
        return "serial"
    return "process"


def _drain(results: Iterable, progress: Optional[Callable]) -> list:
    """Collect mapped results, reporting each to ``progress`` as it
    lands.  ``executor.map`` yields in input order, so the callback
    sees head-of-line completion — later results may already be done —
    but the reported count is always monotone non-decreasing."""
    if progress is None:
        return list(results)
    out = []
    for result in results:
        progress(result)
        out.append(result)
    return out


def map_backend(
    fn: Callable,
    iterables: Sequence[Iterable],
    backend: str,
    workers: int = 1,
    chunksize: int = 1,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    progress: Optional[Callable] = None,
) -> list:
    """Order-preserving ``map(fn, *iterables)`` on a concrete backend.

    The one executor dispatch shared by :func:`integrate_many` and the
    CLI ``fuzz`` sweep — ``serial`` runs a plain loop, ``thread`` /
    ``process`` fan out over a pool (``executor.map`` preserves input
    order regardless of completion order).  For the process backend
    ``fn`` must be picklable (module-level), and ``initializer`` (when
    given) runs once per worker process; the other backends ignore it —
    their callers do per-worker setup in ``fn`` itself.  ``progress``
    (when given) is called with each result as it is collected — the
    hook live job progress (:class:`repro.obs.JobProgress`) hangs off.
    """
    if backend == "process":
        with _reap_on_interrupt(
            ProcessPoolExecutor(
                max_workers=workers, initializer=initializer, initargs=initargs
            )
        ) as pool:
            return _drain(pool.map(fn, *iterables, chunksize=chunksize), progress)
    if backend == "thread":
        with _reap_on_interrupt(ThreadPoolExecutor(max_workers=workers)) as pool:
            return _drain(pool.map(fn, *iterables), progress)
    if backend != "serial":
        raise ValueError(
            f"unresolved batch backend {backend!r}; run resolve_backend() first"
        )
    return _drain((fn(*args) for args in zip(*iterables)), progress)


@contextlib.contextmanager
def _reap_on_interrupt(pool):
    """Run ``pool`` as a context manager that stays responsive to Ctrl-C.

    A bare ``with executor:`` block calls ``shutdown(wait=True)`` on the
    way out, so a ``KeyboardInterrupt`` raised while draining results
    *blocks* until every already-queued work item finishes — on the
    process backend that can be minutes of orphan-looking workers after
    the user asked to stop.  Here an interrupt (or any error) cancels
    the queued-but-unstarted futures first, so the pool joins after at
    most the in-flight items."""
    try:
        yield pool
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        pool.shutdown(wait=True)


class ChunkRunner:
    """A persistent executor for chunked dispatch with barrier semantics.

    Long campaigns (:mod:`repro.gen.campaign`) process work in chunks
    and checkpoint at every chunk boundary; recreating a process pool
    per chunk would throw away warm workers (and their scan-time-table
    caches) hundreds of times per campaign.  A ``ChunkRunner`` owns one
    executor for its whole lifetime and exposes :meth:`map`, which is a
    **barrier**: it returns only when every item of the chunk is done,
    in input order — the caller can checkpoint the instant it returns
    and lose at most the next in-flight chunk to a crash.

    Use as a context manager; on an exception (including
    ``KeyboardInterrupt``) queued work is cancelled so pool workers are
    reaped promptly instead of draining the backlog.
    """

    def __init__(
        self,
        backend: str,
        workers: int = 1,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ):
        if backend not in ("serial", "thread", "process"):
            raise ValueError(
                f"unresolved chunk backend {backend!r}; run resolve_backend() first"
            )
        self.backend = backend
        self.workers = max(1, workers)
        self._pool = None
        if backend == "process":
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=initializer, initargs=initargs
            )
        elif backend == "thread":
            self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def map(
        self, fn: Callable, iterables: Sequence[Iterable], progress=None
    ) -> list:
        """Order-preserving ``map(fn, *iterables)`` over one chunk —
        blocks until the whole chunk is collected (the checkpoint
        barrier).  ``progress`` is called with each result as it lands,
        exactly like :func:`map_backend`."""
        if self._pool is None:
            return _drain((fn(*args) for args in zip(*iterables)), progress)
        return _drain(self._pool.map(fn, *iterables), progress)

    def shutdown(self, cancel: bool = False) -> None:
        """Join the pool (``cancel=True`` drops queued-but-unstarted
        work first — the interrupt path)."""
        if self._pool is not None:
            self._pool.shutdown(wait=not cancel, cancel_futures=cancel)

    def __enter__(self) -> "ChunkRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(cancel=exc_type is not None)


def integrate_many(
    socs: Sequence[WorkItem],
    config: "SteacConfig | None" = None,
    workers: Optional[int] = None,
    backend: str = "auto",
    progress=None,
) -> BatchResult:
    """Integrate every SOC in ``socs`` concurrently.

    Args:
        socs: the chips — live ``Soc`` models and/or buildable specs
            (see the module docstring); each runs the full default flow
            independently on its worker's own ``Steac``.
        config: shared platform configuration (each worker constructs
            its own ``Steac`` from it; the process backend requires it
            to be picklable, which the stock ``SteacConfig`` is).
        workers: worker count; default ``min(len(socs), cpu_count)``.
        backend: ``auto`` / ``serial`` / ``thread`` / ``process``
            (see :data:`BACKENDS`); ``auto`` picks ``serial`` for
            trivial batches and ``process`` otherwise.  On platforms
            whose multiprocessing start method is *spawn* (macOS,
            Windows), the process backend — like any use of
            ``multiprocessing`` — requires the calling script to guard
            its entry point with ``if __name__ == "__main__":``; pass
            ``backend="thread"`` to keep the old thread-pool behaviour.
        progress: optional :class:`repro.obs.JobProgress` (or anything
            with its ``start``/``advance`` shape) bumped once per
            finished chip — the serving layer passes the job's progress
            object here so ``GET /jobs/<id>`` shows live per-scenario
            counts while the batch runs.

    Returns:
        A :class:`BatchResult` whose items are in ``socs`` order; a SOC
        that raises during integration becomes a failed item and does
        not disturb its neighbours.
    """
    from repro.core.steac import Steac

    items = list(socs)
    if workers is None:
        workers = auto_workers(len(items))
    workers = max(1, workers)
    requested = backend
    backend = resolve_backend(backend, workers, len(items))

    started = time.perf_counter()
    note = None
    if progress is not None:
        progress.start(len(items))

        def note(item: BatchItem) -> None:
            progress.advance(failed=0 if item.ok else 1)

    bsp = span("batch.run", backend=backend, chips=len(items))
    with bsp:
        if not items:
            out: list[BatchItem] = []
        elif backend == "process":
            chunksize = max(1, len(items) // (workers * _CHUNKS_PER_WORKER))
            try:
                out = map_backend(
                    _process_one,
                    (range(len(items)), items),
                    backend,
                    workers,
                    chunksize=chunksize,
                    initializer=_init_process_worker,
                    initargs=(config, tracing_enabled()),
                    progress=note,
                )
            except Exception:
                # anything escaping pool.map is pool machinery, not
                # integration logic (per-item errors are already caught in
                # _integrate_item): an unpicklable item/result or a crashed
                # worker.  When the caller asked for "auto", retry on the
                # thread backend (no pickle boundary, same deterministic
                # results) to honour the per-SOC isolation promise; an
                # *explicit* process request propagates the failure, so CI
                # smoke runs can catch picklability regressions.
                if requested != "auto":
                    raise
                backend = "thread"
                out = _run_threads(
                    items, config, workers, span_parent=bsp.id, progress=note
                )
            else:
                # re-home worker-side span records under the batch span
                for item in out:
                    if item.spans:
                        TRACER.adopt(item.spans, parent=bsp.id)
                    item.spans = None
        elif backend == "thread":
            out = _run_threads(
                items, config, workers, span_parent=bsp.id, progress=note
            )
        else:  # serial: one shared Steac in the calling thread
            steac = Steac(config)
            out = map_backend(
                lambda i, item: _integrate_item(steac, i, item),
                (range(len(items)), items),
                backend,
                workers,
                progress=note,
            )
    return BatchResult(
        items=out,
        workers=workers,
        elapsed_seconds=time.perf_counter() - started,
        backend=backend,
    )
