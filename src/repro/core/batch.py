"""Batch integration: many SOCs through the platform at once.

The paper integrates one chip in "5 minutes"; a production platform
integrates design-space sweeps (pin budgets, power budgets, floorplans)
and whole chip families.  :func:`integrate_many` fans the Fig.-1 flow
out over a thread pool with

* **deterministic ordering** — results come back in input order no
  matter which worker finishes first, and
* **per-SOC error isolation** — one infeasible or malformed chip yields
  a failed :class:`BatchItem`; the rest of the batch completes.

Threads (not processes) because scan-task ``time_fn`` closures are not
picklable.  On GIL builds the speedup for this pure-Python flow is
modest (free-threaded builds overlap fully);
``benchmarks/bench_pipeline_batch.py`` records the measured number
either way.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.results import BATCH_SCHEMA, IntegrationResult
from repro.soc.soc import Soc
from repro.util import Table, format_cycles

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.steac import SteacConfig


@dataclass
class BatchItem:
    """The outcome for one SOC of a batch: a result or an error string."""

    index: int
    soc_name: str
    result: Optional[IntegrationResult] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    @property
    def verification_ok(self) -> Optional[bool]:
        """Invariant-check outcome: True/False when the flow ran with
        ``verify_schedule``, None when it did not (or the item failed)."""
        if self.result is None or self.result.verification is None:
            return None
        return self.result.verification.ok

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "soc_name": self.soc_name,
            "ok": self.ok,
            "error": self.error,
            "verification_ok": self.verification_ok,
            "result": self.result.to_dict() if self.result else None,
        }


@dataclass
class BatchResult:
    """All outcomes of one :func:`integrate_many` run, in input order."""

    items: list[BatchItem] = field(default_factory=list)
    workers: int = 1
    elapsed_seconds: float = 0.0

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def ok(self) -> bool:
        """Everything requested succeeded: every item integrated AND,
        when invariant verification ran, every report is clean.  The
        JSON document's ``ok`` and the CLI exit code carry the same
        value; see :attr:`failures` / :attr:`verified_ok` for which
        half went wrong."""
        return all(item.ok for item in self.items) and self.verified_ok

    @property
    def results(self) -> list[IntegrationResult]:
        """Successful results only, still in input order."""
        return [item.result for item in self.items if item.result is not None]

    @property
    def failures(self) -> list[BatchItem]:
        return [item for item in self.items if not item.ok]

    @property
    def verified_ok(self) -> bool:
        """True when every completed item's invariant check (if run) is
        clean — the batch-level gate ``repro batch --verify`` exits on."""
        return all(item.verification_ok is not False for item in self.items)

    def to_dict(self) -> dict:
        return {
            "schema": BATCH_SCHEMA,
            "workers": self.workers,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "ok": self.ok,
            "items": [item.to_dict() for item in self.items],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """One-line-per-SOC batch summary table."""
        verified = any(item.verification_ok is not None for item in self.items)
        columns = ["#", "SOC", "Status", "Total test time", "Sessions"]
        if verified:
            columns.append("Invariants")
        table = Table(
            columns,
            title=f"batch integration: {len(self.items)} SOCs, "
            f"{self.workers} workers, {self.elapsed_seconds:.2f} s",
        )
        for item in self.items:
            if item.result is not None:
                row = [
                    item.index,
                    item.soc_name,
                    "ok",
                    format_cycles(item.result.total_test_time),
                    item.result.schedule.session_count,
                ]
            else:
                row = [item.index, item.soc_name, f"FAILED: {item.error}", "-", "-"]
            if verified:
                status = item.verification_ok
                if status is None:
                    row.append("-")
                elif status:
                    row.append("clean")
                else:
                    row.append(f"{len(item.result.verification.errors)} violations")
            table.add_row(row)
        return table.render()


def integrate_many(
    socs: Sequence[Soc],
    config: "SteacConfig | None" = None,
    workers: Optional[int] = None,
) -> BatchResult:
    """Integrate every SOC in ``socs`` concurrently.

    Args:
        socs: the chips; each runs the full default flow independently.
        config: shared platform configuration (read-only across workers).
        workers: thread count; default ``min(len(socs), cpu_count)``.

    Returns:
        A :class:`BatchResult` whose items are in ``socs`` order; a SOC
        that raises during integration becomes a failed item and does
        not disturb its neighbours.
    """
    from repro.core.steac import Steac

    socs = list(socs)
    if workers is None:
        workers = min(len(socs), os.cpu_count() or 1) or 1
    workers = max(1, workers)
    steac = Steac(config)

    def one(pair: tuple[int, Soc]) -> BatchItem:
        index, soc = pair
        name = getattr(soc, "name", f"soc[{index}]")
        try:
            return BatchItem(index=index, soc_name=name, result=steac.integrate(soc))
        except Exception as exc:  # per-SOC isolation: record, don't raise
            return BatchItem(index=index, soc_name=name, error=f"{type(exc).__name__}: {exc}")

    started = time.perf_counter()
    if workers == 1:
        items = [one(pair) for pair in enumerate(socs)]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # executor.map preserves input order regardless of completion order
            items = list(pool.map(one, enumerate(socs)))
    return BatchResult(
        items=items, workers=workers, elapsed_seconds=time.perf_counter() - started
    )
