"""Integration results: the console report and machine-readable output.

:class:`IntegrationResult` is everything STEAC produces for one SOC.
Besides the paper-style console ``report()``, it serializes to a stable,
JSON-native dict (``to_dict()`` / ``to_json()``) so benchmark harnesses
and CI can consume integration outcomes without scraping ASCII tables —
the reproducibility posture argued by SAIBERSOC (Rosso et al., 2020) and
"Testing SOAR Tools in Use" (Bridges et al., 2022).

Schema (``schema`` = ``"repro/integration-result/v4"``; documented in
``ARCHITECTURE.md``; golden-file regression fixtures live in
``tests/golden/``)::

    soc            {name, cores, memories, test_pins, total_gates,
                    memory_bits, power_budget}
    schedule       {strategy, total_time, session_count, pin_budget, notes,
                    sessions: [{index, length, power, control_pins, data_pins,
                                tests: [{name, core, kind, width, start, finish}]}]}
    comparison     {strategy: total_time | null}
    bist           null | {march, memory_count, group_count, total_cycles,
                           area_gates}
    repair         null | {allocator, bisr_gates,
                           memories: [{name, geometry, rows, cols,
                                       spare_rows, spare_cols, bisr_gates}],
                           monte_carlo: {trials, seed, allocator, ...,
                                         raw_yield, repair_rate,
                                         effective_yield}}
    verification   null | {soc, strategy, ok, rules_checked,
                           violations: [{rule, subject, message, severity}]}
    wrappers       {core: {wbc_count, area_gates}}
    tam            {width, slots: [{session, core, task, wires}]}
    dft_area       {chip_gates, overhead_percent, items: [{name, gates}]}
    programs       {name: {cycles, pins}}
    trace          null | {name, count, seconds, children: [...]}
    runtime_seconds, stage_seconds

v2 added the nullable ``repair`` key (and a "BISR" line in
``dft_area.items`` when repair analysis ran) on top of v1; v3 adds the
nullable ``verification`` key (populated when the flow ran with
``SteacConfig.verify_schedule``); v4 adds the nullable ``trace`` key —
the compact span-summary tree from :func:`repro.obs.summarize`,
populated when :mod:`repro.obs` tracing was enabled during the flow.
Each version is a strict superset of the previous one, so consumers
that ignore unknown keys keep working.

All values are JSON types, so ``json.loads(r.to_json()) == r.to_dict()``
round-trips exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.bist.compiler import BistEngine
from repro.netlist import AreaReport, Module, Netlist
from repro.patterns.ate import AteProgram
from repro.sched.result import ScheduleResult
from repro.soc.soc import Soc
from repro.tam.bus import TamBus
from repro.util import Table, format_cycles
from repro.wrapper.generator import GeneratedWrapper

if TYPE_CHECKING:  # pragma: no cover
    from repro.repair.analysis import RepairAnalysis
    from repro.verify.report import VerificationReport

RESULT_SCHEMA = "repro/integration-result/v4"
# bumped alongside the item schema: batch documents embed v4 item
# results, and the serve cache keys on the schema string, so stale
# embedded documents can never be served from disk
BATCH_SCHEMA = "repro/batch-result/v4"


@dataclass
class IntegrationResult:
    """Everything STEAC produces for one SOC."""

    soc: Soc
    schedule: ScheduleResult
    comparison: dict[str, Optional[int]]
    bist_engine: Optional[BistEngine]
    wrappers: dict[str, GeneratedWrapper]
    tam_bus: TamBus
    netlist: Netlist
    controller_module: Module
    tam_module: Module
    programs: dict[str, AteProgram] = field(default_factory=dict)
    repair: Optional["RepairAnalysis"] = None
    verification: Optional["VerificationReport"] = None
    trace: Optional[dict] = None
    runtime_seconds: float = 0.0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_context(cls, ctx, runtime_seconds: float = 0.0) -> "IntegrationResult":
        """Assemble a result from a fully-run :class:`FlowContext`."""
        return cls(
            soc=ctx.soc,
            schedule=ctx.schedule,
            comparison=ctx.comparison,
            bist_engine=ctx.bist_engine,
            wrappers=ctx.wrappers,
            tam_bus=ctx.tam_bus,
            netlist=ctx.netlist,
            controller_module=ctx.controller_module,
            tam_module=ctx.tam_module,
            programs=ctx.programs,
            repair=ctx.repair,
            verification=ctx.verification,
            runtime_seconds=runtime_seconds,
            stage_seconds=dict(ctx.stage_seconds),
        )

    @property
    def total_test_time(self) -> int:
        return self.schedule.total_time

    @property
    def dft_area_report(self) -> AreaReport:
        """Controller + TAM mux overhead (the paper's 0.3% figure); the
        wrapper cells are reported separately, as the paper does."""
        report = AreaReport(chip_gates=self.soc.total_gates)
        report.add_module("Test Controller", self.controller_module, self.netlist,
                          note="paper: ~371 gates")
        report.add_module("TAM multiplexer", self.tam_module, self.netlist,
                          note="paper: ~132 gates")
        if self.repair is not None:
            report.add("BISR (fuses + comparators)", self.repair.bisr_gates_total,
                       note=f"{len(self.repair.memories)} memories")
        return report

    @property
    def wrapper_area_total(self) -> float:
        return sum(w.area(self.netlist) for w in self.wrappers.values())

    # -- machine-readable output ------------------------------------------

    def to_dict(self) -> dict:
        """The result as a JSON-native dict (schema in the module docstring)."""
        soc = self.soc
        area = self.dft_area_report
        return {
            "schema": RESULT_SCHEMA,
            "soc": {
                "name": soc.name,
                "cores": len(soc.cores),
                "memories": len(soc.memories),
                "test_pins": soc.test_pins,
                "total_gates": soc.total_gates,
                "memory_bits": soc.total_memory_bits,
                "power_budget": soc.power_budget,
            },
            "schedule": self.schedule.to_dict(),
            "comparison": dict(self.comparison),
            "bist": self.bist_engine.to_dict() if self.bist_engine else None,
            "repair": self.repair.to_dict() if self.repair else None,
            "verification": self.verification.to_dict() if self.verification else None,
            "wrappers": {
                name: {
                    "wbc_count": wrapper.wbc_count,
                    "area_gates": round(wrapper.area(self.netlist), 1),
                }
                for name, wrapper in sorted(self.wrappers.items())
            },
            "tam": {
                "width": self.tam_bus.width,
                "slots": [
                    {
                        "session": slot.session,
                        "core": slot.core_name,
                        "task": slot.task_name,
                        "wires": list(slot.wires),
                    }
                    for slot in self.tam_bus.slots
                ],
            },
            "dft_area": {
                "chip_gates": area.chip_gates,
                "overhead_percent": round(area.overhead_percent, 4),
                "items": [
                    {"name": item.name, "gates": round(item.gates, 1)}
                    for item in area.items
                ],
            },
            "programs": {
                name: program.to_dict() for name, program in sorted(self.programs.items())
            },
            "trace": self.trace,
            "runtime_seconds": round(self.runtime_seconds, 6),
            "stage_seconds": {k: round(v, 6) for k, v in self.stage_seconds.items()},
        }

    def to_json(self, indent: int | None = 2) -> str:
        """``to_dict()`` as JSON text; round-trips through ``json.loads``."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- console report ----------------------------------------------------

    def report(self) -> str:
        """The STEAC console report."""
        lines = [self.soc.describe(), ""]
        lines.append(self.schedule.render())
        lines.append("")
        if self.comparison:
            table = Table(["Strategy", "Total test time"], title="Scheduling comparison")
            for strategy, total in self.comparison.items():
                table.add_row(
                    [strategy, format_cycles(total) if total is not None else "infeasible"]
                )
            lines.append(table.render())
            lines.append("")
        if self.bist_engine is not None:
            lines.append(self.bist_engine.plan.render())
            lines.append("")
        if self.repair is not None:
            lines.append(self.repair.render())
            lines.append("")
        if self.verification is not None:
            lines.append(self.verification.render())
            lines.append("")
        lines.append(self.dft_area_report.render())
        lines.append(
            f"wrapper cells: {sum(w.wbc_count for w in self.wrappers.values())} WBCs, "
            f"{self.wrapper_area_total:.0f} gates (reported separately, as in the paper)"
        )
        lines.append("")
        lines.append(f"integration runtime: {self.runtime_seconds:.2f} s "
                     "(paper: 5 minutes on a Sun Blade 1000)")
        return "\n".join(lines)
