"""Lint-rule plugin registry: rules resolve by id.

Mirrors :mod:`repro.sched.registry` / :mod:`repro.repair.registry` —
built-in rule families register at import, and downstream code can
plug in its own rule without touching the engine:

    >>> from repro.analysis.registry import Rule, register_rule
    >>> @register_rule
    ... class NoPrintRule(Rule):
    ...     id = "MISC001"
    ...     severity = "warning"
    ...     description = "no print() in library code"
    ...     def check(self, ctx):
    ...         ...

A rule is one class per check: ``id`` (stable, referenced by
suppressions), ``severity``, an optional ``requires`` contract gate
(the engine only calls :meth:`Rule.check` on files whose
:func:`repro.analysis.contracts.contracts_for` set intersects it), and
a generator of :class:`~repro.analysis.findings.Finding` records.
:class:`ProjectRule` subclasses see the whole tree at once (cross-file
checks like schema fingerprints).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, TypeVar

from repro.analysis.findings import SEVERITIES, Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext


class Rule:
    """One static check, applied per file.

    Attributes:
        id: stable identifier (``DET002``) used in reports and
            ``# detlint: ignore[...]`` suppressions.
        severity: ``error`` (fails ``repro lint``) or ``warning``.
        requires: contract names gating the rule — the engine runs it
            only on files carrying at least one of them; ``None`` runs
            it on every file.
        description: one-line summary for ``repro lint --rules``.
    """

    id: str = ""
    severity: str = "error"
    requires: Optional[frozenset[str]] = None
    description: str = ""

    def check(self, ctx: "FileContext") -> Iterable[Finding]:
        """Yield findings for one file (default: none)."""
        return ()

    def finding(
        self,
        ctx: "FileContext",
        line: int,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        """A :class:`Finding` of this rule at ``ctx``'s path."""
        return Finding(
            path=ctx.relpath,
            line=line,
            rule=self.id,
            severity=self.severity,
            message=message,
            hint=hint,
        )


class ProjectRule(Rule):
    """A rule that needs the whole tree at once (cross-file state)."""

    #: Set per-run by the engine: rewrite committed state (the schema
    #: fingerprint file) from the tree instead of diffing against it.
    update_fingerprints: bool = False

    def check_project(
        self, ctxs: "list[FileContext]", root: str
    ) -> Iterable[Finding]:
        """Yield findings across ``ctxs`` (default: none)."""
        return ()


_REGISTRY: dict[str, Rule] = {}

_R = TypeVar("_R", bound="type[Rule]")


def register_rule(cls: _R) -> _R:
    """Class decorator: instantiate and register the rule by its id.

    Re-registering an id replaces the previous entry (last one wins),
    so tests and plugins can shadow a built-in.
    """
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule.id} severity {rule.severity!r} not in {SEVERITIES}"
        )
    _REGISTRY[rule.id] = rule
    return cls


def get_rule(rule_id: str) -> Rule:
    """Look up a rule by id.

    Raises:
        ValueError: unknown id (message lists what is available).
    """
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ValueError(
            f"unknown lint rule {rule_id!r}; "
            f"available: {', '.join(available_rules())}"
        ) from None


def available_rules() -> list[str]:
    """Registered rule ids, sorted."""
    _load_builtin_rules()
    return sorted(_REGISTRY)


def all_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _load_builtin_rules() -> None:
    """Import the built-in rule families (registration side effect)."""
    from repro.analysis import rules  # noqa: F401  — import registers
