"""The declarative path → contract map: which guarantees bind where.

A *contract* is a named guarantee a module opts into; rules declare
which contract they enforce and the engine only runs them on files
whose path carries it.  The map is ordered longest-prefix-first, so a
specific file entry (``repro/sched/registry.py``) can extend the
contracts of its package (``repro/sched/``).

Contracts:

``determinism``
    Result-affecting code: equal inputs must produce bit-identical
    outputs, across processes and platform restarts.  Bans unseeded
    RNG, salted ``hash()`` seeding, and set-iteration ordering leaks
    (the DET family).

``no-wallclock``
    No ``time.time()`` / ``datetime.now()`` / ``uuid4()``: either the
    module is result-affecting (a wall-clock read breaks bit-identity)
    or it serves cached/traced documents whose *durations* must come
    from the monotonic clock.  Deliberate display-only wall timestamps
    carry a targeted ``# detlint: ignore[DET002] -- reason``.

``pickle``
    Everything defined here may be shipped across the process pool
    (work specs, schedule results, registry entries, span records), so
    classes must be module-level and attribute defaults lambda-free
    (the PKL family).

The CONC and SCHEMA families are structural, not path-scoped: any
class that owns a ``threading.Lock`` promises lock discipline, and any
module that writes a ``"repro/.../vN"`` schema string promises version
bumps — wherever they live.
"""

from __future__ import annotations

DETERMINISM = "determinism"
NO_WALLCLOCK = "no-wallclock"
PICKLE = "pickle"

#: All known contract names (documentation + validation).
ALL_CONTRACTS: frozenset[str] = frozenset({DETERMINISM, NO_WALLCLOCK, PICKLE})

_RESULT_AFFECTING: frozenset[str] = frozenset({DETERMINISM, NO_WALLCLOCK})

#: Ordered (prefix, contracts) pairs; the *union* of every matching
#: entry applies, so a file entry refines its package entry.  Paths are
#: POSIX-style, relative to the repository ``src/`` root.
CONTRACT_MAP: tuple[tuple[str, frozenset[str]], ...] = (
    # -- result-affecting compute: everything feeding a result document
    ("repro/atpg/", _RESULT_AFFECTING),
    ("repro/bist/", _RESULT_AFFECTING),
    ("repro/controller/", _RESULT_AFFECTING),
    ("repro/core/", _RESULT_AFFECTING),
    ("repro/gen/", _RESULT_AFFECTING),
    ("repro/netlist/", _RESULT_AFFECTING),
    ("repro/patterns/", _RESULT_AFFECTING),
    ("repro/repair/", _RESULT_AFFECTING),
    ("repro/sched/", _RESULT_AFFECTING),
    ("repro/soc/", _RESULT_AFFECTING),
    ("repro/stil/", _RESULT_AFFECTING),
    ("repro/tam/", _RESULT_AFFECTING),
    ("repro/verify/", _RESULT_AFFECTING),
    ("repro/wrapper/", _RESULT_AFFECTING),
    # -- serving/observability: results are cached byte-for-byte and
    #    durations must be monotonic, so wall-clock reads are banned
    #    (display-twin fields carry targeted suppressions) — but these
    #    layers may legitimately read entropy (job ids, sampling)
    ("repro/serve/", frozenset({NO_WALLCLOCK})),
    ("repro/obs/", frozenset({NO_WALLCLOCK})),
    # -- shipped across the process pool / registered in registries
    ("repro/core/batch.py", frozenset({PICKLE})),
    ("repro/gen/corpus.py", frozenset({PICKLE})),
    ("repro/gen/profiles.py", frozenset({PICKLE})),
    ("repro/repair/allocate.py", frozenset({PICKLE})),
    ("repro/repair/registry.py", frozenset({PICKLE})),
    ("repro/sched/registry.py", frozenset({PICKLE})),
    ("repro/sched/result.py", frozenset({PICKLE})),
    ("repro/sched/timecalc.py", frozenset({PICKLE})),
    # repro/util, repro/analysis, repro/__main__ carry no path-scoped
    # contracts: display/tooling code (CONC/PKL-registration/SCHEMA
    # still apply structurally).
)


def normalize_relpath(relpath: str) -> str:
    """A lint path → the ``repro/...``-rooted form the map keys use."""
    path = relpath.replace("\\", "/").lstrip("./")
    for marker in ("src/repro/", "repro/"):
        index = path.find(marker)
        if index >= 0:
            return path[index:].removeprefix("src/")
    return path


def contracts_for(relpath: str) -> frozenset[str]:
    """The union of every contract whose prefix matches ``relpath``."""
    path = normalize_relpath(relpath)
    out: set[str] = set()
    for prefix, contracts in CONTRACT_MAP:
        if path.startswith(prefix) or path == prefix.rstrip("/"):
            out |= contracts
    return frozenset(out)
