"""The detlint engine: walk files, run rules, honour suppressions.

One :class:`FileContext` per source file carries the parsed AST, a
parent map (rules navigate upward: enclosing function, class, ``with``
block), the file's contracts, and its inline suppressions.  The engine
runs every per-file rule whose contract gate matches, then the
project-wide rules (cross-file checks), then audits the suppressions
themselves:

* ``# detlint: ignore[RULE]`` on the offending line silences that rule
  there — but only with an inline reason (``-- why``); a reasonless
  suppression is itself an error (``SUP002``).
* A suppression no finding needed is an unused suppression (``SUP001``)
  so stale ignores are flushed out as the code they excused improves.

The result is a :class:`LintReport` — findings plus counts — rendered
by :mod:`repro.analysis.report` as text or JSON.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.contracts import contracts_for, normalize_relpath
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, Rule, all_rules

#: grammar: "detlint: ignore" + bracketed rule list + optional "-- reason"
_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*ignore\[(?P<rules>[A-Z0-9_,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)

SUP_UNUSED = "SUP001"
SUP_NO_REASON = "SUP002"


@dataclass
class Suppression:
    """One inline ``# detlint: ignore[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: Optional[str]
    used: bool = False


class FileContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, relpath: str, source: str, root: Optional[str] = None):
        self.relpath = normalize_relpath(relpath)
        self.given_path = relpath
        self.root = root
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self.contracts = contracts_for(self.relpath)
        self.suppressions = _parse_suppressions(source)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- navigation --------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """``node``'s parents, innermost first, up to the module."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The innermost function/lambda containing ``node``, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        """The innermost class containing ``node``, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def qualname(self, node: ast.AST) -> str:
        """Dotted path of a def/class node: ``Outer.method``."""
        parts: list[str] = []
        current: Optional[ast.AST] = node
        while current is not None and not isinstance(current, ast.Module):
            name = getattr(current, "name", None)
            if name is not None:
                parts.append(str(name))
            current = self._parents.get(current)
        return ".".join(reversed(parts))

    def is_docstring(self, node: ast.Constant) -> bool:
        """Whether ``node`` is a module/class/function docstring."""
        parent = self._parents.get(node)
        if not isinstance(parent, ast.Expr):
            return False
        grand = self._parents.get(parent)
        if not isinstance(
            grand, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return False
        body: list[ast.stmt] = grand.body
        return bool(body) and body[0] is parent


def _parse_suppressions(source: str) -> dict[int, Suppression]:
    """Suppressions from real COMMENT tokens only — the tokenizer keeps
    mentions of the syntax inside docstrings/strings from counting."""
    out: dict[int, Suppression] = {}
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        number = token.start[0]
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        out[number] = Suppression(
            line=number, rules=rules, reason=match.group("reason")
        )
    return out


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    fingerprints_updated: bool = False

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """Clean = no error-severity findings (warnings are advisory)."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def iter_python_files(paths: Sequence[str]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    out: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            out.add(path)
        elif path.is_dir():
            out.update(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            raise FileNotFoundError(f"lint path does not exist: {entry}")
    return sorted(out)


def _selected_rules(rule_ids: Optional[Sequence[str]]) -> list[Rule]:
    if rule_ids is None:
        return all_rules()
    from repro.analysis.registry import get_rule

    return [get_rule(rule_id) for rule_id in rule_ids]


def _check_file(ctx: FileContext, rules: Sequence[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if rule.requires is not None and not (rule.requires & ctx.contracts):
            continue
        findings.extend(rule.check(ctx))
    return findings


def _apply_suppressions(
    ctxs: Sequence[FileContext], findings: Iterable[Finding]
) -> tuple[list[Finding], int]:
    """Filter suppressed findings and mark their suppressions used."""
    by_path = {ctx.relpath: ctx for ctx in ctxs}
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        ctx = by_path.get(finding.path)
        suppression = ctx.suppressions.get(finding.line) if ctx else None
        if suppression is not None and finding.rule in suppression.rules:
            suppression.used = True
            suppressed += 1
            continue
        kept.append(finding)
    return kept, suppressed


def _audit_suppressions(ctxs: Sequence[FileContext]) -> list[Finding]:
    """SUP001 for unused suppressions, SUP002 for reasonless ones."""
    findings: list[Finding] = []
    for ctx in ctxs:
        for suppression in ctx.suppressions.values():
            if suppression.reason is None:
                findings.append(Finding(
                    path=ctx.relpath,
                    line=suppression.line,
                    rule=SUP_NO_REASON,
                    severity="error",
                    message=(
                        "suppression has no reason — every detlint ignore "
                        "must explain itself"
                    ),
                    hint="write `# detlint: ignore[RULE] -- why this is safe`",
                ))
            if not suppression.used:
                findings.append(Finding(
                    path=ctx.relpath,
                    line=suppression.line,
                    rule=SUP_UNUSED,
                    severity="error",
                    message=(
                        "unused suppression for "
                        f"{', '.join(suppression.rules)}: no finding fires here"
                    ),
                    hint="delete the stale `# detlint: ignore[...]` comment",
                ))
    return findings


def lint_contexts(
    ctxs: Sequence[FileContext],
    root: str = ".",
    rules: Optional[Sequence[str]] = None,
    update_fingerprints: bool = False,
) -> LintReport:
    """Run the rule set over already-built contexts (the core loop)."""
    selected = _selected_rules(rules)
    findings: list[Finding] = []
    for ctx in ctxs:
        findings.extend(_check_file(ctx, selected))
    for rule in selected:
        if isinstance(rule, ProjectRule):
            rule.update_fingerprints = update_fingerprints
            findings.extend(rule.check_project(list(ctxs), root))
    kept, suppressed = _apply_suppressions(ctxs, findings)
    kept.extend(_audit_suppressions(ctxs))
    kept.sort()
    return LintReport(
        findings=kept,
        files=len(ctxs),
        suppressed=suppressed,
        fingerprints_updated=update_fingerprints,
    )


def lint_paths(
    paths: Sequence[str],
    root: str = ".",
    rules: Optional[Sequence[str]] = None,
    update_fingerprints: bool = False,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``.

    Args:
        paths: files and/or directories to walk.
        root: repository root — cross-file rules resolve committed
            state (the schema fingerprint file) relative to it.
        rules: rule ids to run (default: every registered rule).
        update_fingerprints: rewrite the committed schema-fingerprint
            file from the tree instead of diffing against it.
    """
    files = iter_python_files(paths)
    ctxs: list[FileContext] = []
    findings: list[Finding] = []
    for path in files:
        source = path.read_text()
        try:
            ctxs.append(FileContext(str(path), source, root=root))
        except SyntaxError as exc:
            findings.append(Finding(
                path=normalize_relpath(str(path)),
                line=exc.lineno or 1,
                rule="PARSE",
                severity="error",
                message=f"file does not parse: {exc.msg}",
            ))
    report = lint_contexts(
        ctxs, root=root, rules=rules, update_fingerprints=update_fingerprints
    )
    report.findings = sorted(findings + report.findings)
    return report


def lint_source(
    source: str,
    relpath: str = "repro/example.py",
    rules: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint one in-memory source blob (the unit-test front end).

    Runs per-file rules plus suppression auditing; project rules (which
    need committed state) are exercised directly in their tests.
    """
    ctx = FileContext(relpath, source)
    selected = [
        rule for rule in _selected_rules(rules) if not isinstance(rule, ProjectRule)
    ]
    findings = _check_file(ctx, selected)
    kept, _ = _apply_suppressions([ctx], findings)
    kept.extend(_audit_suppressions([ctx]))
    return sorted(kept)
