"""Reporters: the lint report as human text or a versioned JSON document."""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport

LINT_SCHEMA = "repro/lint-report/v1"


def render_human(report: LintReport) -> str:
    """One finding per line, worst-first, with a trailing summary."""
    lines = [finding.format() for finding in report.findings]
    verdict = "clean" if report.ok else f"{len(report.errors)} error(s)"
    if report.warnings:
        verdict += f", {len(report.warnings)} warning(s)"
    lines.append(
        f"detlint: {report.files} file(s), {verdict}"
        + (f", {report.suppressed} suppressed" if report.suppressed else "")
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The ``repro/lint-report/v1`` document (sorted keys, 2-space)."""
    doc = {
        "schema": LINT_SCHEMA,
        "ok": report.ok,
        "files": report.files,
        "error_count": len(report.errors),
        "warning_count": len(report.warnings),
        "suppressed": report.suppressed,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
