"""Structured lint findings: what fired, where, how bad, how to fix.

A :class:`Finding` is one rule hit pinned to a ``path:line``.  Findings
are frozen (hashable, dedupable) and JSON-native via :meth:`to_dict`,
so the human and JSON reporters render the same records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Finding severities, worst first.  ``error`` findings fail the build
#: (``repro lint`` exits 1); ``warning`` findings are advisory.
SEVERITIES: tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    severity: str
    message: str
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"finding severity {self.severity!r} not in {SEVERITIES}"
            )

    def to_dict(self) -> dict[str, object]:
        """The JSON-report row for this finding."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    def format(self) -> str:
        """The one-line human rendering: ``path:line: error[RULE] msg``."""
        text = f"{self.path}:{self.line}: {self.severity}[{self.rule}] {self.message}"
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text
