"""SCHEMA — wire-schema version discipline via committed fingerprints.

Every document the platform emits carries a ``"schema":
"repro/<name>/v<N>"`` tag, and downstream consumers (the serve cache,
golden fixtures, external scrapers) treat equal tags as equal shapes.
The discipline is: *change the shape → bump the version*.  Nothing
enforced that until now.

The mechanism: for every schema id in the tree, detlint fingerprints
the *shape-producing code* — each function or method whose body
references the id (directly or through the module constant bound to
it), normalized (docstrings stripped, no line numbers) and hashed.
The expected fingerprints live in a committed file,
:data:`FINGERPRINT_FILE`, regenerated with ``repro lint
--update-fingerprints``:

* ``SCH001`` (error) — a schema id's fingerprint differs from the
  committed one: the shape code changed under a frozen version tag.
  Either bump the version (new id) or — if the change is genuinely
  shape-preserving — regenerate the fingerprint file; the diff makes
  the judgement reviewable.
* ``SCH002`` (error) — a schema id in the tree has no committed
  fingerprint (new schema, or a bumped version): regenerate to record
  it.
* ``SCH003`` (warning) — a committed id no longer appears in the tree
  (retired schema): regenerate to prune it.

Docstring mentions of schema ids are ignored — only ids reachable by
running code count.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from pathlib import Path
from typing import Iterable, Optional

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register_rule

#: The committed schema-id → fingerprint map, relative to the repo root.
FINGERPRINT_FILE = "src/repro/analysis/schema_fingerprints.json"

SCHEMA_ID_RE = re.compile(r"^repro/[A-Za-z0-9_.-]+/v\d+$")


class _StripDocstrings(ast.NodeTransformer):
    """Remove docstring statements so prose edits don't shift shapes."""

    def _strip(self, node: ast.AST) -> ast.AST:
        self.generic_visit(node)
        body = getattr(node, "body", None)
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body.pop(0)
            if not body:
                body.append(ast.Pass())
        return node

    visit_FunctionDef = _strip
    visit_AsyncFunctionDef = _strip
    visit_ClassDef = _strip
    visit_Module = _strip


def _normalized_dump(node: ast.AST) -> str:
    import copy

    stripped = _StripDocstrings().visit(copy.deepcopy(node))
    return ast.dump(stripped, annotate_fields=False)


def _module_constants(ctx: FileContext) -> dict[str, str]:
    """Module-level ``NAME = "repro/x/vN"`` bindings."""
    out: dict[str, str] = {}
    for stmt in ctx.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
            and SCHEMA_ID_RE.match(stmt.value.value)
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = stmt.value.value
    return out


def _schema_refs(ctx: FileContext) -> dict[str, list[tuple[str, ast.AST, int]]]:
    """schema id → [(qualname, shape node, line)] for this file.

    The *shape node* is the enclosing function of each live reference —
    or the module-level assignment itself when the id only exists as a
    constant binding.
    """
    constants = _module_constants(ctx)
    refs: dict[str, list[tuple[str, ast.AST, int]]] = {}

    def add(schema_id: str, node: ast.AST, line: int) -> None:
        fn = ctx.enclosing_function(node)
        if fn is None:
            # module-level reference: fingerprint the statement itself
            stmt: Optional[ast.AST] = node
            for anc in ctx.ancestors(node):
                if isinstance(anc, ast.Module):
                    break
                stmt = anc
            shape: ast.AST = stmt if stmt is not None else node
            name = f"<module>:{line}"
        else:
            shape = fn
            name = ctx.qualname(fn)
        entries = refs.setdefault(schema_id, [])
        if not any(existing is shape for _, existing, _ in entries):
            entries.append((name, shape, line))

    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and SCHEMA_ID_RE.match(node.value)
            and not ctx.is_docstring(node)
        ):
            add(node.value, node, node.lineno)
        elif (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in constants
        ):
            add(constants[node.id], node, node.lineno)
    return refs


def compute_fingerprints(
    ctxs: Iterable[FileContext],
) -> tuple[dict[str, dict[str, object]], dict[str, tuple[str, int]]]:
    """The tree's schema fingerprints.

    Returns ``(fingerprints, locations)``: per schema id a ``{"paths",
    "fingerprint"}`` record, and the first ``(relpath, line)`` where the
    id appears (for finding placement).
    """
    shapes: dict[str, list[tuple[str, str, str]]] = {}
    locations: dict[str, tuple[str, int]] = {}
    for ctx in ctxs:
        for schema_id, entries in _schema_refs(ctx).items():
            rows = shapes.setdefault(schema_id, [])
            for name, node, line in entries:
                rows.append((ctx.relpath, name, _normalized_dump(node)))
                at = locations.get(schema_id)
                if at is None or (ctx.relpath, line) < at:
                    locations[schema_id] = (ctx.relpath, line)
    out: dict[str, dict[str, object]] = {}
    for schema_id, rows in shapes.items():
        rows.sort()
        digest = hashlib.sha256(
            "\n".join(f"{path}:{name}:{dump}" for path, name, dump in rows)
            .encode()
        ).hexdigest()
        out[schema_id] = {
            "paths": sorted({path for path, _, _ in rows}),
            "fingerprint": digest,
        }
    return out, locations


def load_fingerprints(root: str) -> Optional[dict[str, dict[str, object]]]:
    path = Path(root) / FINGERPRINT_FILE
    if not path.is_file():
        return None
    data = json.loads(path.read_text())
    entries = data.get("schemas", {})
    return entries if isinstance(entries, dict) else {}


def write_fingerprints(
    root: str, fingerprints: dict[str, dict[str, object]]
) -> None:
    path = Path(root) / FINGERPRINT_FILE
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "comment": (
            "detlint SCHEMA fingerprints — regenerate with "
            "`repro lint --update-fingerprints` after a deliberate, "
            "shape-preserving change or a version bump"
        ),
        "schemas": fingerprints,
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@register_rule
class SchemaFingerprintRule(ProjectRule):
    id = "SCH001"
    severity = "error"
    description = (
        "a repro/<name>/vN schema's shape code changed without a "
        "version bump (committed fingerprint mismatch)"
    )

    def check_project(
        self, ctxs: list[FileContext], root: str
    ) -> Iterable[Finding]:
        current, locations = compute_fingerprints(ctxs)
        if self.update_fingerprints:
            write_fingerprints(root, current)
            return
        committed = load_fingerprints(root)
        if committed is None:
            # no baseline at all: demand one, once, at the tree root
            if current:
                yield Finding(
                    path=FINGERPRINT_FILE, line=1, rule="SCH002",
                    severity="error",
                    message=(
                        f"no committed schema fingerprints but "
                        f"{len(current)} schema id(s) in the tree"
                    ),
                    hint="run `repro lint --update-fingerprints` and commit",
                )
            return
        for schema_id in sorted(current):
            path, line = locations[schema_id]
            entry = committed.get(schema_id)
            if entry is None:
                yield Finding(
                    path=path, line=line, rule="SCH002", severity="error",
                    message=(
                        f"schema {schema_id!r} has no committed fingerprint "
                        "(new schema or version bump)"
                    ),
                    hint="run `repro lint --update-fingerprints` and commit",
                )
            elif entry.get("fingerprint") != current[schema_id]["fingerprint"]:
                yield Finding(
                    path=path, line=line, rule="SCH001", severity="error",
                    message=(
                        f"shape code behind schema {schema_id!r} changed but "
                        "the version tag did not"
                    ),
                    hint=(
                        "bump the /vN suffix (then --update-fingerprints), "
                        "or — only if the document shape is truly unchanged — "
                        "regenerate the fingerprint file"
                    ),
                )
        for schema_id in sorted(set(committed) - set(current)):
            yield Finding(
                path=FINGERPRINT_FILE, line=1, rule="SCH003",
                severity="warning",
                message=(
                    f"committed fingerprint for {schema_id!r} matches no "
                    "schema id in the tree (retired?)"
                ),
                hint="run `repro lint --update-fingerprints` to prune it",
            )
