"""Built-in detlint rule families — importing this package registers
them all (the registry's lazy ``_load_builtin_rules`` hook)."""

from repro.analysis.rules import conc, det, pkl, schema  # noqa: F401
