"""PKL — static picklability rules.

The process-pool backend (:mod:`repro.core.batch`) ships work specs,
schedule results, and registry-resolved callables across process
boundaries; a lambda, closure, or local class anywhere in that cargo
raises ``PicklingError`` only at runtime, on the one code path CI's
serial runs never exercise.  Statically:

* ``PKL001`` (everywhere) — registering a ``lambda`` in any
  ``register_*`` call or decorating a *nested* function into a
  registry: registry entries must be module-level names so workers
  can re-import them.
* ``PKL002`` (pickle-contract files) — a ``lambda`` stored in a class
  body (attribute default, ``field(default=lambda...)``): instances
  carrying it never pickle.
* ``PKL003`` (pickle-contract files) — a class defined inside a
  function: its instances are unpicklable (pickle resolves classes by
  qualified module path).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.contracts import PICKLE
from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule


def _register_call_name(node: ast.Call) -> Optional[str]:
    """The callee name if this is a ``register_*(...)`` call."""
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Call):
        # decorator factories: register_scheduler("x")(fn)
        return _register_call_name(func)
    else:
        return None
    return name if name.startswith("register") else None


@register_rule
class LambdaRegistrationRule(Rule):
    id = "PKL001"
    severity = "error"
    requires = None  # registries can be populated from anywhere
    description = (
        "no lambdas or nested functions registered in a registry — "
        "workers must re-import entries by qualified name"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _register_call_name(node)
                if name is None:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Lambda):
                        yield self.finding(
                            ctx, arg.lineno,
                            f"{name}(...) registers a lambda — unpicklable "
                            "across the process pool",
                            hint="register a module-level function instead",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if ctx.enclosing_function(node) is None:
                    continue
                for decorator in node.decorator_list:
                    dec_call = (
                        decorator if isinstance(decorator, ast.Call) else None
                    )
                    dec_name: Optional[str] = None
                    if dec_call is not None:
                        dec_name = _register_call_name(dec_call)
                    elif isinstance(decorator, ast.Name) and decorator.id.startswith(
                        "register"
                    ):
                        dec_name = decorator.id
                    if dec_name is not None:
                        yield self.finding(
                            ctx, node.lineno,
                            f"@{dec_name} on nested function "
                            f"{node.name!r} — a closure cannot be re-imported "
                            "by a pool worker",
                            hint="move the registered function to module level",
                        )


@register_rule
class ClassBodyLambdaRule(Rule):
    id = "PKL002"
    severity = "error"
    requires = frozenset({PICKLE})
    description = (
        "no lambda stored in a picklable class body (attribute or "
        "dataclass field default)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Lambda):
                continue
            cls = ctx.enclosing_class(node)
            if cls is None:
                continue
            # only class-body statements (defaults), not method bodies
            if ctx.enclosing_function(node) is not None:
                continue
            yield self.finding(
                ctx, node.lineno,
                f"lambda in the body of class {cls.name!r} rides every "
                "pickled instance and cannot serialize",
                hint="use a module-level function or default_factory helper",
            )


@register_rule
class LocalClassRule(Rule):
    id = "PKL003"
    severity = "error"
    requires = frozenset({PICKLE})
    description = (
        "no class defined inside a function in pickle-contract modules — "
        "instances resolve by qualified module path"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if ctx.enclosing_function(node) is not None:
                yield self.finding(
                    ctx, node.lineno,
                    f"class {node.name!r} is local to a function; its "
                    "instances cannot cross the process pool",
                    hint="define the class at module level",
                )
