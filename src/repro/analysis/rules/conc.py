"""CONC — lock-discipline inference for multithreaded classes.

The serve layer mutates shared state from two thread populations at
once: ``JobManager`` worker threads (job transitions, eviction) and
HTTP handler threads (submit, poll, ``/stats``).  The convention the
code promises is *attribute-access-under-lock*: any instance attribute
a class writes while holding its ``threading.Lock`` is part of the
lock's protected set, and every other touch of that attribute must
also hold the lock.

``CONC001`` infers that discipline per class, in the same shape as a
lock-discipline race detector:

1. A class owns a lock if ``__init__`` assigns ``self.X =
   threading.Lock()`` (or ``RLock`` / ``Condition``).
2. The *protected set* is every ``self.attr`` assigned (plain, augmented,
   subscript/attr-target, or ``del``) inside a ``with self.X:`` block in
   any non-``__init__`` method.
3. A read or write of a protected attribute outside every ``with
   self.X:`` block is a finding — except in ``__init__`` (no other
   thread can hold a reference yet) and in methods named ``*_locked``
   (the documented called-with-lock-held convention, e.g.
   ``JobManager._evict_locked``).

The rule is deliberately write-seeded: attributes only ever *read*
under the lock (or never touched under it) are not claimed, keeping
immutable-after-init config fields out of scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})


def _lock_attrs(cls: ast.ClassDef) -> frozenset[str]:
    """Attributes ``__init__`` binds to a ``threading.Lock()``-like."""
    out: set[str] = set()
    for stmt in cls.body:
        if not (isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            factory: Optional[str] = None
            if isinstance(value, ast.Call):
                func = value.func
                if isinstance(func, ast.Name):
                    factory = func.id
                elif isinstance(func, ast.Attribute):
                    factory = func.attr
            if factory not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out.add(target.attr)
    return frozenset(out)


@dataclass(frozen=True)
class _Access:
    """One ``self.attr`` touch inside a method."""

    attr: str
    line: int
    write: bool
    under_lock: bool
    method: str


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assign_target_attr(node: ast.AST) -> Optional[str]:
    """``self.attr`` written through a subscript/attribute target:
    ``self.jobs[k] = v`` and ``del self.jobs[k]`` mutate ``self.jobs``."""
    if isinstance(node, ast.Subscript):
        return _is_self_attr(node.value)
    return _is_self_attr(node)


def _holds_lock(with_node: ast.With, locks: frozenset[str]) -> bool:
    for item in with_node.items:
        attr = _is_self_attr(item.context_expr)
        if attr in locks:
            return True
    return False


def _collect(
    node: ast.AST,
    locks: frozenset[str],
    method: str,
    under_lock: bool,
    out: list[_Access],
) -> None:
    """Walk one method body tracking the with-lock nesting."""
    if isinstance(node, ast.With) and _holds_lock(node, locks):
        under_lock = True
    # mutation targets first (the Attribute itself has Load ctx when the
    # store goes through a subscript)
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
        targets = (
            node.targets if isinstance(node, ast.Assign)
            else [node.target] if isinstance(node, ast.AugAssign)
            else node.targets
        )
        for target in targets:
            attr = _assign_target_attr(target)
            if attr is not None:
                out.append(_Access(attr, target.lineno, True, under_lock, method))
    if isinstance(node, ast.Attribute):
        attr = _is_self_attr(node)
        if attr is not None:
            out.append(_Access(
                attr, node.lineno,
                not isinstance(node.ctx, ast.Load), under_lock, method,
            ))
    # do not descend into nested defs/classes: their bodies run later,
    # on whichever thread calls them, with their own discipline
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        _collect(child, locks, method, under_lock, out)


@register_rule
class LockDisciplineRule(Rule):
    id = "CONC001"
    severity = "error"
    requires = None  # any class owning a lock promises discipline
    description = (
        "attributes written under `with self._lock` must always be "
        "touched under it (outside __init__ / *_locked helpers)"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _lock_attrs(cls)
            if not locks:
                continue
            accesses: list[_Access] = []
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                for body_stmt in stmt.body:
                    _collect(body_stmt, locks, stmt.name, False, accesses)
            protected = {
                access.attr
                for access in accesses
                if access.write and access.under_lock
                and access.method != "__init__"
            } - locks
            if not protected:
                continue
            seen: set[tuple[str, int]] = set()
            for access in accesses:
                if access.attr not in protected or access.under_lock:
                    continue
                if access.method == "__init__" or access.method.endswith("_locked"):
                    continue
                key = (access.attr, access.line)
                if key in seen:
                    continue
                seen.add(key)
                kind = "written" if access.write else "read"
                yield self.finding(
                    ctx, access.line,
                    f"{cls.name}.{access.attr} is lock-protected (written "
                    f"under `with self.{sorted(locks)[0]}`) but {kind} here "
                    "without the lock",
                    hint=(
                        "wrap the access in the lock, or move it into a "
                        "*_locked helper documented as called with the lock "
                        "held"
                    ),
                )
