"""DET — determinism rules for result-affecting code.

The platform's core promise is bit-identity: the same chip, budgets,
and strategy must produce the same schedule, the same JSON document,
the same campaign report — across runs, processes, and machines.  Four
statically-checkable ways to break that promise:

* ``DET001`` — unseeded randomness: the module-level ``random.*``
  functions (one shared, time-seeded global state) or a bare
  ``random.Random()``.  Every RNG in a result path must be
  ``random.Random(seed)`` with a caller-supplied seed.
* ``DET002`` — wall-clock reads (``time.time()``, ``datetime.now()``,
  ``uuid.uuid1/4()``): values that differ per run leak into results or
  corrupt durations; use ``time.monotonic()`` / ``perf_counter()`` for
  timing and keep wall timestamps display-only (suppressed, with a
  reason).
* ``DET003`` — iterating a set (literal, ``set()`` call, or set
  comprehension) without ``sorted()``: set order is salted per process,
  so anything ordered downstream inherits nondeterminism.
* ``DET004`` — ``hash()`` / ``.__hash__()`` of compound data: string
  hashing is salted per process (PYTHONHASHSEED), so seeding an RNG or
  keying a result on it diverges across process-pool workers.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.contracts import DETERMINISM, NO_WALLCLOCK
from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

#: ``random.<fn>`` module-level functions sharing the global RNG.
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "betavariate", "expovariate", "gauss",
    "normalvariate", "lognormvariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "randbytes", "seed",
})

_WALLCLOCK_CALLS: dict[tuple[str, str], str] = {
    ("time", "time"): "time.time()",
    ("time", "time_ns"): "time.time_ns()",
    ("datetime", "now"): "datetime.now()",
    ("datetime", "utcnow"): "datetime.utcnow()",
    ("datetime", "today"): "datetime.today()",
    ("date", "today"): "date.today()",
    ("uuid", "uuid1"): "uuid.uuid1()",
    ("uuid", "uuid4"): "uuid.uuid4()",
}


def _call_target(node: ast.Call) -> Optional[tuple[str, str]]:
    """``module.attr`` of a call like ``time.time()``, if that shape."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    # datetime.datetime.now() — collapse the dotted module prefix
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and isinstance(func.value.value, ast.Name)
    ):
        return (func.value.attr, func.attr)
    return None


@register_rule
class UnseededRandomRule(Rule):
    id = "DET001"
    severity = "error"
    requires = frozenset({DETERMINISM})
    description = (
        "no unseeded RNG in result-affecting code: module-level random.* "
        "or bare random.Random()"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node)
            if target is not None and target[0] == "random":
                if target[1] in _GLOBAL_RNG_FNS:
                    yield self.finding(
                        ctx, node.lineno,
                        f"module-level random.{target[1]}() uses the shared "
                        "time-seeded global RNG",
                        hint="use random.Random(seed) with a caller-supplied seed",
                    )
                    continue
                if target[1] == "Random" and not node.args:
                    yield self.finding(
                        ctx, node.lineno,
                        "random.Random() without a seed is seeded from the OS",
                        hint="pass an explicit deterministic seed",
                    )
                    continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ("Random", "SystemRandom")
                and not node.args
            ):
                yield self.finding(
                    ctx, node.lineno,
                    f"{node.func.id}() without a seed is nondeterministic",
                    hint="pass an explicit deterministic seed",
                )


@register_rule
class WallClockRule(Rule):
    id = "DET002"
    severity = "error"
    requires = frozenset({NO_WALLCLOCK})
    description = (
        "no wall-clock reads (time.time / datetime.now / uuid4) where "
        "results or durations must be reproducible"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = _call_target(node)
                name = _WALLCLOCK_CALLS.get(target) if target else None
                if name is not None:
                    yield self.finding(
                        ctx, node.lineno,
                        f"{name} reads the wall clock",
                        hint=(
                            "time with time.monotonic()/perf_counter(); keep "
                            "wall timestamps display-only behind a suppression"
                        ),
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        yield self.finding(
                            ctx, node.lineno,
                            f"`from time import {alias.name}` pulls the wall "
                            "clock into a no-wallclock module",
                            hint="import the module and call monotonic clocks",
                        )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register_rule
class SetIterationRule(Rule):
    id = "DET003"
    severity = "error"
    requires = frozenset({DETERMINISM})
    description = (
        "no iteration over a set feeding ordered output without sorted()"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            iter_expr: Optional[ast.AST] = None
            if isinstance(node, ast.For):
                iter_expr = node.iter
            elif isinstance(node, ast.comprehension):
                iter_expr = node.iter
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                # list({...}) / tuple({...}) materialize salted order
                if node.func.id in ("list", "tuple") and node.args:
                    iter_expr = node.args[0]
            if iter_expr is not None and _is_set_expr(iter_expr):
                line = getattr(iter_expr, "lineno", getattr(node, "lineno", 1))
                yield self.finding(
                    ctx, line,
                    "iterating a set in salted (per-process) order",
                    hint="wrap the set in sorted() before ordered consumption",
                )


@register_rule
class SaltedHashRule(Rule):
    id = "DET004"
    severity = "error"
    requires = frozenset({DETERMINISM})
    description = (
        "no hash()/__hash__ of compound data in result paths — string "
        "hashing is salted per process"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "hash":
                yield self.finding(
                    ctx, node.lineno,
                    "hash() is salted per process for str/bytes inputs",
                    hint=(
                        "derive keys/seeds from hashlib or from the values "
                        "themselves (e.g. repr)"
                    ),
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "__hash__"
            ):
                yield self.finding(
                    ctx, node.lineno,
                    ".__hash__() is salted per process for str/bytes inputs",
                    hint=(
                        "derive keys/seeds from hashlib or from the values "
                        "themselves (e.g. repr)"
                    ),
                )
