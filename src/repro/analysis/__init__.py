"""``repro.analysis`` — detlint, the determinism & concurrency linter.

Every guarantee the platform sells — bit-identical incremental-vs-
reference schedules, cached serve results returned byte-for-byte,
RNG-free campaign checkpoints that resume to identical reports — is a
*determinism contract*.  Differential fuzzing catches contract breaks
dynamically and probabilistically; this package catches them at commit
time, statically and deterministically, with a stdlib-``ast`` rule
engine:

* **DET** — no unseeded RNG, no wall-clock reads, no salted-hash
  seeding, no set-iteration ordering leaks in result-affecting paths
  (:mod:`repro.analysis.rules.det`);
* **PKL** — registry entries and everything shipped across the process
  pool must be statically picklable (:mod:`repro.analysis.rules.pkl`);
* **CONC** — fields a class protects with a ``threading.Lock`` must
  only be touched while holding it (:mod:`repro.analysis.rules.conc`);
* **SCHEMA** — a ``"repro/<name>/v<N>"`` wire schema must bump its
  version when the shape-producing code changes, enforced against the
  committed :data:`~repro.analysis.rules.schema.FINGERPRINT_FILE`
  (:mod:`repro.analysis.rules.schema`).

Which rules apply where is declarative: the path → contract map in
:mod:`repro.analysis.contracts`.  False positives are silenced inline —
``# detlint: ignore[RULE] -- reason`` — and the engine errors on
suppressions that are unused or missing their reason, so the
suppression inventory can never rot.

Front ends: ``repro lint`` (exit 1 on errors, 0 clean; ``--json`` for
the machine-readable ``repro/lint-report/v1`` document) and
:func:`lint_paths` / :func:`lint_source` for tests and tooling.
"""

from repro.analysis.contracts import (
    CONTRACT_MAP,
    DETERMINISM,
    NO_WALLCLOCK,
    PICKLE,
    contracts_for,
)
from repro.analysis.engine import FileContext, LintReport, lint_paths, lint_source
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    ProjectRule,
    Rule,
    available_rules,
    get_rule,
    register_rule,
)
from repro.analysis.report import LINT_SCHEMA, render_human, render_json

__all__ = [
    "CONTRACT_MAP",
    "DETERMINISM",
    "NO_WALLCLOCK",
    "PICKLE",
    "contracts_for",
    "FileContext",
    "LintReport",
    "lint_paths",
    "lint_source",
    "Finding",
    "ProjectRule",
    "Rule",
    "available_rules",
    "get_rule",
    "register_rule",
    "LINT_SCHEMA",
    "render_human",
    "render_json",
]
