"""Live per-scenario progress for long-running jobs.

A :class:`JobProgress` is the shared mutable counter a batch or fuzz
execution increments as scenarios finish and a poller (``GET
/jobs/<id>`` on the serve layer) snapshots while the job runs.  The
contract the serve tests pin:

* ``done`` is monotone non-decreasing and never exceeds ``total``;
* :meth:`snapshot` is internally consistent (taken under the same lock
  every :meth:`advance` holds — no torn reads);
* the object is cheap enough to bump once per scenario, not per move.
"""

from __future__ import annotations

import threading
from typing import Optional


class JobProgress:
    """Thread-safe scenarios-done/total (+ violations/failures) counter."""

    __slots__ = ("_lock", "_total", "_done", "_violations", "_failed")

    def __init__(self, total: Optional[int] = None):
        self._lock = threading.Lock()
        self._total = total
        self._done = 0
        self._violations = 0
        self._failed = 0

    def start(self, total: int) -> None:
        """Declare the scenario count (idempotent; keeps the max so a
        late re-declare can never make ``done > total``)."""
        with self._lock:
            if self._total is None or total > self._total:
                self._total = total

    def advance(self, n: int = 1, violations: int = 0, failed: int = 0) -> None:
        """Record ``n`` finished scenarios (with any violations found
        and failures among them)."""
        with self._lock:
            self._done += n
            self._violations += violations
            self._failed += failed

    def resume(self, done: int, violations: int = 0, failed: int = 0) -> None:
        """Credit work completed by a *previous* process — the campaign
        resume path (:mod:`repro.gen.campaign`): ``total`` stays the
        whole campaign's scenario count while ``done`` (and the violation
        / failure tallies) continue from the checkpoint instead of
        restarting at zero, so totals grow monotonically across resumes."""
        self.advance(done, violations=violations, failed=failed)

    @property
    def done(self) -> int:
        with self._lock:
            return self._done

    def snapshot(self) -> dict[str, Optional[int]]:
        """A consistent JSON-native view — the ``progress`` section of
        the serve job document."""
        with self._lock:
            return {
                "total": self._total,
                "done": self._done,
                "violations": self._violations,
                "failed": self._failed,
            }
