"""Process-local tracing: nestable spans over the integration flow.

A span is one timed region of the flow — a pipeline stage, a scheduler
search, one chip of a batch — opened with :func:`span` as a context
manager::

    with span("sched.session_search", soc="d695", tasks=21) as sp:
        ...
        sp.set(makespan=41232)

Spans nest through a per-thread stack, so a span opened inside another
becomes its child without explicit wiring.  When the tracer is
*disabled* (the default) :func:`span` returns a shared singleton no-op
object — no allocation, no clock reads, no lock — so instrumented hot
paths cost one truthiness check (``bench_sched_search.py`` gates the
end-to-end overhead at <2%).

Records are plain dicts (``{"id", "parent", "name", "start", "wall",
"dur", "attrs"}``) — picklable and JSON-native by construction — so
batch process workers can ship their spans back to the parent
(:meth:`Tracer.drain` in the worker, :meth:`Tracer.adopt` in the
parent, which remaps ids and re-parents worker roots under the batch
span).  ``start`` is :func:`time.monotonic` — never steps backwards,
and on Linux the clock is shared machine-wide, so worker spans still
order correctly against parent spans.  ``dur`` comes from
:func:`time.perf_counter` deltas.  ``wall`` is a display-only wall
timestamp (when did this run happen?) — nothing orders or diffs by it.

Two consumers read the records:

* :meth:`Tracer.export_jsonl` writes one record per line (the CLI's
  ``--trace-out``); :func:`load_jsonl` + :func:`span_tree` replay the
  file into a nested tree.
* :func:`summarize` folds a subtree into a compact aggregate (children
  grouped by name, counts and summed seconds) — the ``trace`` section
  of the v4 integration-result schema.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import IO, Any, Optional, Union


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    id: Optional[int] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Span:
    """One live timed region; becomes a record dict when it closes."""

    __slots__ = (
        "_tracer", "name", "attrs", "id", "parent", "_start", "_wall", "_t0",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, Any],
        parent: Optional[int] = None,
    ):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.id: Optional[int] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack()
        if self.parent is None and stack:
            self.parent = stack[-1]
        self.id = next(tracer._ids)
        stack.append(self.id)
        self._start = time.monotonic()
        self._wall = time.time()  # detlint: ignore[DET002] -- display-only run timestamp; ordering uses the monotonic `start`
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        dur = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] == self.id:
            stack.pop()
        elif self.id is not None:  # pragma: no cover — unbalanced exit
            try:
                stack.remove(self.id)
            except ValueError:
                pass
        self._tracer._append({
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start": self._start,
            "wall": self._wall,
            "dur": dur,
            "attrs": self.attrs,
        })
        return False


class Tracer:
    """A process-local span recorder.

    Disabled by default: :meth:`span` then returns the singleton no-op
    span.  Enabling is process-wide for this tracer; the per-thread
    span stack keeps concurrent threads' spans correctly parented.
    """

    def __init__(self) -> None:
        self._enabled = False
        self._records: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- state -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        """Drop every recorded span (the enabled flag is untouched)."""
        with self._lock:
            self._records.clear()

    def _stack(self) -> list[int]:
        stack: Optional[list[int]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def current_span_id(self) -> Optional[int]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span creation -----------------------------------------------------

    def span(
        self, name: str, parent: Optional[int] = None, **attrs: Any
    ) -> Union[Span, _NullSpan]:
        """A new child span (no-op while disabled).

        ``parent`` pins the parent id explicitly — cross-thread callers
        (batch worker threads) use this; same-thread callers inherit
        the innermost open span from the stack.
        """
        if not self._enabled:
            return _NULL_SPAN
        return Span(self, name, attrs, parent=parent)

    # -- record access -----------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """A snapshot copy of every closed span, in completion order."""
        with self._lock:
            return list(self._records)

    def drain(self) -> list[dict[str, Any]]:
        """Remove and return every closed span (worker-side shipping)."""
        with self._lock:
            records, self._records = self._records, []
        return records

    def adopt(
        self, records: list[dict[str, Any]], parent: Optional[int] = None
    ) -> None:
        """Merge records from another process into this tracer.

        Worker-assigned ids collide with local ones, so every record
        gets a fresh id; roots (and records whose parent is not in the
        shipped set) are re-parented under ``parent``.
        """
        if not records:
            return
        with self._lock:
            mapping = {r["id"]: next(self._ids) for r in records}
            for r in records:
                merged = dict(r)
                merged["id"] = mapping[r["id"]]
                merged["parent"] = mapping.get(r["parent"], parent)
                self._records.append(merged)

    def export_jsonl(self, path_or_file: Union[str, IO[str]]) -> int:
        """Write every record as one JSON object per line; returns the
        record count."""
        records = self.records()
        if hasattr(path_or_file, "write"):
            for record in records:
                path_or_file.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            with open(path_or_file, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


#: The process-wide tracer every instrumented module shares.
TRACER = Tracer()


def span(name: str, parent: Optional[int] = None, **attrs: Any) -> Union[Span, _NullSpan]:
    """A span on the global :data:`TRACER` (no-op while disabled)."""
    return TRACER.span(name, parent=parent, **attrs)


def tracing_enabled() -> bool:
    """Whether the global tracer is recording (hot-path guard)."""
    return TRACER._enabled


def enable_tracing() -> None:
    TRACER.enable()


def disable_tracing() -> None:
    TRACER.disable()


# -- replay / aggregation ----------------------------------------------------


def load_jsonl(path_or_file: Union[str, IO[str]]) -> list[dict[str, Any]]:
    """Read records back from a ``--trace-out`` JSONL file."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file) as handle:
            lines = handle.read().splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def span_tree(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Replay flat records into a nested tree.

    Returns the root spans (parent absent from the record set), oldest
    first, each with a ``children`` list in start order.  Every node is
    a copy — the input records are untouched.
    """
    nodes: dict[int, dict[str, Any]] = {
        r["id"]: {**r, "children": []} for r in records
    }
    roots: list[dict[str, Any]] = []
    for record in sorted(records, key=lambda r: r["start"]):
        node = nodes[record["id"]]
        parent = nodes.get(record["parent"])
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def subtree(
    records: list[dict[str, Any]], root_id: int
) -> list[dict[str, Any]]:
    """The records reachable from ``root_id`` (inclusive)."""
    children: dict[Optional[int], list[dict[str, Any]]] = {}
    for record in records:
        children.setdefault(record["parent"], []).append(record)
    out: list[dict[str, Any]] = []
    frontier = [r for r in records if r["id"] == root_id]
    while frontier:
        record = frontier.pop()
        out.append(record)
        frontier.extend(children.get(record["id"], []))
    return out


def summarize(
    records: list[dict[str, Any]], root_id: int
) -> Optional[dict[str, Any]]:
    """Fold the subtree under ``root_id`` into a compact aggregate.

    Children are grouped by span name at every level: a batch of 100
    chips summarizes to one ``batch.item`` node with ``count: 100``
    and the summed seconds, not 100 siblings.  This is the ``trace``
    section of the v4 integration-result schema::

        {"name": ..., "count": n, "seconds": s, "children": [...]}
    """
    by_id = {r["id"]: r for r in records}
    if root_id not in by_id:
        return None
    kids: dict[Optional[int], list[dict[str, Any]]] = {}
    for record in records:
        kids.setdefault(record["parent"], []).append(record)

    def fold(group: list[dict[str, Any]]) -> dict[str, Any]:
        node: dict[str, Any] = {
            "name": group[0]["name"],
            "count": len(group),
            "seconds": round(sum(r["dur"] for r in group), 6),
        }
        children = [c for r in group for c in kids.get(r["id"], [])]
        if children:
            grouped: dict[str, list[dict[str, Any]]] = {}
            for child in sorted(children, key=lambda c: c["start"]):
                grouped.setdefault(child["name"], []).append(child)
            node["children"] = [fold(g) for g in grouped.values()]
        return node

    return fold([by_id[root_id]])
