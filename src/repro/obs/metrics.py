"""A process-global metrics registry: counters, gauges, histograms.

One namespace unifies the platform's scattered stats dicts — dotted
internal names (``cache.scan_time.hits``, ``sched.moves.pruned``,
``serve.jobs.evicted``) registered once at module import by the
subsystem that owns them::

    _MOVES = METRICS.counter("sched.moves.evaluated", "moves tried")
    ...
    _MOVES.inc(n)          # hot paths batch locally, flush once per run

Two read paths:

* :meth:`MetricsRegistry.render_prometheus` emits the Prometheus text
  exposition format (``GET /metrics`` on the serve layer, ``repro
  metrics`` on the CLI).  Dots are not legal in Prometheus metric
  names, so ``cache.scan_time.hits`` renders as
  ``repro_cache_scan_time_hits``.
* :meth:`MetricsRegistry.value` / :meth:`snapshot` give tests and
  in-process consumers the raw numbers.

Pull-model *collectors* bridge pre-existing stats sources that keep
their own counters (the scan-time-table cache registers one below);
callers can also pass per-render ``extra`` samples for server-scoped
state (the serve layer's job table and result cache).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional, TypeVar, Union

#: Histogram bucket upper bounds (seconds) — wide enough for a
#: millisecond pipeline stage and a minutes-long fuzz job alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: One pulled/extra sample: ``(name, kind, labels-or-None, value)``.
Sample = tuple[str, str, Optional[dict[str, str]], float]

#: A sorted, hashable label set: ``(("backend", "process"), ...)``.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing value, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: dict[LabelKey, float] = {}

    def inc(self, n: float = 1, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + n

    def get(self, **labels: str) -> float:
        with self._lock:
            return self._samples.get(_label_key(labels), 0)

    def samples(self) -> dict[LabelKey, float]:
        with self._lock:
            return dict(self._samples)

    def _reset(self) -> None:
        with self._lock:
            self._samples = {key: 0 for key in self._samples}


class Gauge(Counter):
    """A value that can go up and down (``set`` replaces)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        # label key -> [per-bucket counts..., +Inf count, sum]
        self._samples: dict[LabelKey, list[float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            row = self._samples.get(key)
            if row is None:
                row = self._samples[key] = [0.0] * (len(self.buckets) + 2)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    row[i] += 1
            row[-2] += 1  # +Inf == total count
            row[-1] += value

    def count(self, **labels: str) -> float:
        with self._lock:
            row = self._samples.get(_label_key(labels))
            return row[-2] if row else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            row = self._samples.get(_label_key(labels))
            return row[-1] if row else 0.0

    def samples(self) -> dict[LabelKey, list[float]]:
        with self._lock:
            return {key: list(row) for key, row in self._samples.items()}

    def _reset(self) -> None:
        with self._lock:
            self._samples.clear()


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Dotted internal name → legal Prometheus metric name."""
    return f"{prefix}_{name.replace('.', '_').replace('-', '_')}"


def _format_labels(labels: Optional[Iterable[tuple[str, str]]]) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in labels:
        text = str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{key}="{text}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


#: Any registered family (Gauge subclasses Counter).
Metric = Union[Counter, Histogram]

_M = TypeVar("_M", bound=Metric)


class MetricsRegistry:
    """Name → metric family table plus registered pull-collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, Metric] = {}
        self._collectors: list[Callable[[], Iterable[Sample]]] = []

    # -- registration ------------------------------------------------------

    def _register(
        self, name: str, factory: Callable[[], _M], cls: type[_M]
    ) -> _M:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = factory()
            if not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help: str = "") -> Counter:
        """Register (or fetch) the counter ``name``.  Registration also
        creates an unlabelled zero sample, so the family is visible in
        ``/metrics`` before the first event."""
        family = self._register(name, lambda: Counter(name, help), Counter)
        if family.kind == "counter":
            family.inc(0)
        return family

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self, name: str, help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help, buckets), Histogram
        )

    def collector(self, fn: Callable[[], Iterable[Sample]]) -> None:
        """Register a pull-collector: called at render/snapshot time,
        yielding :data:`Sample` tuples for stats kept elsewhere."""
        with self._lock:
            self._collectors.append(fn)

    # -- reads -------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """The current value of a registered counter/gauge sample."""
        with self._lock:
            family = self._families[name]
        if isinstance(family, Histogram):
            raise ValueError(f"metric {name!r} is a histogram; use count/sum")
        return family.get(**labels)

    def snapshot(self) -> dict[str, float]:
        """Every sample (families and collectors) as a flat dict keyed
        by ``name`` or ``name{k=v,...}`` — the test-facing view."""
        out: dict[str, float] = {}
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors)
        for family in families:
            if isinstance(family, Histogram):
                for key, row in family.samples().items():
                    suffix = _format_labels(key)
                    out[f"{family.name}_count{suffix}"] = row[-2]
                    out[f"{family.name}_sum{suffix}"] = row[-1]
                continue
            for key, value in family.samples().items():
                out[f"{family.name}{_format_labels(key)}"] = value
        for collect in collectors:
            for name, _kind, labels, value in collect():
                suffix = _format_labels(sorted(labels.items()) if labels else None)
                out[f"{name}{suffix}"] = value
        return out

    def reset(self) -> None:
        """Zero every sample, keeping registrations (test isolation)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family._reset()

    # -- Prometheus text exposition ----------------------------------------

    def render_prometheus(self, extra: Iterable[Sample] = ()) -> str:
        """The registry (families, collectors, and per-render ``extra``
        samples) in the Prometheus text exposition format."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
            collectors = list(self._collectors)
        lines: list[str] = []
        for family in families:
            name = prometheus_name(family.name)
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            if isinstance(family, Histogram):
                for key, row in sorted(family.samples().items()):
                    base = dict(key)
                    for i, bound in enumerate(family.buckets):
                        labels = _format_labels(
                            sorted({**base, "le": repr(bound)}.items())
                        )
                        lines.append(f"{name}_bucket{labels} {_format_value(row[i])}")
                    labels = _format_labels(sorted({**base, "le": "+Inf"}.items()))
                    lines.append(f"{name}_bucket{labels} {_format_value(row[-2])}")
                    plain = _format_labels(key)
                    lines.append(f"{name}_sum{plain} {_format_value(row[-1])}")
                    lines.append(f"{name}_count{plain} {_format_value(row[-2])}")
                continue
            for key, value in sorted(family.samples().items()):
                lines.append(f"{name}{_format_labels(key)} {_format_value(value)}")
        pulled: list[Sample] = []
        for collect in collectors:
            pulled.extend(collect())
        pulled.extend(extra)
        seen_types: set[str] = set()
        for name, kind, labels, value in pulled:
            rendered = prometheus_name(name)
            if rendered not in seen_types:
                seen_types.add(rendered)
                lines.append(f"# TYPE {rendered} {kind}")
            suffix = _format_labels(sorted(labels.items()) if labels else None)
            lines.append(f"{rendered}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumented module shares.
METRICS = MetricsRegistry()


def _scan_time_cache_samples() -> list[Sample]:
    """Pull-collector for the process-level scan-time-table cache
    (:mod:`repro.sched.timecalc` keeps its own counters; lazy import
    keeps :mod:`repro.obs` dependency-free)."""
    from repro.sched.timecalc import scan_time_cache_stats

    stats = scan_time_cache_stats()
    kinds = {"hits": "counter", "misses": "counter", "evictions": "counter",
             "entries": "gauge", "capacity": "gauge"}
    return [
        (f"cache.scan_time.{key}", kinds[key], None, float(stats[key]))
        for key in ("hits", "misses", "evictions", "entries", "capacity")
    ]


METRICS.collector(_scan_time_cache_samples)
