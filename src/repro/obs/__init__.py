"""``repro.obs`` — stdlib-only observability: tracing, metrics, progress.

Three small, independent pieces (see each module's docstring):

* :mod:`repro.obs.trace` — a process-local :class:`Tracer` of nestable
  spans, a true no-op while disabled; JSONL export, replayable span
  trees, and the compact summary that becomes the v4 integration
  result's ``trace`` section.
* :mod:`repro.obs.metrics` — a global counter/gauge/histogram registry
  rendered in the Prometheus text format (``GET /metrics``,
  ``repro metrics``).
* :mod:`repro.obs.progress` — :class:`JobProgress`, the shared
  scenarios-done/total counter behind live job progress on the serve
  layer.

``repro.obs`` imports nothing from the rest of the platform (the
scan-time-cache collector lazy-imports at scrape time), so every layer
— pipeline, scheduler, batch, serve, CLI — can instrument itself
without import cycles.
"""

from repro.obs.metrics import METRICS, MetricsRegistry, prometheus_name
from repro.obs.progress import JobProgress
from repro.obs.trace import (
    TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    load_jsonl,
    span,
    span_tree,
    subtree,
    summarize,
    tracing_enabled,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "prometheus_name",
    "JobProgress",
    "TRACER",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "load_jsonl",
    "span",
    "span_tree",
    "subtree",
    "summarize",
    "tracing_enabled",
]
