"""BRAINS — the memory BIST compiler (paper Section 2, Fig. 2, ref [3]).

"With our automatic memory BIST generation system, BRAINS, one can
generate the BIST circuit using the GUI or command shell, and evaluate
the memory test efficiency among different designs easily."

:class:`Brains` compiles a list of memory specs into a
:class:`BistEngine`: a grouped test plan, generated hardware (shared
controller + sequencer + one TPG per memory) with measured areas, exact
cycle counts, schedulable tasks for STEAC, and a behavioral runner that
actually executes the March test against (optionally fault-injected)
memory models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bist.controller import make_bist_controller
from repro.bist.march import MARCH_C_MINUS, MarchTest
from repro.bist.memory_model import FaultFreeMemory, FaultModel, FaultyMemory
from repro.bist.scheduling import BistPlan, plan_bist
from repro.bist.sequencer import make_sequencer
from repro.bist.tpg import TpgRunResult, make_tpg, run_tpg
from repro.netlist import Module, Netlist
from repro.soc.memory import MemorySpec
from repro.util import Table, format_cycles, format_gates


@dataclass
class BrainsConfig:
    """Compiler knobs.

    Attributes:
        march: the March algorithm to embed.
        power_budget: cap on concurrent memory test power (0 = none).
        max_groups: cap on group count (None = as many as needed).
        sequencers: sequencer instances to generate (the paper's "one or
            more Sequencers"; >1 allows different algorithms per memory
            family — areas add, behaviour is identical here).
        word_oriented: repeat the algorithm once per data background so
            word-wide arrays get intra-word coupling coverage
            (:mod:`repro.bist.backgrounds`).
    """

    march: MarchTest = MARCH_C_MINUS
    power_budget: float = 0.0
    max_groups: int | None = None
    sequencers: int = 1
    word_oriented: bool = False


@dataclass
class BistRunResult:
    """Outcome of a behavioral engine run."""

    results: list[TpgRunResult] = field(default_factory=list)
    total_cycles: int = 0

    @property
    def all_pass(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failing(self) -> list[str]:
        return [r.memory_name for r in self.results if not r.passed]


@dataclass
class BistEngine:
    """A compiled BIST subsystem for one SOC's memories."""

    specs: list[MemorySpec]
    config: BrainsConfig
    plan: BistPlan
    netlist: Netlist
    tpg_modules: dict[str, Module]
    controller_module: Module
    sequencer_modules: list[Module]

    # -- figures -------------------------------------------------------------

    @property
    def march(self) -> MarchTest:
        return self.config.march

    @property
    def total_cycles(self) -> int:
        """Engine test time (groups back-to-back)."""
        return self.plan.total_cycles

    def memory_cycles(self, spec: MemorySpec) -> int:
        from repro.bist.scheduling import memory_test_cycles

        return memory_test_cycles(self.march, spec, self.config.word_oriented)

    @property
    def total_area(self) -> float:
        """Generated BIST hardware in NAND2 equivalents."""
        total = self.controller_module.area(self.netlist)
        total += sum(s.area(self.netlist) for s in self.sequencer_modules)
        total += sum(t.area(self.netlist) for t in self.tpg_modules.values())
        return total

    def to_tasks(self):
        """Schedulable group tasks for the Core Test Scheduler (Fig. 4)."""
        return self.plan.to_tasks()

    def to_dict(self) -> dict:
        """JSON-native summary for ``IntegrationResult.to_dict()``."""
        return {
            "march": self.march.name,
            "memory_count": self.plan.memory_count,
            "group_count": len(self.plan.groups),
            "total_cycles": self.plan.total_cycles,
            "area_gates": round(self.total_area, 1),
        }

    # -- behavioral execution ---------------------------------------------------

    def run(
        self,
        faults: dict[str, FaultModel] | None = None,
        model_words: int = 256,
        seed: int = 1,
    ) -> BistRunResult:
        """Execute the BIST plan against behavioral memory models.

        Arrays are modelled at ``min(spec.words, model_words)`` cells to
        keep runs fast; *cycle counts are always reported for the true
        sizes*.  ``faults`` maps memory names to a fault to inject.
        """
        faults = faults or {}
        result = BistRunResult(total_cycles=self.plan.total_cycles)
        for group in self.plan.groups:
            for spec in group.memories:
                size = min(spec.words, model_words)
                fault = faults.get(spec.name)
                if fault is None:
                    memory = FaultFreeMemory(size, seed=seed)
                else:
                    memory = FaultyMemory(size, fault, seed=seed)
                run = run_tpg(
                    memory, self.march, name=spec.name, two_port=spec.is_two_port
                )
                # report true-size cycles
                run.cycles = self.memory_cycles(spec)
                result.results.append(run)
        return result

    # -- reports -----------------------------------------------------------------

    def area_table(self) -> Table:
        table = Table(
            ["Block", "Instances", "Gates"],
            title=f"BRAINS-generated BIST hardware ({self.march.name})",
        )
        table.add_row(
            ["BIST controller", 1, f"{self.controller_module.area(self.netlist):.0f}"]
        )
        seq_area = sum(s.area(self.netlist) for s in self.sequencer_modules)
        table.add_row(["Sequencer", len(self.sequencer_modules), f"{seq_area:.0f}"])
        tpg_area = sum(t.area(self.netlist) for t in self.tpg_modules.values())
        table.add_row(["TPGs", len(self.tpg_modules), f"{tpg_area:.0f}"])
        table.add_row(["Total", "", format_gates(self.total_area)])
        return table

    def time_table(self) -> Table:
        table = Table(
            ["Memory", "Geometry", "Cycles"],
            title=f"Per-memory BIST time ({self.march.name})",
        )
        for spec in self.specs:
            table.add_row(
                [spec.name, spec.describe(), format_cycles(self.memory_cycles(spec))]
            )
        return table


class Brains:
    """The BRAINS compiler front end."""

    def compile(
        self, memories: list[MemorySpec], config: BrainsConfig | None = None
    ) -> BistEngine:
        """Compile BIST for ``memories``: plan groups, generate hardware."""
        if not memories:
            raise ValueError("BRAINS needs at least one memory")
        config = config or BrainsConfig()
        plan = plan_bist(
            memories,
            config.march,
            config.power_budget,
            config.max_groups,
            word_oriented=config.word_oriented,
        )
        netlist = Netlist()
        tpgs: dict[str, Module] = {}
        for spec in memories:
            module = make_tpg(spec)
            netlist.add(module)
            tpgs[spec.name] = module
        sequencers = []
        for i in range(max(1, config.sequencers)):
            module = make_sequencer(config.march, name=f"sequencer{i}")
            netlist.add(module)
            sequencers.append(module)
        controller = make_bist_controller(len(memories), max(1, len(plan.groups)))
        netlist.add(controller)
        netlist.top_name = controller.name
        return BistEngine(
            specs=list(memories),
            config=config,
            plan=plan,
            netlist=netlist,
            tpg_modules=tpgs,
            controller_module=controller,
            sequencer_modules=sequencers,
        )
