"""Shared BIST controller ("the tester can access all the on-chip
memories via a single shared BIST Controller", paper Fig. 2).

Interface pins follow Fig. 2's naming: ``MBS`` (BIST start), ``MBR``
(BIST ready/done), ``MSI``/``MSO`` (serial command in / response out),
``MBO`` (pass/fail summary), ``MRD`` (result read strobe), ``MBC``
(BIST clock).  Internally: a run FSM, a group counter that walks the
BIST plan's groups, a per-memory result register, and a serial readout
path.
"""

from __future__ import annotations

from repro.netlist import Module


def make_bist_controller(
    n_memories: int, n_groups: int, name: str = "bist_controller"
) -> Module:
    """Generate the shared controller netlist."""
    if n_memories < 1 or n_groups < 1:
        raise ValueError("controller needs at least one memory and one group")
    g_bits = max(1, (n_groups - 1).bit_length())
    m = Module(name)
    for port in ("mbc", "rstn", "mbs", "msi", "mrd", "seq_done"):
        m.add_input(port)
    for i in range(n_memories):
        m.add_input(f"err{i}")
    for port in ("mbr", "mbo", "mso"):
        m.add_output(port)
    for g in range(n_groups):
        m.add_output(f"group_en{g}")

    # run FSM: state0 = running, state1 = done (idle = both low)
    m.add_instance("u_idle_n0", "NOR2", A="n_run", B="n_done", Y="n_idle")
    m.add_instance("u_start", "AND2", A="mbs", B="n_idle", Y="n_go")
    m.add_instance("u_last_grp", "AND2", A="n_at_last_group", B="seq_done", Y="n_finish")
    m.add_instance("u_fin_n", "INV", A="n_finish", Y="n_finish_n")
    m.add_instance("u_run_hold", "AND2", A="n_run", B="n_finish_n", Y="n_run_hold")
    m.add_instance("u_run_d", "OR2", A="n_go", B="n_run_hold", Y="n_run_next")
    m.add_instance("u_run_ff", "DFFR", D="n_run_next", CK="mbc", RN="rstn", Q="n_run")
    m.add_instance("u_done_hold", "OR2", A="n_done", B="n_finish", Y="n_done_next")
    m.add_instance("u_done_ff", "DFFR", D="n_done_next", CK="mbc", RN="rstn", Q="n_done")
    m.add_instance("u_mbr_buf", "BUF", A="n_done", Y="mbr")

    # group counter: advances when the sequencer finishes a group's program
    m.add_instance("u_adv", "AND2", A="n_run", B="seq_done", Y="n_adv")
    carry = "n_adv"
    for b in range(g_bits):
        q = f"n_g{b}"
        m.add_instance(f"u_gx{b}", "XOR2", A=q, B=carry, Y=f"n_gnext{b}")
        m.add_instance(f"u_gc{b}", "AND2", A=q, B=carry, Y=f"n_gcarry{b}")
        m.add_instance(f"u_gf{b}", "DFFR", D=f"n_gnext{b}", CK="mbc", RN="rstn", Q=q)
        m.add_instance(f"u_gi{b}", "INV", A=q, Y=f"n_g{b}_n")
        carry = f"n_gcarry{b}"

    # group decode (one-hot enables, gated by run)
    for g in range(n_groups):
        literals = [f"n_g{b}" if (g >> b) & 1 else f"n_g{b}_n" for b in range(g_bits)]
        net = m.add_net(f"n_gdec{g}")
        _tree(m, literals, net, "AND", f"u_gd{g}")
        m.add_instance(f"u_gen{g}", "AND2", A=net, B="n_run", Y=f"group_en{g}")
    last = n_groups - 1
    literals = [f"n_g{b}" if (last >> b) & 1 else f"n_g{b}_n" for b in range(g_bits)]
    _tree(m, literals, "n_at_last_group", "AND", "u_lastg")

    # result register: accumulate (sticky) error flags while running;
    # serial readout shifts the register toward MSO when MRD is high
    prev = "msi"
    fail_terms = []
    for i in range(n_memories):
        cap = f"n_cap{i}"
        m.add_instance(f"u_racc{i}", "OR2", A=f"err{i}", B=f"n_res{i}", Y=f"n_acc{i}")
        m.add_instance(f"u_rmux{i}", "MUX2", D0=f"n_acc{i}", D1=prev, S="mrd", Y=cap)
        m.add_instance(f"u_ren{i}", "OR2", A="n_run", B="mrd", Y=f"n_ren{i}")
        m.add_instance(f"u_rff{i}", "DFFE", D=cap, CK="mbc", E=f"n_ren{i}", Q=f"n_res{i}")
        prev = f"n_res{i}"
        fail_terms.append(f"n_res{i}")
    m.add_instance("u_mso_buf", "BUF", A=prev, Y="mso")
    fail_any = m.add_net("n_fail_any")
    _tree(m, fail_terms, fail_any, "OR", "u_fail")
    m.add_instance("u_mbo_inv", "INV", A=fail_any, Y="mbo")  # 1 = all pass
    return m


def _tree(m: Module, nets: list[str], out: str, kind: str, prefix: str) -> None:
    cell2, cell3 = (("AND2", "AND3") if kind == "AND" else ("OR2", "OR3"))
    if len(nets) == 1:
        m.add_instance(f"{prefix}_buf", "BUF", A=nets[0], Y=out)
        return
    current = list(nets)
    level = 0
    while len(current) > 1:
        nxt = []
        i = 0
        while i < len(current):
            group = current[i : i + 3] if len(current) - i == 3 else current[i : i + 2]
            i += len(group)
            if len(group) == 1:
                nxt.append(group[0])
                continue
            final = i >= len(current) and not nxt
            y = out if final else m.add_net(f"{prefix}_t{level}_{len(nxt)}")
            m.add_instance(
                f"{prefix}_g{level}_{len(nxt)}",
                cell3 if len(group) == 3 else cell2,
                Y=y,
                **dict(zip("ABC", group)),
            )
            nxt.append(y)
        current = nxt
        level += 1
