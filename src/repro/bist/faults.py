"""Memory fault models.

The classical single-fault population March theory addresses (van de
Goor): stuck-at, transition, coupling (inversion / idempotent / state),
stuck-open, address-decoder, and data-retention faults.  Each model
subclasses :class:`repro.bist.memory_model.FaultModel` and intercepts
read/write/pause.

Conventions: ``a`` = aggressor address, ``v`` = victim address (a ≠ v);
transitions are named from the *write* that causes them (``up`` = 0→1).
"""

from __future__ import annotations

import itertools
import random

from repro.bist.memory_model import FaultModel, MemoryState


class StuckAtFault(FaultModel):
    """SAF: the cell permanently holds ``stuck_value``."""

    def __init__(self, cell: int, stuck_value: int):
        self.cell = cell
        self.stuck_value = stuck_value & 1
        self.name = f"SAF{self.stuck_value}"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.cell,)

    def on_inject(self, state: MemoryState) -> None:
        state.cells[self.cell] = self.stuck_value

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        if addr != self.cell:
            state.cells[addr] = value

    def apply_read(self, state: MemoryState, addr: int) -> int:
        if addr == self.cell:
            return self.stuck_value
        return state.cells[addr]


class TransitionFault(FaultModel):
    """TF: the cell cannot make one transition (``rising=True`` = 0→1)."""

    def __init__(self, cell: int, rising: bool):
        self.cell = cell
        self.rising = rising
        self.name = "TF_UP" if rising else "TF_DOWN"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.cell,)

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        if addr == self.cell:
            old = state.cells[addr]
            if self.rising and old == 0 and value == 1:
                return  # 0 -> 1 fails
            if not self.rising and old == 1 and value == 0:
                return  # 1 -> 0 fails
        state.cells[addr] = value


class InversionCouplingFault(FaultModel):
    """CFin ⟨t; ↕⟩: a ``t`` transition of the aggressor inverts the victim."""

    def __init__(self, aggressor: int, victim: int, rising: bool):
        if aggressor == victim:
            raise ValueError("aggressor and victim must differ")
        self.aggressor = aggressor
        self.victim = victim
        self.rising = rising
        self.name = f"CFin{'↑' if rising else '↓'}"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.aggressor, self.victim)

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        if addr == self.aggressor:
            old = state.cells[addr]
            transitioned = (old == 0 and value == 1) if self.rising else (old == 1 and value == 0)
            state.cells[addr] = value
            if transitioned:
                state.cells[self.victim] ^= 1
        else:
            state.cells[addr] = value


class IdempotentCouplingFault(FaultModel):
    """CFid ⟨t; d⟩: a ``t`` transition of the aggressor forces the victim
    to ``forced_value``."""

    def __init__(self, aggressor: int, victim: int, rising: bool, forced_value: int):
        if aggressor == victim:
            raise ValueError("aggressor and victim must differ")
        self.aggressor = aggressor
        self.victim = victim
        self.rising = rising
        self.forced_value = forced_value & 1
        self.name = f"CFid{'↑' if rising else '↓'}{self.forced_value}"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.aggressor, self.victim)

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        if addr == self.aggressor:
            old = state.cells[addr]
            transitioned = (old == 0 and value == 1) if self.rising else (old == 1 and value == 0)
            state.cells[addr] = value
            if transitioned:
                state.cells[self.victim] = self.forced_value
        else:
            state.cells[addr] = value


class StateCouplingFault(FaultModel):
    """CFst ⟨s; d⟩: while the aggressor is in state ``s``, the victim
    reads as ``forced_value`` (and writes to it are lost)."""

    def __init__(self, aggressor: int, victim: int, aggressor_state: int, forced_value: int):
        if aggressor == victim:
            raise ValueError("aggressor and victim must differ")
        self.aggressor = aggressor
        self.victim = victim
        self.aggressor_state = aggressor_state & 1
        self.forced_value = forced_value & 1
        self.name = f"CFst{self.aggressor_state}:{self.forced_value}"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.aggressor, self.victim)

    def _active(self, state: MemoryState) -> bool:
        return state.cells[self.aggressor] == self.aggressor_state

    def apply_read(self, state: MemoryState, addr: int) -> int:
        if addr == self.victim and self._active(state):
            return self.forced_value
        return state.cells[addr]

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        if addr == self.victim and self._active(state):
            return  # write lost while coupling is active
        state.cells[addr] = value


class StuckOpenFault(FaultModel):
    """SOF: the cell is disconnected; reads return the sense-amplifier's
    previous value, writes are lost."""

    def __init__(self, cell: int):
        self.cell = cell
        self.name = "SOF"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.cell,)

    def apply_read(self, state: MemoryState, addr: int) -> int:
        if addr == self.cell:
            return state.sense_amp
        return state.cells[addr]

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        if addr != self.cell:
            state.cells[addr] = value


class AddressAliasFault(FaultModel):
    """AF (aliasing): two addresses resolve to the same physical cell."""

    def __init__(self, addr_a: int, addr_b: int):
        if addr_a == addr_b:
            raise ValueError("aliased addresses must differ")
        self.addr_a = min(addr_a, addr_b)
        self.addr_b = max(addr_a, addr_b)
        self.name = "AF_alias"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.addr_a, self.addr_b)

    def _resolve(self, addr: int) -> int:
        return self.addr_a if addr == self.addr_b else addr

    def apply_read(self, state: MemoryState, addr: int) -> int:
        return state.cells[self._resolve(addr)]

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        state.cells[self._resolve(addr)] = value


class AddressNoAccessFault(FaultModel):
    """AF (no access): the address reaches no cell — writes are lost and
    reads return the floating-bitline value (modelled as 0)."""

    def __init__(self, cell: int):
        self.cell = cell
        self.name = "AF_open"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.cell,)

    def apply_read(self, state: MemoryState, addr: int) -> int:
        if addr == self.cell:
            return 0
        return state.cells[addr]

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        if addr != self.cell:
            state.cells[addr] = value


class DataRetentionFault(FaultModel):
    """DRF: the cell leaks to ``leak_value`` over a retention pause."""

    def __init__(self, cell: int, leak_value: int):
        self.cell = cell
        self.leak_value = leak_value & 1
        self.name = f"DRF{self.leak_value}"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return (self.cell,)

    def apply_pause(self, state: MemoryState) -> None:
        state.cells[self.cell] = self.leak_value


#: Canonical fault-class names, in reporting order.
FAULT_CLASSES = ("SAF", "TF", "CFin", "CFid", "CFst", "SOF", "AF", "DRF")


def classify(fault: FaultModel) -> str:
    """Map a fault instance to its class name."""
    for cls in FAULT_CLASSES:
        if fault.name.startswith(cls) or (cls == "AF" and fault.name.startswith("AF")):
            return cls
    return fault.name


def fault_population(
    size: int,
    classes: tuple[str, ...] = FAULT_CLASSES,
    coupling_pairs: int = 64,
    seed: int = 7,
) -> list[FaultModel]:
    """Generate a representative single-fault population for an array.

    Single-cell faults are exhaustive (every cell, every polarity);
    two-cell coupling faults sample adjacent pairs plus ``coupling_pairs``
    random pairs per variant (the full O(N²) population is impractical —
    adjacency dominates real defects).
    """
    rng = random.Random(seed)
    population: list[FaultModel] = []

    def pairs() -> list[tuple[int, int]]:
        adjacent = [(i, i + 1) for i in range(size - 1)]
        adjacent += [(i + 1, i) for i in range(size - 1)]
        extra = []
        for _ in range(coupling_pairs):
            a, v = rng.sample(range(size), 2)
            extra.append((a, v))
        return adjacent + extra

    if "SAF" in classes:
        for cell in range(size):
            population.append(StuckAtFault(cell, 0))
            population.append(StuckAtFault(cell, 1))
    if "TF" in classes:
        for cell in range(size):
            population.append(TransitionFault(cell, rising=True))
            population.append(TransitionFault(cell, rising=False))
    if "CFin" in classes:
        for a, v in pairs():
            population.append(InversionCouplingFault(a, v, rising=True))
            population.append(InversionCouplingFault(a, v, rising=False))
    if "CFid" in classes:
        for a, v in pairs():
            for rising, forced in itertools.product((True, False), (0, 1)):
                population.append(IdempotentCouplingFault(a, v, rising, forced))
    if "CFst" in classes:
        for a, v in pairs():
            for s, d in itertools.product((0, 1), (0, 1)):
                population.append(StateCouplingFault(a, v, s, d))
    if "SOF" in classes:
        for cell in range(size):
            population.append(StuckOpenFault(cell))
    if "AF" in classes:
        for cell in range(size):
            population.append(AddressNoAccessFault(cell))
        for i in range(size - 1):
            population.append(AddressAliasFault(i, i + 1))
    if "DRF" in classes:
        for cell in range(size):
            population.append(DataRetentionFault(cell, 0))
            population.append(DataRetentionFault(cell, 1))
    return population
