"""BIST Sequencer: microcoded March program storage and stepping.

"One or more Sequencers can be used to generate March-based test
algorithms" (paper, Fig. 2).  The sequencer broadcasts (element, op)
phases to the TPGs of the memories in the active group; each TPG sweeps
its own address range and reports done, so heterogeneous sizes share one
sequencer — the group advances when its slowest member finishes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bist.march import MarchTest, Op, Order
from repro.netlist import Module

#: Microcode encoding: 2 bits per op (00 r0, 01 r1, 10 w0, 11 w1).
OP_CODES = {Op.R0: 0, Op.R1: 1, Op.W0: 2, Op.W1: 3}


@dataclass(frozen=True)
class MicroOp:
    """One sequencer microcode slot."""

    element: int
    op: Op
    order: Order
    pause_before: bool = False
    last_in_element: bool = False


def microcode(march: MarchTest) -> list[MicroOp]:
    """Flatten a March test into sequencer microcode."""
    program: list[MicroOp] = []
    for e_idx, element in enumerate(march.elements):
        for o_idx, op in enumerate(element.ops):
            program.append(
                MicroOp(
                    element=e_idx,
                    op=op,
                    order=element.order,
                    pause_before=element.pause_before and o_idx == 0,
                    last_in_element=o_idx == len(element.ops) - 1,
                )
            )
    return program


def make_sequencer(march: MarchTest, name: str = "sequencer") -> Module:
    """Generate the sequencer netlist.

    Structure: an element counter, an op counter, and a microcode ROM
    synthesized as two-level logic (one minterm AND per program slot per
    asserted output bit).  Outputs: the 2-bit op bus, the direction
    flag, and program-done.
    """
    program = microcode(march)
    n_elements = len(march.elements)
    e_bits = max(1, (n_elements - 1).bit_length())
    max_ops = max(len(e.ops) for e in march.elements)
    o_bits = max(1, (max_ops - 1).bit_length())

    m = Module(name)
    for port in ("clk", "rstn", "step", "group_done"):
        m.add_input(port)
    for port in ("op0", "op1", "dir_down", "seq_done"):
        m.add_output(port)

    # element & op counters (advance on step when the group finishes a sweep)
    for prefix, bits in (("e", e_bits), ("o", o_bits)):
        carry = "group_done" if prefix == "e" else "step"
        for b in range(bits):
            q = f"n_{prefix}{b}"
            m.add_instance(f"u_{prefix}x{b}", "XOR2", A=q, B=carry, Y=f"n_{prefix}next{b}")
            m.add_instance(f"u_{prefix}c{b}", "AND2", A=q, B=carry, Y=f"n_{prefix}carry{b}")
            m.add_instance(f"u_{prefix}f{b}", "DFFR", D=f"n_{prefix}next{b}", CK="clk",
                           RN="rstn", Q=q)
            m.add_instance(f"u_{prefix}i{b}", "INV", A=q, Y=f"n_{prefix}{b}_n")
            carry = f"n_{prefix}carry{b}"

    # microcode ROM: two-level logic over the element counter for the
    # per-element attributes (direction), and over (element, op) for ops.
    def element_minterm(e_idx: int, out: str, tag: str) -> None:
        literals = [
            f"n_e{b}" if (e_idx >> b) & 1 else f"n_e{b}_n" for b in range(e_bits)
        ]
        _and_tree(m, literals, out, prefix=f"u_mt_{tag}")

    down_terms = []
    for e_idx, element in enumerate(march.elements):
        if element.order is Order.DOWN:
            net = m.add_net(f"n_down_e{e_idx}")
            element_minterm(e_idx, net, f"d{e_idx}")
            down_terms.append(net)
    _or_tree(m, down_terms, "dir_down", prefix="u_dir")

    # op bits: minterms over (element, op-index)
    for bit, port in ((0, "op0"), (1, "op1")):
        terms = []
        for e_idx, element in enumerate(march.elements):
            for o_idx, op in enumerate(element.ops):
                if (OP_CODES[op] >> bit) & 1:
                    net = m.add_net(f"n_op{bit}_e{e_idx}_o{o_idx}")
                    literals = [
                        f"n_e{b}" if (e_idx >> b) & 1 else f"n_e{b}_n" for b in range(e_bits)
                    ] + [
                        f"n_o{b}" if (o_idx >> b) & 1 else f"n_o{b}_n" for b in range(o_bits)
                    ]
                    _and_tree(m, literals, net, prefix=f"u_op{bit}_{e_idx}_{o_idx}")
                    terms.append(net)
        _or_tree(m, terms, port, prefix=f"u_opor{bit}")

    # done: element counter reached the final element and it completed
    last = n_elements - 1
    literals = [f"n_e{b}" if (last >> b) & 1 else f"n_e{b}_n" for b in range(e_bits)]
    done_net = m.add_net("n_at_last")
    _and_tree(m, literals, done_net, prefix="u_done")
    m.add_instance("u_done_and", "AND2", A=done_net, B="group_done", Y="seq_done")
    return m


def _and_tree(m: Module, nets: list[str], out: str, prefix: str) -> None:
    if len(nets) == 1:
        m.add_instance(f"{prefix}_buf", "BUF", A=nets[0], Y=out)
        return
    current = list(nets)
    level = 0
    while len(current) > 1:
        nxt = []
        i = 0
        while i < len(current):
            group = current[i : i + 3] if len(current) - i == 3 else current[i : i + 2]
            i += len(group)
            if len(group) == 1:
                nxt.append(group[0])
                continue
            final = i >= len(current) and not nxt
            y = out if final else m.add_net(f"{prefix}_t{level}_{len(nxt)}")
            cell = "AND3" if len(group) == 3 else "AND2"
            m.add_instance(f"{prefix}_a{level}_{len(nxt)}", cell, Y=y, **dict(zip("ABC", group)))
            nxt.append(y)
        current = nxt
        level += 1


def _or_tree(m: Module, nets: list[str], out: str, prefix: str) -> None:
    if not nets:
        m.add_instance(f"{prefix}_tie", "TIE0", Y=out)
        return
    if len(nets) == 1:
        m.add_instance(f"{prefix}_buf", "BUF", A=nets[0], Y=out)
        return
    current = list(nets)
    level = 0
    while len(current) > 1:
        nxt = []
        i = 0
        while i < len(current):
            group = current[i : i + 3] if len(current) - i == 3 else current[i : i + 2]
            i += len(group)
            if len(group) == 1:
                nxt.append(group[0])
                continue
            final = i >= len(current) and not nxt
            y = out if final else m.add_net(f"{prefix}_t{level}_{len(nxt)}")
            cell = "OR3" if len(group) == 3 else "OR2"
            m.add_instance(f"{prefix}_o{level}_{len(nxt)}", cell, Y=y, **dict(zip("ABC", group)))
            nxt.append(y)
        current = nxt
        level += 1
