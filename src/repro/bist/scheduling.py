"""Memory BIST scheduling: group memories under a power budget.

The BIST engine tests one *group* of memories at a time; memories inside
a group run **concurrently** (each TPG sweeps its own array while the
shared sequencer broadcasts the March phase), so a group's time is its
slowest member and its power is the sum of members.  Groups run
back-to-back on the single engine.

This is where BRAINS meets the Core Test Scheduler (Fig. 4): each group
becomes one fixed-time :class:`repro.sched.TestTask` that STEAC schedules
alongside the logic-core tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bist.backgrounds import standard_backgrounds
from repro.bist.march import MarchTest
from repro.bist.tpg import march_cycles
from repro.sched.result import TestTask
from repro.soc.core import ControlNeeds
from repro.soc.memory import MemorySpec
from repro.soc.tests import TestKind
from repro.util import Table, format_cycles


def memory_test_cycles(march: MarchTest, memory: MemorySpec, word_oriented: bool = False) -> int:
    """BIST run length for one memory; word-oriented testing repeats the
    algorithm once per data background (see :mod:`repro.bist.backgrounds`)."""
    base = march_cycles(march, memory.words, memory.is_two_port)
    if word_oriented:
        base *= len(standard_backgrounds(memory.bits))
    return base


@dataclass
class BistGroup:
    """One concurrently-tested set of memories."""

    index: int
    memories: list[MemorySpec] = field(default_factory=list)
    word_oriented: bool = False

    def cycles(self, march: MarchTest) -> int:
        """Group time = slowest member (all run concurrently)."""
        return max(
            (memory_test_cycles(march, m, self.word_oriented) for m in self.memories),
            default=0,
        )

    @property
    def power(self) -> float:
        return sum(m.power for m in self.memories)


@dataclass
class BistPlan:
    """A grouped BIST schedule for a set of memories."""

    march: MarchTest
    groups: list[BistGroup] = field(default_factory=list)
    word_oriented: bool = False

    @property
    def total_cycles(self) -> int:
        """Engine-serial total: groups run back-to-back."""
        return sum(g.cycles(self.march) for g in self.groups)

    @property
    def serial_cycles(self) -> int:
        """Baseline: every memory tested one after another."""
        return sum(
            memory_test_cycles(self.march, m, self.word_oriented)
            for g in self.groups
            for m in g.memories
        )

    @property
    def memory_count(self) -> int:
        return sum(len(g.memories) for g in self.groups)

    def to_tasks(self) -> list[TestTask]:
        """One schedulable task per group, all mutually exclusive (they
        share the one BIST engine and the BIST access port)."""
        tasks = []
        for group in self.groups:
            tasks.append(
                TestTask(
                    name=f"MBIST.g{group.index}",
                    core_name="MBIST",
                    kind=TestKind.BIST,
                    control=ControlNeeds(),
                    power=group.power,
                    fixed_time=group.cycles(self.march),
                    uses_bist_port=True,
                )
            )
        return tasks

    def render(self) -> str:
        table = Table(
            ["Group", "Memories", "Power", "Cycles"],
            title=f"BIST plan ({self.march.name}, {self.memory_count} memories)",
        )
        for group in self.groups:
            table.add_row(
                [
                    group.index,
                    ", ".join(m.name for m in group.memories),
                    f"{group.power:.1f}",
                    format_cycles(group.cycles(self.march)),
                ]
            )
        speedup = self.serial_cycles / self.total_cycles if self.total_cycles else 1.0
        return "\n".join(
            [
                table.render(),
                f"total {format_cycles(self.total_cycles)} cycles "
                f"(fully serial {format_cycles(self.serial_cycles)}, "
                f"{speedup:.2f}x speedup)",
            ]
        )


def plan_bist(
    memories: list[MemorySpec],
    march: MarchTest,
    power_budget: float = 0.0,
    max_groups: int | None = None,
    word_oriented: bool = False,
) -> BistPlan:
    """Partition memories into concurrent groups.

    Greedy: memories sorted by test time descending; each joins the group
    whose makespan it increases least without exceeding the power budget
    (first-fit-decreasing on time with a power capacity check).  With no
    budget and no group cap, everything lands in one group.
    """
    if not memories:
        return BistPlan(march=march, word_oriented=word_oriented)
    order = sorted(
        memories,
        key=lambda m: -memory_test_cycles(march, m, word_oriented),
    )
    if power_budget > 0:
        for memory in order:
            if memory.power > power_budget:
                raise ValueError(
                    f"memory {memory.name!r} (power {memory.power}) exceeds the "
                    f"power budget {power_budget} on its own"
                )
    groups: list[BistGroup] = []
    for memory in order:
        best = None
        for group in groups:
            if power_budget > 0 and group.power + memory.power > power_budget:
                continue
            # placing into an existing group is free if it doesn't extend it
            added = max(
                0,
                memory_test_cycles(march, memory, word_oriented) - group.cycles(march),
            )
            if best is None or added < best[1]:
                best = (group, added)
        can_open = max_groups is None or len(groups) < max_groups
        if best is not None and (best[1] == 0 or not can_open):
            best[0].memories.append(memory)
        elif can_open:
            groups.append(
                BistGroup(index=len(groups), memories=[memory], word_oriented=word_oriented)
            )
        elif best is not None:
            best[0].memories.append(memory)
        else:
            raise ValueError(
                f"cannot place memory {memory.name!r}: all {len(groups)} groups "
                f"are at the power budget {power_budget} and max_groups="
                f"{max_groups} forbids opening another"
            )
    return BistPlan(march=march, groups=groups, word_oriented=word_oriented)
