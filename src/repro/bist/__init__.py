"""BRAINS: the memory built-in self-test compiler (paper Fig. 2, Fig. 4).

March algorithms and notation, behavioral memory + fault models, March
fault simulation (coverage evaluation), BIST hardware generation (shared
controller, sequencers, per-memory TPGs), and power-aware BIST
scheduling that plugs into the Core Test Scheduler.
"""

from repro.bist.backgrounds import (
    IntraWordCouplingFault,
    WordMarchResult,
    WordMemory,
    WordStuckBitFault,
    run_word_march,
    standard_backgrounds,
    word_march_cycles,
)
from repro.bist.compiler import BistEngine, BistRunResult, Brains, BrainsConfig
from repro.bist.controller import make_bist_controller
from repro.bist.faults import (
    FAULT_CLASSES,
    AddressAliasFault,
    AddressNoAccessFault,
    DataRetentionFault,
    FaultModel,
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
    classify,
    fault_population,
)
from repro.bist.faultsim import (
    CoverageResult,
    coverage_table,
    detects,
    run_march,
    simulate_coverage,
)
from repro.bist.march import (
    ALGORITHMS,
    MARCH_A,
    MARCH_B,
    MARCH_C,
    MARCH_C_MINUS,
    MARCH_SS,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS,
    MATS_PP,
    MarchElement,
    MarchTest,
    Op,
    Order,
    algorithm,
    parse_march,
    with_retention,
)
from repro.bist.memory_model import FaultFreeMemory, FaultyMemory, MemoryState
from repro.bist.scheduling import BistGroup, BistPlan, plan_bist
from repro.bist.sequencer import MicroOp, make_sequencer, microcode
from repro.bist.tpg import TpgRunResult, make_tpg, march_cycles, run_tpg

__all__ = [
    "IntraWordCouplingFault",
    "WordMarchResult",
    "WordMemory",
    "WordStuckBitFault",
    "run_word_march",
    "standard_backgrounds",
    "word_march_cycles",
    "BistEngine",
    "BistRunResult",
    "Brains",
    "BrainsConfig",
    "make_bist_controller",
    "FAULT_CLASSES",
    "AddressAliasFault",
    "AddressNoAccessFault",
    "DataRetentionFault",
    "FaultModel",
    "IdempotentCouplingFault",
    "InversionCouplingFault",
    "StateCouplingFault",
    "StuckAtFault",
    "StuckOpenFault",
    "TransitionFault",
    "classify",
    "fault_population",
    "CoverageResult",
    "coverage_table",
    "detects",
    "run_march",
    "simulate_coverage",
    "ALGORITHMS",
    "MARCH_A",
    "MARCH_B",
    "MARCH_C",
    "MARCH_C_MINUS",
    "MARCH_SS",
    "MARCH_X",
    "MARCH_Y",
    "MATS",
    "MATS_PLUS",
    "MATS_PP",
    "MarchElement",
    "MarchTest",
    "Op",
    "Order",
    "algorithm",
    "parse_march",
    "with_retention",
    "FaultFreeMemory",
    "FaultyMemory",
    "MemoryState",
    "BistGroup",
    "BistPlan",
    "plan_bist",
    "MicroOp",
    "make_sequencer",
    "microcode",
    "TpgRunResult",
    "make_tpg",
    "march_cycles",
    "run_tpg",
]
