"""March test algorithms and notation.

BRAINS sequencers "generate March-based test algorithms" (paper, Fig. 2).
A March test is a sequence of *elements*; each element walks the address
space in a direction (⇑ up, ⇓ down, ⇕ either) applying a fixed sequence
of read/write operations per cell.

ASCII notation (parse/format round-trips)::

    March C-:  {*(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0); *(r0)}

``^`` = ascending, ``v`` = descending, ``*`` = either order; ops are
``r0 r1 w0 w1``.  An element may be prefixed with ``pause,`` to request a
retention pause before it (used by the data-retention variants).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.Enum):
    """A per-cell March operation."""

    R0 = "r0"  # read, expect 0
    R1 = "r1"  # read, expect 1
    W0 = "w0"  # write 0
    W1 = "w1"  # write 1

    @property
    def is_read(self) -> bool:
        return self in (Op.R0, Op.R1)

    @property
    def is_write(self) -> bool:
        return not self.is_read

    @property
    def value_bit(self) -> int:
        """The data bit involved (expected value for reads)."""
        return 1 if self in (Op.R1, Op.W1) else 0


class Order(enum.Enum):
    """Address sweep direction of a March element."""

    UP = "^"
    DOWN = "v"
    EITHER = "*"


@dataclass(frozen=True)
class MarchElement:
    """One March element: an address order and a per-cell op sequence.

    ``pause_before`` requests a data-retention pause before the sweep.
    """

    order: Order
    ops: tuple[Op, ...]
    pause_before: bool = False

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("a March element needs at least one operation")

    def format(self) -> str:
        body = ",".join(op.value for op in self.ops)
        prefix = "pause," if self.pause_before else ""
        return f"{prefix}{self.order.value}({body})"


@dataclass(frozen=True)
class MarchTest:
    """A named March test algorithm."""

    name: str
    elements: tuple[MarchElement, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("a March test needs at least one element")

    @property
    def complexity(self) -> int:
        """Operations per cell (the 'xN' in 'March C- is a 10N test')."""
        return sum(len(e.ops) for e in self.elements)

    @property
    def has_pause(self) -> bool:
        return any(e.pause_before for e in self.elements)

    def operation_count(self, words: int) -> int:
        """Total RAM operations over a ``words``-cell array."""
        return self.complexity * words

    def format(self) -> str:
        """Canonical ASCII notation."""
        return "{" + "; ".join(e.format() for e in self.elements) + "}"

    def __str__(self) -> str:
        return f"{self.name} {self.format()}"


def parse_march(text: str, name: str = "custom") -> MarchTest:
    """Parse the ASCII March notation (inverse of :meth:`MarchTest.format`)."""
    body = text.strip()
    if body.startswith("{"):
        if not body.endswith("}"):
            raise ValueError(f"unbalanced braces in March notation: {text!r}")
        body = body[1:-1]
    elements: list[MarchElement] = []
    for chunk in body.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        pause = False
        if chunk.startswith("pause,"):
            pause = True
            chunk = chunk[len("pause,") :].strip()
        if not chunk or chunk[0] not in "^v*":
            raise ValueError(f"March element must start with ^, v or *: {chunk!r}")
        order = Order(chunk[0])
        ops_text = chunk[1:].strip()
        if not (ops_text.startswith("(") and ops_text.endswith(")")):
            raise ValueError(f"March element ops must be parenthesized: {chunk!r}")
        ops = tuple(Op(tok.strip()) for tok in ops_text[1:-1].split(",") if tok.strip())
        elements.append(MarchElement(order=order, ops=ops, pause_before=pause))
    return MarchTest(name=name, elements=tuple(elements))


def _mk(name: str, notation: str) -> MarchTest:
    return parse_march(notation, name=name)


#: The classic algorithms BRAINS ships (complexities in parentheses).
MATS = _mk("MATS", "{*(w0); *(r0,w1); *(r1)}")                                   # 4N
MATS_PLUS = _mk("MATS+", "{*(w0); ^(r0,w1); v(r1,w0)}")                          # 5N
MATS_PP = _mk("MATS++", "{*(w0); ^(r0,w1); v(r1,w0,r0)}")                        # 6N
MARCH_X = _mk("March X", "{*(w0); ^(r0,w1); v(r1,w0); *(r0)}")                   # 6N
MARCH_Y = _mk("March Y", "{*(w0); ^(r0,w1,r1); v(r1,w0,r0); *(r0)}")             # 8N
MARCH_C_MINUS = _mk(
    "March C-", "{*(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0); *(r0)}"
)                                                                                 # 10N
MARCH_C = _mk(
    "March C", "{*(w0); ^(r0,w1); ^(r1,w0); *(r0); v(r0,w1); v(r1,w0); *(r0)}"
)                                                                                 # 11N
MARCH_A = _mk(
    "March A", "{*(w0); ^(r0,w1,w0,w1); ^(r1,w0,w1); v(r1,w0,w1,w0); v(r0,w1,w0)}"
)                                                                                 # 15N
MARCH_B = _mk(
    "March B",
    "{*(w0); ^(r0,w1,r1,w0,r0,w1); ^(r1,w0,w1); v(r1,w0,w1,w0); v(r0,w1,w0)}",
)                                                                                 # 17N
MARCH_SS = _mk(
    "March SS",
    "{*(w0); ^(r0,r0,w0,r0,w1); ^(r1,r1,w1,r1,w0); "
    "v(r0,r0,w0,r0,w1); v(r1,r1,w1,r1,w0); *(r0)}",
)                                                                                 # 22N

#: All shipped algorithms, cheapest first.
ALGORITHMS: tuple[MarchTest, ...] = (
    MATS,
    MATS_PLUS,
    MATS_PP,
    MARCH_X,
    MARCH_Y,
    MARCH_C_MINUS,
    MARCH_C,
    MARCH_A,
    MARCH_B,
    MARCH_SS,
)


def algorithm(name: str) -> MarchTest:
    """Look up a shipped March algorithm by name (case-insensitive)."""
    for test in ALGORITHMS:
        if test.name.lower() == name.lower():
            return test
    raise KeyError(f"no March algorithm named {name!r}")


def with_retention(test: MarchTest) -> MarchTest:
    """Data-retention variant.

    A pause detects cells that leak to value ``d`` only if it happens
    while the cells hold ``1-d`` and the next operation reads that value,
    so one pause per polarity is inserted: before the first element whose
    leading op is ``r0`` (catches leak-to-1) and before the first whose
    leading op is ``r1`` (catches leak-to-0).  Raises if the test cannot
    host both pauses (no read-first element of some polarity).
    """
    pause_r0 = next(
        (i for i, e in enumerate(test.elements) if e.ops[0] is Op.R0), None
    )
    pause_r1 = next(
        (i for i, e in enumerate(test.elements) if e.ops[0] is Op.R1), None
    )
    if pause_r0 is None or pause_r1 is None:
        raise ValueError(
            f"{test.name!r} has no read-first element of each polarity; "
            "cannot build a retention variant"
        )
    elements = []
    for i, element in enumerate(test.elements):
        if i in (pause_r0, pause_r1):
            element = MarchElement(element.order, element.ops, pause_before=True)
        elements.append(element)
    return MarchTest(name=f"{test.name} +ret", elements=tuple(elements))
