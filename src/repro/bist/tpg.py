"""Test Pattern Generator (TPG): per-memory March executor.

"Each Test Pattern Generator (TPG) attached to the memory will translate
the March-based test commands to the respective RAM signals" (paper,
Fig. 2).  Two faces:

* a **behavioral** executor that runs a March test against a
  :class:`repro.bist.memory_model.MemoryInterface`, counting cycles
  exactly as the hardware would;
* a **gate-level generator** producing the TPG netlist (address counter,
  op decoder, read comparator, done logic) for area accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bist.march import MarchTest, Order
from repro.bist.memory_model import MemoryInterface
from repro.netlist import Module
from repro.soc.memory import MemorySpec

#: Cycles for BIST start-up handshake per memory run.
TPG_SETUP_CYCLES = 4

#: Pipeline bubble when the sequencer advances to the next March element.
ELEMENT_SWITCH_CYCLES = 2

#: Retention pause length in cycles (tester-controlled; modelled value).
PAUSE_CYCLES = 1000


@dataclass
class TpgRunResult:
    """Outcome of one behavioral TPG run."""

    memory_name: str
    passed: bool
    cycles: int
    fail_addr: int | None = None
    fail_op: str | None = None


def march_cycles(march: MarchTest, words: int, two_port: bool = False) -> int:
    """Cycle-accurate BIST run length for one memory.

    One RAM operation per cycle, plus per-element switch bubbles and the
    setup handshake; two-port memories run the algorithm once per port.
    """
    passes = 2 if two_port else 1
    per_pass = (
        march.operation_count(words)
        + ELEMENT_SWITCH_CYCLES * len(march.elements)
        + sum(PAUSE_CYCLES for e in march.elements if e.pause_before)
    )
    return TPG_SETUP_CYCLES + passes * per_pass


def run_tpg(
    memory: MemoryInterface,
    march: MarchTest,
    name: str = "mem",
    two_port: bool = False,
    stop_on_fail: bool = False,
) -> TpgRunResult:
    """Behavioral TPG: apply ``march``, count cycles, record first fail.

    The cycle count always equals :func:`march_cycles` when
    ``stop_on_fail`` is False — an invariant the tests pin.
    """
    cycles = TPG_SETUP_CYCLES
    passed = True
    fail_addr = fail_op = None
    passes = 2 if two_port else 1
    for _ in range(passes):
        for element in march.elements:
            if element.pause_before:
                memory.pause()
                cycles += PAUSE_CYCLES
            cycles += ELEMENT_SWITCH_CYCLES
            addresses = (
                range(memory.size)
                if element.order is not Order.DOWN
                else range(memory.size - 1, -1, -1)
            )
            for addr in addresses:
                for op in element.ops:
                    cycles += 1
                    if op.is_write:
                        memory.write(addr, op.value_bit)
                    elif memory.read(addr) != op.value_bit:
                        if passed:
                            fail_addr, fail_op = addr, op.value
                        passed = False
                        if stop_on_fail:
                            return TpgRunResult(name, False, cycles, fail_addr, fail_op)
    return TpgRunResult(name, passed, cycles, fail_addr, fail_op)


def make_tpg(spec: MemorySpec, name: str | None = None) -> Module:
    """Generate the TPG netlist for one memory.

    Structure: an ``addr_bits`` up/down counter, a terminal-count
    detector, March op decode (2-bit op bus from the sequencer), expected-
    data generation, a read comparator and a sticky error flag.
    """
    bits = spec.address_bits
    m = Module(name or f"tpg_{spec.name}")
    for port in ("clk", "rstn", "run", "op0", "op1", "dir_down", "q"):
        m.add_input(port)
    for port in ("addr_done", "error", "we", "wdata"):
        m.add_output(port)
    for b in range(bits):
        m.add_output(f"addr{b}")

    # up/down address counter: next = addr +/- 1 (ripple half-add/sub)
    m.add_instance("u_dir_inv", "INV", A="dir_down", Y="n_dir_up")
    carry = "run"  # increment only while running
    for b in range(bits):
        q = f"n_a{b}"
        # count bit: XOR with carry; direction handled by xor-ing the
        # stored bit with dir_down before the carry chain (two's-complement
        # down count via inverted bit trick)
        m.add_instance(f"u_cx{b}", "XOR2", A=q, B=carry, Y=f"n_next{b}")
        eff = f"n_eff{b}"
        m.add_instance(f"u_ce{b}", "XOR2", A=q, B="dir_down", Y=eff)
        m.add_instance(f"u_cc{b}", "AND2", A=eff, B=carry, Y=f"n_carry{b}")
        m.add_instance(
            f"u_ff{b}", "DFFR", D=f"n_next{b}", CK="clk", RN="rstn", Q=q
        )
        m.add_instance(f"u_ob{b}", "BUF", A=q, Y=f"addr{b}")
        carry = f"n_carry{b}"
    # terminal count: all effective bits high -> sweep complete
    terms = [f"n_eff{b}" for b in range(bits)]
    _reduce_and(m, terms, "addr_done", prefix="u_tc")

    # op decode: op[1:0] = 00 r0, 01 r1, 10 w0, 11 w1
    m.add_instance("u_we_buf", "BUF", A="op1", Y="we")
    m.add_instance("u_wd_buf", "BUF", A="op0", Y="wdata")
    # read compare: expected = op0 when reading (op1 = 0)
    m.add_instance("u_exp_x", "XOR2", A="q", B="op0", Y="n_mismatch")
    m.add_instance("u_rd_inv", "INV", A="op1", Y="n_is_read")
    m.add_instance("u_err_and", "AND3", A="n_mismatch", B="n_is_read", C="run", Y="n_err_set")
    m.add_instance("u_err_or", "OR2", A="n_err_set", B="n_err_q", Y="n_err_d")
    m.add_instance("u_err_ff", "DFFR", D="n_err_d", CK="clk", RN="rstn", Q="n_err_q")
    m.add_instance("u_err_buf", "BUF", A="n_err_q", Y="error")
    return m


def _reduce_and(m: Module, nets: list[str], out: str, prefix: str) -> None:
    if len(nets) == 1:
        m.add_instance(f"{prefix}_buf", "BUF", A=nets[0], Y=out)
        return
    current = list(nets)
    level = 0
    while len(current) > 1:
        nxt = []
        i = 0
        while i < len(current):
            group = current[i : i + 3] if len(current) - i == 3 else current[i : i + 2]
            i += len(group)
            if len(group) == 1:
                nxt.append(group[0])
                continue
            final = i >= len(current) and not nxt
            y = out if final else m.add_net(f"{prefix}_n{level}_{len(nxt)}")
            cell = "AND3" if len(group) == 3 else "AND2"
            m.add_instance(
                f"{prefix}_g{level}_{len(nxt)}", cell, Y=y, **dict(zip("ABC", group))
            )
            nxt.append(y)
        current = nxt
        level += 1
