"""Word-oriented memory testing with data backgrounds.

Classical March theory is bit-oriented; production SRAMs are
word-oriented (the DSC's arrays are 8-32 bits wide).  BRAINS handles
this the standard way: run the March algorithm once per *data
background*, where ``w0`` writes the background pattern, ``w1`` writes
its complement, and reads compare whole words.

With the :func:`standard_backgrounds` set (solid plus the log2(B)
"address-of-bit" stripes), every pair of distinct bit positions receives
opposite values under at least one background — which is exactly the
condition for a bit-oriented detection guarantee to lift to intra-word
coupling faults.  The property is asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bist.march import MarchTest, Order


def standard_backgrounds(bits: int) -> list[int]:
    """Solid + stripe backgrounds for ``bits``-bit words.

    Background ``k`` (k >= 1) sets bit ``i`` iff bit ``k-1`` of the
    index ``i`` is set; background 0 is solid zero.  Any two distinct
    bit positions differ under some background (their indices differ in
    some bit), giving ``floor(log2(B)) + 1`` backgrounds total.

    >>> [f"{b:04b}" for b in standard_backgrounds(4)]
    ['0000', '1010', '1100']
    """
    if bits <= 0:
        raise ValueError(f"word width must be positive, got {bits}")
    backgrounds = [0]
    k = 0
    while (1 << k) < bits:
        background = 0
        for i in range(bits):
            if (i >> k) & 1:
                background |= 1 << i
        backgrounds.append(background)
        k += 1
    return backgrounds


class WordMemory:
    """A fault-free word-oriented memory (words x bits)."""

    def __init__(self, words: int, bits: int):
        if words <= 0 or bits <= 0:
            raise ValueError("words and bits must be positive")
        self.words = words
        self.bits = bits
        self.mask = (1 << bits) - 1
        self.cells = [0] * words

    def read(self, addr: int) -> int:
        return self.cells[addr]

    def write(self, addr: int, value: int) -> None:
        self.cells[addr] = value & self.mask


class WordFaultModel:
    """Base word-level fault: behaves fault-free."""

    name = "none"

    def apply_write(self, memory: WordMemory, addr: int, value: int) -> None:
        memory.cells[addr] = value & memory.mask

    def apply_read(self, memory: WordMemory, addr: int) -> int:
        return memory.cells[addr]


class WordStuckBitFault(WordFaultModel):
    """One bit of one word stuck at a value."""

    def __init__(self, word: int, bit: int, value: int):
        self.word = word
        self.bit = bit
        self.value = value & 1
        self.name = f"WSAF{self.value}@{word}.{bit}"

    def _fix(self, data: int) -> int:
        if self.value:
            return data | (1 << self.bit)
        return data & ~(1 << self.bit)

    def apply_write(self, memory: WordMemory, addr: int, value: int) -> None:
        value &= memory.mask
        if addr == self.word:
            value = self._fix(value)
        memory.cells[addr] = value

    def apply_read(self, memory: WordMemory, addr: int) -> int:
        data = memory.cells[addr]
        if addr == self.word:
            data = self._fix(data)
        return data


class IntraWordCouplingFault(WordFaultModel):
    """CFid inside one word: an aggressor-bit transition during a write
    forces the victim bit of the *stored* word to ``forced_value``.

    Invisible to solid backgrounds whenever aggressor and victim receive
    equal values — the case data backgrounds exist to break.
    """

    def __init__(self, word: int, aggressor_bit: int, victim_bit: int,
                 rising: bool, forced_value: int):
        if aggressor_bit == victim_bit:
            raise ValueError("aggressor and victim bits must differ")
        self.word = word
        self.aggressor_bit = aggressor_bit
        self.victim_bit = victim_bit
        self.rising = rising
        self.forced_value = forced_value & 1
        arrow = "↑" if rising else "↓"
        self.name = f"WCFid{arrow}{self.forced_value}@{word}.{aggressor_bit}->{victim_bit}"

    def apply_write(self, memory: WordMemory, addr: int, value: int) -> None:
        value &= memory.mask
        if addr == self.word:
            old = (memory.cells[addr] >> self.aggressor_bit) & 1
            new = (value >> self.aggressor_bit) & 1
            transitioned = (old == 0 and new == 1) if self.rising else (old == 1 and new == 0)
            if transitioned:
                if self.forced_value:
                    value |= 1 << self.victim_bit
                else:
                    value &= ~(1 << self.victim_bit)
        memory.cells[addr] = value


@dataclass
class WordMarchResult:
    """Outcome of a word-oriented March run."""

    passed: bool
    backgrounds_run: int
    operations: int
    fail_addr: int | None = None
    fail_background: int | None = None


def run_word_march(
    memory: WordMemory,
    march: MarchTest,
    fault: WordFaultModel | None = None,
    backgrounds: list[int] | None = None,
) -> WordMarchResult:
    """Run ``march`` once per background against a word memory.

    ``w0`` writes the background, ``w1`` its complement; ``r0``/``r1``
    expect them respectively.  Returns at the first mismatching word.
    """
    fault = fault or WordFaultModel()
    if backgrounds is None:
        backgrounds = standard_backgrounds(memory.bits)
    operations = 0
    for background in backgrounds:
        complement = (~background) & memory.mask
        for element in march.elements:
            addresses = (
                range(memory.words)
                if element.order is not Order.DOWN
                else range(memory.words - 1, -1, -1)
            )
            for addr in addresses:
                for op in element.ops:
                    operations += 1
                    if op.is_write:
                        value = complement if op.value_bit else background
                        fault.apply_write(memory, addr, value)
                    else:
                        expected = complement if op.value_bit else background
                        if fault.apply_read(memory, addr) != expected:
                            return WordMarchResult(
                                passed=False,
                                backgrounds_run=backgrounds.index(background) + 1,
                                operations=operations,
                                fail_addr=addr,
                                fail_background=background,
                            )
    return WordMarchResult(
        passed=True, backgrounds_run=len(backgrounds), operations=operations
    )


def word_march_cycles(march: MarchTest, words: int, bits: int) -> int:
    """Test length in RAM operations for the full background set."""
    return march.operation_count(words) * len(standard_backgrounds(bits))
