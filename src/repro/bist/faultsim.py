"""March fault simulation: run an algorithm against injected faults.

This is BRAINS's "evaluate the memory test efficiency among different
designs" capability (paper, Section 2): for a fault population and a
March algorithm, report per-class coverage and the test-time/coverage
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bist.faults import FAULT_CLASSES, FaultModel, classify, fault_population
from repro.bist.march import MarchTest, Order
from repro.bist.memory_model import FaultFreeMemory, FaultyMemory, MemoryInterface
from repro.util import Table


def run_march(memory: MemoryInterface, march: MarchTest) -> bool:
    """Apply ``march`` to ``memory``; True = all reads matched (pass)."""
    size = memory.size
    for element in march.elements:
        if element.pause_before:
            memory.pause()
        addresses = range(size) if element.order is not Order.DOWN else range(size - 1, -1, -1)
        for addr in addresses:
            for op in element.ops:
                if op.is_write:
                    memory.write(addr, op.value_bit)
                else:
                    if memory.read(addr) != op.value_bit:
                        return False
    return True


def diagnose_march(memory: MemoryInterface, march: MarchTest) -> list[int]:
    """Apply ``march`` in *diagnosis mode*: run to completion and log
    every failing read's address instead of stopping at the first
    mismatch.

    This is the bitmap-capture mode of a BIST controller with diagnosis
    support — the raw material for redundancy analysis
    (:mod:`repro.repair`).  Returns the sorted distinct addresses whose
    reads mismatched; an empty list means the memory passed.
    """
    failing: set[int] = set()
    size = memory.size
    for element in march.elements:
        if element.pause_before:
            memory.pause()
        addresses = range(size) if element.order is not Order.DOWN else range(size - 1, -1, -1)
        for addr in addresses:
            for op in element.ops:
                if op.is_write:
                    memory.write(addr, op.value_bit)
                elif memory.read(addr) != op.value_bit:
                    failing.add(addr)
    return sorted(failing)


def detects(march: MarchTest, fault: FaultModel, size: int, seed: int = 1) -> bool:
    """True if ``march`` *guarantees* detection of ``fault``.

    Power-up state is undefined, so the test must fail for **every**
    initial state of the cells the fault involves (classical guaranteed-
    detection semantics); other cells take the seeded random state.
    """
    import itertools as _it

    cells = fault.cells_involved or ()
    for combo in _it.product((0, 1), repeat=len(cells)):
        overrides = dict(zip(cells, combo))
        memory = FaultyMemory(size, fault, seed=seed, initial_overrides=overrides)
        if run_march(memory, march):
            return False  # this initial state escapes
    return True


@dataclass
class CoverageResult:
    """Per-class detection tallies for one March algorithm."""

    march_name: str
    complexity: int
    detected: dict[str, int] = field(default_factory=dict)
    injected: dict[str, int] = field(default_factory=dict)
    escapes: list[str] = field(default_factory=list)

    def coverage(self, fault_class: str) -> float:
        total = self.injected.get(fault_class, 0)
        if total == 0:
            return 0.0
        return 100.0 * self.detected.get(fault_class, 0) / total

    @property
    def total_coverage(self) -> float:
        total = sum(self.injected.values())
        if total == 0:
            return 0.0
        return 100.0 * sum(self.detected.values()) / total


def simulate_coverage(
    march: MarchTest,
    size: int = 32,
    classes: tuple[str, ...] = FAULT_CLASSES,
    coupling_pairs: int = 32,
    seed: int = 7,
    keep_escapes: int = 10,
) -> CoverageResult:
    """Exhaustive-ish fault simulation of ``march`` on a small array.

    Sanity check: the fault-free memory must pass, else the algorithm
    itself is inconsistent (e.g. reads 1 before writing 1).
    """
    if not run_march(FaultFreeMemory(size, seed=seed), march):
        raise ValueError(f"March test {march.name!r} fails on a fault-free memory")
    result = CoverageResult(march_name=march.name, complexity=march.complexity)
    for fault in fault_population(size, classes, coupling_pairs, seed):
        cls = classify(fault)
        result.injected[cls] = result.injected.get(cls, 0) + 1
        if detects(march, fault, size, seed=seed):
            result.detected[cls] = result.detected.get(cls, 0) + 1
        elif len(result.escapes) < keep_escapes:
            result.escapes.append(fault.describe())
    return result


def coverage_table(
    algorithms: list[MarchTest],
    size: int = 32,
    classes: tuple[str, ...] = FAULT_CLASSES,
    coupling_pairs: int = 32,
) -> Table:
    """Coverage-vs-complexity comparison across algorithms (experiment
    E10: BRAINS's test-efficiency evaluation)."""
    table = Table(
        ["Algorithm", "Ops/cell"] + [f"{c}%" for c in classes] + ["Total%"],
        title=f"March fault coverage on a {size}-cell array",
    )
    for march in algorithms:
        result = simulate_coverage(march, size, classes, coupling_pairs)
        table.add_row(
            [march.name, march.complexity]
            + [f"{result.coverage(c):.0f}" for c in classes]
            + [f"{result.total_coverage:.1f}"]
        )
    return table
