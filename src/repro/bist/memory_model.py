"""Behavioral memory model for March fault simulation.

The model is *bit-oriented*: one cell per address, matching classical
March test theory.  Word-oriented arrays are tested by BRAINS with solid
data backgrounds, under which each bit position behaves as an independent
bit-oriented array — so coverage results transfer (vd Goor, "Testing
Semiconductor Memories").

Faults are injected by wrapping the array in a :class:`FaultyMemory`
whose read/write paths are intercepted by a fault model object
(:mod:`repro.bist.faults`).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence


class MemoryState:
    """The raw cell array plus the sense-amplifier latch."""

    def __init__(self, size: int, seed: int | None = 1):
        if size <= 0:
            raise ValueError(f"memory size must be positive, got {size}")
        rng = random.Random(seed)
        self.size = size
        #: cell values; power-up state is random (seeded for repeatability)
        self.cells: list[int] = [rng.randint(0, 1) for _ in range(size)]
        #: last value produced by the sense amplifier (for SOF modeling)
        self.sense_amp: int = 0

    def check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.size:
            raise IndexError(f"address {addr} out of range 0..{self.size - 1}")


class MemoryInterface(Protocol):
    """What the fault simulator needs from a memory."""

    size: int

    def read(self, addr: int) -> int: ...

    def write(self, addr: int, value: int) -> None: ...

    def pause(self) -> None: ...


class FaultFreeMemory:
    """A golden memory: reads return what was written."""

    def __init__(self, size: int, seed: int | None = 1):
        self.state = MemoryState(size, seed)
        self.size = size

    def read(self, addr: int) -> int:
        self.state.check_addr(addr)
        value = self.state.cells[addr]
        self.state.sense_amp = value
        return value

    def write(self, addr: int, value: int) -> None:
        self.state.check_addr(addr)
        self.state.cells[addr] = value & 1

    def pause(self) -> None:
        """Retention pause: a healthy memory holds its data."""


class FaultyMemory:
    """A memory with injected faults.

    ``fault`` is a single :class:`FaultModel` (the classical single-fault
    assumption of March theory) or a sequence of them — multiple defects
    landing in one array, as physical-defect injection produces.  A
    sequence is wrapped in a :class:`CompositeFault`, whose ordering
    semantics are documented there.

    ``initial_overrides`` pins specific cells' power-up values — the
    fault simulator uses this to check *guaranteed* detection (a March
    test must catch the fault for every initial state of the involved
    cells, since power-up state is undefined).
    """

    def __init__(
        self,
        size: int,
        fault: "FaultModel | Sequence[FaultModel]",
        seed: int | None = 1,
        initial_overrides: dict[int, int] | None = None,
    ):
        self.state = MemoryState(size, seed)
        for addr, value in (initial_overrides or {}).items():
            self.state.cells[addr] = value & 1
        self.size = size
        if not isinstance(fault, FaultModel):
            fault = CompositeFault(fault)
        self.fault = fault
        fault.on_inject(self.state)

    def read(self, addr: int) -> int:
        self.state.check_addr(addr)
        value = self.fault.apply_read(self.state, addr)
        self.state.sense_amp = value
        return value

    def write(self, addr: int, value: int) -> None:
        self.state.check_addr(addr)
        self.fault.apply_write(self.state, addr, value & 1)

    def pause(self) -> None:
        self.fault.apply_pause(self.state)


class FaultModel:
    """Base fault model: behaves like a fault-free memory.

    Subclasses override the hooks; ``cells_involved`` names the addresses
    the fault touches (used for reporting and population generation).
    """

    name = "none"

    @property
    def cells_involved(self) -> tuple[int, ...]:
        return ()

    def describe(self) -> str:
        cells = ",".join(str(c) for c in self.cells_involved)
        return f"{self.name}({cells})"

    def on_inject(self, state: MemoryState) -> None:
        """Called once when the fault is installed."""

    def apply_read(self, state: MemoryState, addr: int) -> int:
        return state.cells[addr]

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        state.cells[addr] = value

    def apply_pause(self, state: MemoryState) -> None:
        """Retention pause hook (only DRF reacts)."""


class CompositeFault(FaultModel):
    """Several faults injected into one array (multi-defect chips).

    Ordering semantics — deterministic and documented, since two faults
    can claim the same cell:

    * a read or write at address ``a`` is handled by the **first** fault
      in the list whose ``cells_involved`` contains ``a`` (its coupling
      side effects apply); addresses no fault claims behave fault-free;
    * ``on_inject`` and ``apply_pause`` run for **every** fault, in list
      order (a retention leak happens whether or not another fault also
      touches the cell).

    So ``CompositeFault([SAF0(5), TF_UP(5)])`` reads 0 at cell 5 (the
    stuck-at masks the transition fault), while the reversed order
    behaves as a pure transition fault — callers pin the physical story
    by ordering the list.
    """

    def __init__(self, faults: Sequence[FaultModel]):
        self.faults = list(faults)
        if not self.faults:
            raise ValueError("CompositeFault needs at least one fault")
        self.name = "+".join(f.name for f in self.faults)

    @property
    def cells_involved(self) -> tuple[int, ...]:
        seen: dict[int, None] = {}
        for fault in self.faults:
            for cell in fault.cells_involved:
                seen.setdefault(cell, None)
        return tuple(seen)

    def _owner(self, addr: int) -> "FaultModel | None":
        for fault in self.faults:
            if addr in fault.cells_involved:
                return fault
        return None

    def on_inject(self, state: MemoryState) -> None:
        for fault in self.faults:
            fault.on_inject(state)

    def apply_read(self, state: MemoryState, addr: int) -> int:
        owner = self._owner(addr)
        if owner is None:
            return state.cells[addr]
        return owner.apply_read(state, addr)

    def apply_write(self, state: MemoryState, addr: int, value: int) -> None:
        owner = self._owner(addr)
        if owner is None:
            state.cells[addr] = value
        else:
            owner.apply_write(state, addr, value)

    def apply_pause(self, state: MemoryState) -> None:
        for fault in self.faults:
            fault.apply_pause(state)
