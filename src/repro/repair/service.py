"""The repair showcase as a library: one chip through diagnose →
allocate → Monte-Carlo, returning the ``repro/repair-report/v1``
document.

Extracted from the CLI ``repair`` command so the serving layer can run
the identical analysis as a submitted job; ``python -m repro repair``
and a ``POST /jobs`` repair request produce the same document for the
same inputs (everything is seeded, so reports are reproducible).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.soc.soc import Soc

REPAIR_REPORT_SCHEMA = "repro/repair-report/v1"


def repair_report(
    soc: Soc,
    *,
    seed: int = 7,
    trials: int = 500,
    workers: int = 0,
    allocator: str = "greedy",
    defects: int = 3,
    defect_density: float = 0.3,
    spare_rows: Optional[int] = None,
    spare_cols: Optional[int] = None,
    model_rows: int = 32,
) -> dict:
    """Diagnose seeded defects in every memory of ``soc``, allocate
    spares, and score the design with a Monte-Carlo repair-rate
    estimate — the full ``repro/repair-report/v1`` document.

    The diagnosis section injects a fixed ``defects`` count per memory
    (a deterministic showcase of bitmap capture + allocation); the
    Monte-Carlo section samples from the ``defect_density`` model
    instead.  A memory spec's own redundancy always wins over the
    ``spare_rows`` / ``spare_cols`` defaults.
    """
    from repro.bist.march import MARCH_C_MINUS
    from repro.repair.montecarlo import (
        DEFECT_KINDS,
        Defect,
        DefectModel,
        diagnose_defects,
        estimate_repair_rate,
    )
    from repro.repair.redundancy import (
        DEFAULT_REDUNDANCY,
        bisr_gates,
        diagnosis_geometry,
    )
    from repro.repair.registry import resolve_allocation
    from repro.soc.memory import RedundancySpec

    spares = RedundancySpec(
        spare_rows if spare_rows is not None else DEFAULT_REDUNDANCY.spare_rows,
        spare_cols if spare_cols is not None else DEFAULT_REDUNDANCY.spare_cols,
    )
    model = DefectModel(defects_per_mbit=defect_density)
    march = MARCH_C_MINUS
    rng = random.Random(seed)
    memory_docs = []
    for spec in soc.memories:
        mem_spares = spec.redundancy if spec.redundancy is not None else spares
        rows, cols = diagnosis_geometry(spec, model_rows)
        injected = [
            Defect(
                rng.choices(DEFECT_KINDS, weights=model.kind_weights)[0],
                rng.randrange(rows),
                rng.randrange(cols),
            )
            for _ in range(defects)
        ]
        bitmap = diagnose_defects(injected, spec, march, model_rows)
        allocation = resolve_allocation(allocator, bitmap, mem_spares)
        memory_docs.append(
            {
                "name": spec.name,
                "geometry": spec.describe(),
                "rows": rows,
                "cols": cols,
                "spares": {"rows": mem_spares.spare_rows, "cols": mem_spares.spare_cols},
                "defects_injected": len(injected),
                "bitmap": bitmap.to_dict(),
                "allocation": allocation.to_dict(),
                "bisr_gates": round(bisr_gates(spec, mem_spares), 1),
            }
        )
    rate = estimate_repair_rate(
        soc.memories,
        trials=trials,
        seed=seed,
        workers=workers,
        allocator=allocator,
        model=model,
        default_spares=spares,
        model_rows=model_rows,
    )
    return {
        "schema": REPAIR_REPORT_SCHEMA,
        "soc": soc.name,
        "march": march.name,
        "allocator": allocator,
        "spares": {"rows": spares.spare_rows, "cols": spares.spare_cols},
        "memories": memory_docs,
        "monte_carlo": rate.to_dict(),
    }


def render_repair_report(doc: dict) -> str:
    """Human-readable rendering of a ``repro/repair-report/v1`` document
    (the CLI's non-``--json`` output)."""
    from repro.repair.montecarlo import RepairRateResult
    from repro.util import Table

    spares = doc["spares"]
    table = Table(
        ["Memory", "Geometry", "Defects", "Fails", "Allocation", "BISR gates"],
        title=f"Diagnosis & repair ({doc['march']}, "
        f"{spares['rows']}R+{spares['cols']}C spares, "
        f"allocator {doc['allocator']})",
    )
    for memory in doc["memories"]:
        alloc = memory["allocation"]
        verdict = (
            f"{len(alloc['rows'])}R+{len(alloc['cols'])}C"
            if alloc["repairable"]
            else "UNREPAIRABLE"
        )
        table.add_row(
            [
                memory["name"],
                memory["geometry"],
                memory["defects_injected"],
                memory["bitmap"]["fail_count"],
                verdict,
                memory["bisr_gates"],
            ]
        )
    mc = doc["monte_carlo"]
    rate = RepairRateResult(
        trials=mc["trials"],
        clean_chips=mc["clean_chips"],
        repaired_chips=mc["repaired_chips"],
        dead_chips=mc["dead_chips"],
        total_defects=mc["total_defects"],
        memory_fails=mc["memory_fails"],
        memory_repairs=mc["memory_repairs"],
        seed=mc["seed"],
        allocator=mc["allocator"],
    )
    return table.render() + "\n\n" + rate.render()
