"""Allocator plugin registry: repair solvers resolve by name.

Mirrors :mod:`repro.sched.registry` — ``exact`` and ``greedy`` ship
built in, and downstream code can register its own solver without
touching the platform:

    >>> from repro.repair.registry import register_allocator
    >>> @register_allocator("mine")
    ... def solve_mine(bitmap, spares):
    ...     ...

Every allocator shares one calling convention::

    fn(bitmap: FailBitmap, spares: RedundancySpec) -> RepairSolution
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.repair.allocate import RepairSolution, solve_exact, solve_greedy
from repro.repair.bitmap import FailBitmap
from repro.soc.memory import RedundancySpec


class AllocatorFn(Protocol):
    """The uniform allocator entry point."""

    def __call__(self, bitmap: FailBitmap, spares: RedundancySpec) -> RepairSolution: ...


_REGISTRY: dict[str, AllocatorFn] = {}


def register_allocator(name: str) -> Callable[[AllocatorFn], AllocatorFn]:
    """Decorator: register ``fn`` as the repair allocator ``name``.

    Re-registering a name replaces the previous entry (last one wins),
    so tests and plugins can shadow a built-in.
    """

    def decorator(fn: AllocatorFn) -> AllocatorFn:
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_allocator(name: str) -> AllocatorFn:
    """Look up an allocator by name.

    Raises:
        ValueError: unknown name (message lists what is available).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown repair allocator {name!r}; "
            f"available: {', '.join(available_allocators())}"
        ) from None


def available_allocators() -> list[str]:
    """Registered allocator names, sorted."""
    return sorted(_REGISTRY)


def resolve_allocation(
    name: str, bitmap: FailBitmap, spares: RedundancySpec
) -> RepairSolution:
    """Run the named allocator — the one-call front end to the registry."""
    return get_allocator(name)(bitmap, spares)


register_allocator("exact")(solve_exact)
register_allocator("greedy")(solve_greedy)
