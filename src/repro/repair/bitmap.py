"""Row×column failure bitmaps — the output of diagnosis-mode BIST.

A :class:`FailBitmap` is what the BIST controller's bitmap capture
hardware delivers to the redundancy analyzer: the set of (row, column)
coordinates whose reads mismatched over a full March run.  The platform's
behavioral memory model is bit-oriented (one cell per address), so an
address maps to physical coordinates as ``row = addr // cols``,
``col = addr % cols`` — the standard word-line/bit-line unfolding of a
``rows × cols`` array.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.bist.faultsim import diagnose_march
from repro.bist.march import MarchTest
from repro.bist.memory_model import MemoryInterface
from repro.util import check_positive


@dataclass(frozen=True)
class FailBitmap:
    """Failing cells of one ``rows × cols`` array."""

    rows: int
    cols: int
    fails: frozenset[tuple[int, int]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        check_positive(self.rows, "bitmap row count")
        check_positive(self.cols, "bitmap column count")
        for r, c in self.fails:
            if not (0 <= r < self.rows and 0 <= c < self.cols):
                raise ValueError(
                    f"fail ({r},{c}) outside {self.rows}x{self.cols} bitmap"
                )

    # -- construction ------------------------------------------------------

    @classmethod
    def from_addresses(cls, addresses, rows: int, cols: int) -> "FailBitmap":
        """Fold bit-oriented failing addresses into physical coordinates."""
        fails = frozenset((addr // cols, addr % cols) for addr in addresses)
        return cls(rows=rows, cols=cols, fails=fails)

    @classmethod
    def capture(cls, memory: MemoryInterface, march: MarchTest, cols: int) -> "FailBitmap":
        """Run ``march`` over ``memory`` in diagnosis mode and fold the
        failing addresses into a bitmap (``memory.size`` must be
        ``rows * cols``)."""
        if memory.size % cols:
            raise ValueError(
                f"memory size {memory.size} is not a multiple of {cols} columns"
            )
        return cls.from_addresses(
            diagnose_march(memory, march), rows=memory.size // cols, cols=cols
        )

    # -- queries -----------------------------------------------------------

    @property
    def fail_count(self) -> int:
        return len(self.fails)

    @property
    def is_clear(self) -> bool:
        return not self.fails

    def row_counts(self) -> dict[int, int]:
        """Failing-cell count per row (rows with fails only)."""
        return dict(Counter(r for r, _ in self.fails))

    def col_counts(self) -> dict[int, int]:
        """Failing-cell count per column (columns with fails only)."""
        return dict(Counter(c for _, c in self.fails))

    @property
    def failing_rows(self) -> list[int]:
        return sorted({r for r, _ in self.fails})

    @property
    def failing_cols(self) -> list[int]:
        return sorted({c for _, c in self.fails})

    def without_lines(self, rows=(), cols=()) -> "FailBitmap":
        """The bitmap with the given rows/columns repaired (removed)."""
        rows, cols = set(rows), set(cols)
        return FailBitmap(
            self.rows,
            self.cols,
            frozenset((r, c) for r, c in self.fails if r not in rows and c not in cols),
        )

    def to_dict(self) -> dict:
        """JSON-native bitmap statistics (not the raw cell list — that is
        O(array) for line defects; stats are what reports need)."""
        row_counts = self.row_counts()
        col_counts = self.col_counts()
        return {
            "rows": self.rows,
            "cols": self.cols,
            "fail_count": self.fail_count,
            "failing_rows": len(row_counts),
            "failing_cols": len(col_counts),
            "max_row_fails": max(row_counts.values(), default=0),
            "max_col_fails": max(col_counts.values(), default=0),
        }

    def render(self, max_dim: int = 32) -> str:
        """ASCII picture for small bitmaps (``.`` pass, ``X`` fail)."""
        if self.rows > max_dim or self.cols > max_dim:
            return (
                f"{self.rows}x{self.cols} bitmap, {self.fail_count} failing cells "
                f"in {len(self.row_counts())} rows / {len(self.col_counts())} columns"
            )
        grid = [
            "".join("X" if (r, c) in self.fails else "." for c in range(self.cols))
            for r in range(self.rows)
        ]
        return "\n".join(grid)
