"""Memory diagnosis & repair: the detect → diagnose → repair loop.

BRAINS detects memory faults; this package turns detection into yield.
A March run in diagnosis mode emits a row×column :class:`FailBitmap`,
must-repair analysis plus a registered allocation solver (``exact``
branch-and-bound or the ``greedy`` essential-spare-pivoting heuristic)
maps it onto the spare rows/columns in the memory's
:class:`repro.soc.RedundancySpec`, the BISR area model prices the fuse
registers and comparators, and the Monte-Carlo engine scores repair
rate and effective yield over sampled chip populations.
"""

from repro.repair.allocate import (
    MustRepairResult,
    RepairSolution,
    must_repair,
    solve_exact,
    solve_greedy,
)
from repro.repair.analysis import (
    AnalyzeRepair,
    MemoryRepairInfo,
    RepairAnalysis,
    analyze_soc_repair,
)
from repro.repair.bitmap import FailBitmap
from repro.repair.montecarlo import (
    Defect,
    DefectModel,
    RepairRateResult,
    defect_bitmap,
    diagnose_defects,
    estimate_repair_rate,
    sample_defects,
)
from repro.repair.redundancy import (
    DEFAULT_REDUNDANCY,
    bisr_gates,
    bisr_report,
    diagnosis_geometry,
)
from repro.repair.registry import (
    available_allocators,
    get_allocator,
    register_allocator,
    resolve_allocation,
)
from repro.repair.service import (
    REPAIR_REPORT_SCHEMA,
    render_repair_report,
    repair_report,
)

__all__ = [
    "AnalyzeRepair",
    "DEFAULT_REDUNDANCY",
    "REPAIR_REPORT_SCHEMA",
    "Defect",
    "DefectModel",
    "FailBitmap",
    "MemoryRepairInfo",
    "MustRepairResult",
    "RepairAnalysis",
    "RepairRateResult",
    "RepairSolution",
    "analyze_soc_repair",
    "available_allocators",
    "bisr_gates",
    "bisr_report",
    "defect_bitmap",
    "diagnose_defects",
    "diagnosis_geometry",
    "estimate_repair_rate",
    "get_allocator",
    "must_repair",
    "register_allocator",
    "render_repair_report",
    "repair_report",
    "resolve_allocation",
    "sample_defects",
    "solve_exact",
    "solve_greedy",
]
