"""The ``AnalyzeRepair`` pipeline stage and its result artifact.

An optional box after BRAINS in the Fig.-1 flow: given the compiled
memories, size the BISR hardware (fuse registers + comparators feed the
DFT-area report) and run a seeded Monte-Carlo repair-rate estimate.
Opt in per platform (``SteacConfig(analyze_repair=True)``) or per flow
(``Pipeline.with_repair()``); the default flow is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import FlowContext, Stage
from repro.repair.montecarlo import RepairRateResult, estimate_repair_rate
from repro.repair.redundancy import DEFAULT_REDUNDANCY, bisr_gates, diagnosis_geometry
from repro.soc.memory import MemorySpec, RedundancySpec
from repro.util import Table, format_gates


@dataclass
class MemoryRepairInfo:
    """Repair-relevant view of one memory."""

    name: str
    geometry: str
    rows: int
    cols: int
    spare_rows: int
    spare_cols: int
    bisr_gates: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "geometry": self.geometry,
            "rows": self.rows,
            "cols": self.cols,
            "spare_rows": self.spare_rows,
            "spare_cols": self.spare_cols,
            "bisr_gates": round(self.bisr_gates, 1),
        }


@dataclass
class RepairAnalysis:
    """Everything the repair stage produces for one SOC."""

    memories: list[MemoryRepairInfo] = field(default_factory=list)
    monte_carlo: RepairRateResult = field(default_factory=RepairRateResult)
    allocator: str = "greedy"

    @property
    def bisr_gates_total(self) -> float:
        return sum(m.bisr_gates for m in self.memories)

    def to_dict(self) -> dict:
        return {
            "allocator": self.allocator,
            "bisr_gates": round(self.bisr_gates_total, 1),
            "memories": [m.to_dict() for m in self.memories],
            "monte_carlo": self.monte_carlo.to_dict(),
        }

    def render(self) -> str:
        table = Table(
            ["Memory", "Geometry", "Spares", "BISR gates"],
            title="Redundancy and BISR hardware",
        )
        for info in self.memories:
            table.add_row(
                [
                    info.name,
                    info.geometry,
                    f"{info.spare_rows}R+{info.spare_cols}C",
                    f"{info.bisr_gates:.0f}",
                ]
            )
        table.add_row(["Total", "", "", format_gates(self.bisr_gates_total)])
        return "\n".join([table.render(), "", self.monte_carlo.render()])


def analyze_soc_repair(
    memories: list[MemorySpec],
    *,
    trials: int = 200,
    seed: int = 7,
    allocator: str = "greedy",
    default_spares: RedundancySpec = DEFAULT_REDUNDANCY,
    workers: int = 0,
    model_rows: int = 64,
) -> RepairAnalysis:
    """Size BISR hardware and estimate the repair rate for ``memories``."""
    infos = []
    for spec in memories:
        spares = spec.redundancy if spec.redundancy is not None else default_spares
        rows, cols = diagnosis_geometry(spec, model_rows)
        infos.append(
            MemoryRepairInfo(
                name=spec.name,
                geometry=spec.describe(),
                rows=rows,
                cols=cols,
                spare_rows=spares.spare_rows,
                spare_cols=spares.spare_cols,
                bisr_gates=bisr_gates(spec, spares),
            )
        )
    rate = estimate_repair_rate(
        memories,
        trials=trials,
        seed=seed,
        workers=workers,
        allocator=allocator,
        default_spares=default_spares,
        model_rows=model_rows,
    )
    return RepairAnalysis(memories=infos, monte_carlo=rate, allocator=allocator)


class AnalyzeRepair(Stage):
    """Memory diagnosis & repair analysis (optional, after BRAINS).

    Reads ``soc`` and ``config``; produces ``ctx.repair``.  A chip with
    no memories leaves the artifact None.  Runs serial inside the stage
    — pipeline-level batching (``integrate_many``) already parallelizes
    across SOCs, and nesting process pools inside worker threads is not
    worth the fork overhead for the default 200 trials.
    """

    name = "analyze_repair"

    def execute(self, ctx: FlowContext) -> None:
        if not ctx.soc.memories:
            return
        config = ctx.config
        ctx.repair = analyze_soc_repair(
            ctx.soc.memories,
            trials=config.repair_trials,
            seed=config.repair_seed,
            allocator=config.repair_allocator,
        )
