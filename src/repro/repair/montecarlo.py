"""Monte-Carlo repair-rate estimation: inject → diagnose → repair → score.

The closed-loop benchmark the repair subsystem exists for: sample
defective chips from a defect-density model, run redundancy allocation
on every failing memory, and report raw yield, repair rate, and
effective (post-repair) yield over thousands of chips — the
inject-then-measure methodology of SAIBERSOC applied to memory repair.

Defect counts per array follow a Poisson law at ``defects_per_mbit``
(scaled by the memory's *true* capacity), or a clustered
negative-binomial law when ``clustering_alpha`` is set (Stapper's model:
Poisson with a Gamma-mixed rate — small alpha = heavy clustering).
Each defect is a single cell, an adjacent coupling pair, or a full
row/column line; line defects are what make spare allocation a real
problem.

Trials are seeded per-index, so results are bit-identical for any
worker count, and the fan-out uses **processes** (the trial loop is
pure CPU-bound Python).  ``benchmarks/bench_repair_rate.py`` measures
the speedup over the serial loop.
"""

from __future__ import annotations

import math
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.bist.faults import InversionCouplingFault, StuckAtFault
from repro.bist.march import MarchTest
from repro.bist.memory_model import FaultModel, FaultyMemory
from repro.repair.bitmap import FailBitmap
from repro.repair.redundancy import diagnosis_geometry
from repro.repair.registry import resolve_allocation
from repro.soc.memory import MemorySpec, RedundancySpec
from repro.util import Table

#: Defect kinds and their default mix (single cells dominate; line
#: defects are rarer but stress the allocators).
DEFECT_KINDS = ("cell", "pair", "row", "col")


@dataclass(frozen=True)
class DefectModel:
    """Defect statistics for Monte-Carlo injection.

    Attributes:
        defects_per_mbit: mean defect count per megabit of true capacity.
        clustering_alpha: None = Poisson; a float = negative-binomial
            clustering parameter (smaller = more clustered).
        kind_weights: sampling weights for ``DEFECT_KINDS``.
    """

    defects_per_mbit: float = 0.3
    clustering_alpha: float | None = None
    kind_weights: tuple[float, float, float, float] = (0.80, 0.08, 0.06, 0.06)

    def mean_defects(self, spec: MemorySpec) -> float:
        return self.defects_per_mbit * spec.capacity_bits / 1_048_576.0

    def sample_count(self, spec: MemorySpec, rng: random.Random) -> int:
        lam = self.mean_defects(spec)
        if lam <= 0.0:
            return 0
        if self.clustering_alpha is not None:
            # Stapper clustering: Poisson with a Gamma(alpha, lam/alpha) rate
            lam = rng.gammavariate(self.clustering_alpha, lam / self.clustering_alpha)
            if lam <= 0.0:
                return 0
        return _poisson(lam, rng)


def _poisson(lam: float, rng: random.Random) -> int:
    """Knuth's product method (lam is a handful at most here)."""
    limit = math.exp(-lam)
    count, product = 0, rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count


@dataclass(frozen=True)
class Defect:
    """One physical defect, placed in modelled geometry."""

    kind: str  # one of DEFECT_KINDS
    row: int
    col: int

    def cells(self, rows: int, cols: int) -> set[tuple[int, int]]:
        """Failing coordinates this defect produces under a March test
        that detects all the platform's fault classes (March C- does)."""
        if self.kind == "row":
            return {(self.row, c) for c in range(cols)}
        if self.kind == "col":
            return {(r, self.col) for r in range(rows)}
        # "cell" and "pair" both fail at the defect's victim cell
        return {(self.row, self.col)}

    def to_faults(self, rows: int, cols: int) -> list[FaultModel]:
        """Behavioral fault models for the March-simulation path."""
        addr = self.row * cols + self.col
        if self.kind == "cell":
            return [StuckAtFault(addr, (self.row + self.col) & 1)]
        if self.kind == "pair":
            # aggressor is the horizontal neighbor, or the vertical one
            # on 1-bit-wide arrays; a 1x1 array has no neighbor at all,
            # so the defect degrades to a plain cell defect
            if cols > 1:
                aggressor = addr + 1 if self.col + 1 < cols else addr - 1
            elif rows > 1:
                aggressor = addr + cols if self.row + 1 < rows else addr - cols
            else:
                return [StuckAtFault(addr, 1)]
            return [InversionCouplingFault(aggressor, addr, rising=True)]
        if self.kind == "row":
            return [StuckAtFault(self.row * cols + c, c & 1) for c in range(cols)]
        return [StuckAtFault(r * cols + self.col, r & 1) for r in range(rows)]


def sample_defects(
    model: DefectModel, spec: MemorySpec, rng: random.Random, model_rows: int = 64
) -> list[Defect]:
    """Sample one array's defects in modelled geometry.

    The defect *count* uses the true capacity; *coordinates* land in the
    down-scaled ``diagnosis_geometry`` — the same true-statistics /
    modelled-array convention the BIST engine's behavioral runs use.
    """
    rows, cols = diagnosis_geometry(spec, model_rows)
    defects = []
    for _ in range(model.sample_count(spec, rng)):
        kind = rng.choices(DEFECT_KINDS, weights=model.kind_weights)[0]
        defects.append(Defect(kind, rng.randrange(rows), rng.randrange(cols)))
    return defects


def defect_bitmap(defects: list[Defect], rows: int, cols: int) -> FailBitmap:
    """Fold defects straight into a failure bitmap (the fast analytic
    path — equivalent to a March C- diagnosis run, which
    ``tests/test_repair_montecarlo.py`` verifies)."""
    fails: set[tuple[int, int]] = set()
    for defect in defects:
        fails |= defect.cells(rows, cols)
    return FailBitmap(rows, cols, frozenset(fails))


def diagnose_defects(
    defects: list[Defect], spec: MemorySpec, march: MarchTest, model_rows: int = 64
) -> FailBitmap:
    """The slow, closed-loop path: inject the defects' fault models into
    a behavioral memory and capture the bitmap from a real March run."""
    rows, cols = diagnosis_geometry(spec, model_rows)
    faults: list[FaultModel] = []
    for defect in defects:
        faults.extend(defect.to_faults(rows, cols))
    if not faults:
        return FailBitmap(rows, cols)
    memory = FaultyMemory(rows * cols, faults, seed=1)
    return FailBitmap.capture(memory, march, cols)


# -- the Monte-Carlo engine -------------------------------------------------


@dataclass
class RepairRateResult:
    """Tallies over a Monte-Carlo chip population."""

    trials: int = 0
    clean_chips: int = 0
    repaired_chips: int = 0
    dead_chips: int = 0
    total_defects: int = 0
    memory_fails: int = 0
    memory_repairs: int = 0
    seed: int = 0
    allocator: str = ""

    @property
    def failing_chips(self) -> int:
        return self.trials - self.clean_chips

    @property
    def raw_yield(self) -> float:
        """Fraction of chips with zero defects in any memory."""
        return self.clean_chips / self.trials if self.trials else 0.0

    @property
    def repair_rate(self) -> float:
        """Fraction of *failing* chips the spares fully repair."""
        return self.repaired_chips / self.failing_chips if self.failing_chips else 1.0

    @property
    def effective_yield(self) -> float:
        """Post-repair yield: clean plus repaired chips."""
        return (self.clean_chips + self.repaired_chips) / self.trials if self.trials else 0.0

    def merge(self, other: "RepairRateResult") -> None:
        """Fold a worker chunk's tallies into this result."""
        self.trials += other.trials
        self.clean_chips += other.clean_chips
        self.repaired_chips += other.repaired_chips
        self.dead_chips += other.dead_chips
        self.total_defects += other.total_defects
        self.memory_fails += other.memory_fails
        self.memory_repairs += other.memory_repairs

    def to_dict(self) -> dict:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "allocator": self.allocator,
            "clean_chips": self.clean_chips,
            "repaired_chips": self.repaired_chips,
            "dead_chips": self.dead_chips,
            "total_defects": self.total_defects,
            "memory_fails": self.memory_fails,
            "memory_repairs": self.memory_repairs,
            "raw_yield": round(self.raw_yield, 6),
            "repair_rate": round(self.repair_rate, 6),
            "effective_yield": round(self.effective_yield, 6),
        }

    def render(self) -> str:
        table = Table(
            ["Quantity", "Value"],
            title=f"Monte-Carlo repair rate ({self.trials} chips, "
            f"allocator {self.allocator or 'n/a'})",
        )
        table.add_row(["raw yield", f"{100 * self.raw_yield:.1f}%"])
        table.add_row(["repair rate", f"{100 * self.repair_rate:.1f}%"])
        table.add_row(["effective yield", f"{100 * self.effective_yield:.1f}%"])
        table.add_row(["defects injected", self.total_defects])
        table.add_row(
            ["failing memories repaired", f"{self.memory_repairs}/{self.memory_fails}"]
        )
        return table.render()


def _trial_seed(seed: int, index: int) -> int:
    return seed * 1_000_003 + index


def _run_trials(
    memories: list[tuple[MemorySpec, RedundancySpec]],
    model: DefectModel,
    allocator: str,
    seed: int,
    start: int,
    count: int,
    model_rows: int,
) -> RepairRateResult:
    """Run trials [start, start+count) — the per-process work unit.

    Every trial re-seeds from its global index, so tallies are identical
    no matter how trials are chunked across workers.
    """
    result = RepairRateResult()
    geometries = [diagnosis_geometry(spec, model_rows) for spec, _ in memories]
    for index in range(start, start + count):
        rng = random.Random(_trial_seed(seed, index))
        chip_failed = False
        chip_repairable = True
        for (spec, spares), (rows, cols) in zip(memories, geometries):
            defects = sample_defects(model, spec, rng, model_rows)
            result.total_defects += len(defects)
            if not defects:
                continue
            chip_failed = True
            result.memory_fails += 1
            solution = resolve_allocation(
                allocator, defect_bitmap(defects, rows, cols), spares
            )
            if solution.repairable:
                result.memory_repairs += 1
            else:
                chip_repairable = False
        result.trials += 1
        if not chip_failed:
            result.clean_chips += 1
        elif chip_repairable:
            result.repaired_chips += 1
        else:
            result.dead_chips += 1
    return result


def estimate_repair_rate(
    memories: list[MemorySpec],
    *,
    trials: int = 1000,
    seed: int = 7,
    workers: int = 0,
    allocator: str = "greedy",
    model: DefectModel | None = None,
    default_spares: RedundancySpec | None = None,
    model_rows: int = 64,
) -> RepairRateResult:
    """Monte-Carlo repair-rate estimation over a set of memories.

    Args:
        memories: the chip's embedded SRAMs (e.g. ``soc.memories``).
        trials: sampled chips.
        seed: base seed; per-trial seeds derive from it, so results are
            reproducible and independent of ``workers``.
        workers: 0 or 1 = in-process serial loop; N>1 = that many
            processes, trials chunked evenly.
        allocator: registry name of the allocation solver.
        model: defect statistics (default :class:`DefectModel`).
        default_spares: redundancy applied to memories whose spec has
            none (None = such memories are unrepairable when they fail).
        model_rows: word-line cap for the modelled arrays.
    """
    if trials <= 0:
        raise ValueError(f"trial count must be positive, got {trials}")
    model = model or DefectModel()
    pairs = [
        (spec, spec.redundancy or default_spares or RedundancySpec())
        for spec in memories
    ]
    result = RepairRateResult(seed=seed, allocator=allocator)
    if workers <= 1:
        chunk = _run_trials(pairs, model, allocator, seed, 0, trials, model_rows)
        result.merge(chunk)
        return result
    workers = min(workers, trials)
    bounds = [(trials * i) // workers for i in range(workers + 1)]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _run_trials,
                pairs,
                model,
                allocator,
                seed,
                bounds[i],
                bounds[i + 1] - bounds[i],
                model_rows,
            )
            for i in range(workers)
            if bounds[i + 1] > bounds[i]
        ]
        for future in futures:
            result.merge(future.result())
    return result
