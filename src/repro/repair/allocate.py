"""Redundancy allocation: map a failure bitmap onto spare rows/columns.

Two phases, following the classical memory-repair literature:

* **must-repair** — a row with more failing cells than the remaining
  spare columns can only be fixed by a spare row (and symmetrically for
  columns).  Iterated to a fixpoint, this prunes the problem and often
  solves it outright; it can also prove the bitmap unrepairable early.
* **final allocation** — the leftover sparse fails form a vertex-cover
  problem (NP-complete in general).  Two solvers ship: ``exact``, a
  branch-and-bound that is optimal on the small post-must-repair
  residue, and ``greedy``, an essential-spare-pivoting heuristic that is
  linear-ish and good enough for Monte-Carlo volume.

Solvers register by name in :mod:`repro.repair.registry`, mirroring the
scheduling-strategy registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.repair.bitmap import FailBitmap
from repro.soc.memory import RedundancySpec


@dataclass(frozen=True)
class RepairSolution:
    """Outcome of redundancy allocation for one bitmap.

    ``rows`` / ``cols`` are the line indices replaced by spares (must-
    repair assignments included).  ``nodes`` counts branch-and-bound
    nodes for the exact solver (0 for the heuristic).
    """

    solver: str
    repairable: bool
    rows: tuple[int, ...] = ()
    cols: tuple[int, ...] = ()
    nodes: int = 0

    @property
    def spares_used(self) -> int:
        return len(self.rows) + len(self.cols)

    def to_dict(self) -> dict:
        return {
            "solver": self.solver,
            "repairable": self.repairable,
            "rows": list(self.rows),
            "cols": list(self.cols),
            "spares_used": self.spares_used,
        }


@dataclass
class MustRepairResult:
    """Fixpoint of must-repair analysis."""

    rows: set[int] = field(default_factory=set)
    cols: set[int] = field(default_factory=set)
    residual: FailBitmap | None = None
    feasible: bool = True


def must_repair(bitmap: FailBitmap, spares: RedundancySpec) -> MustRepairResult:
    """Iterate the must-repair rules to a fixpoint.

    A row whose fail count exceeds the spare columns still available
    *must* take a spare row; repairing it changes the column counts, so
    the rules iterate until nothing new fires.  ``feasible=False`` means
    must-repair alone already needs more spares than exist.
    """
    result = MustRepairResult()
    current = bitmap
    while True:
        cols_left = spares.spare_cols - len(result.cols)
        rows_left = spares.spare_rows - len(result.rows)
        new_rows = {r for r, n in current.row_counts().items() if n > cols_left}
        new_cols = {c for c, n in current.col_counts().items() if n > rows_left}
        if not new_rows and not new_cols:
            break
        result.rows |= new_rows
        result.cols |= new_cols
        if len(result.rows) > spares.spare_rows or len(result.cols) > spares.spare_cols:
            result.feasible = False
            result.residual = current.without_lines(new_rows, new_cols)
            return result
        current = current.without_lines(new_rows, new_cols)
    result.residual = current
    return result


def solve_exact(bitmap: FailBitmap, spares: RedundancySpec) -> RepairSolution:
    """Optimal allocation by branch-and-bound (registry name ``exact``).

    After must-repair, every remaining fail must be covered by a spare
    row or a spare column; branch on the two choices for the first
    uncovered fail, prune on exhausted spares and on the best solution
    found so far.  Optimal in spares used; intended for the small
    bitmaps that survive must-repair, not for full line defects.
    """
    pre = must_repair(bitmap, spares)
    if not pre.feasible:
        return RepairSolution("exact", False, tuple(sorted(pre.rows)), tuple(sorted(pre.cols)))
    nodes = 0
    best: tuple[frozenset[int], frozenset[int]] | None = None

    rows_budget = spares.spare_rows - len(pre.rows)
    cols_budget = spares.spare_cols - len(pre.cols)

    def recurse(fails: frozenset[tuple[int, int]], rows: frozenset[int], cols: frozenset[int]) -> None:
        nonlocal nodes, best
        nodes += 1
        if best is not None and len(rows) + len(cols) >= len(best[0]) + len(best[1]):
            return  # cannot beat the incumbent
        if not fails:
            best = (rows, cols)
            return
        r, c = min(fails)  # deterministic branch order
        if len(rows) < rows_budget:
            recurse(frozenset(f for f in fails if f[0] != r), rows | {r}, cols)
        if len(cols) < cols_budget:
            recurse(frozenset(f for f in fails if f[1] != c), rows, cols | {c})

    recurse(frozenset(pre.residual.fails), frozenset(), frozenset())
    if best is None:
        return RepairSolution(
            "exact", False, tuple(sorted(pre.rows)), tuple(sorted(pre.cols)), nodes
        )
    return RepairSolution(
        "exact",
        True,
        tuple(sorted(pre.rows | best[0])),
        tuple(sorted(pre.cols | best[1])),
        nodes,
    )


def solve_greedy(bitmap: FailBitmap, spares: RedundancySpec) -> RepairSolution:
    """Essential-spare-pivoting heuristic (registry name ``greedy``).

    After must-repair: fails that are alone in both their row and their
    column (essential/orphan fails) take whichever spare type is more
    plentiful; otherwise the row or column with the most remaining fails
    is repaired next.  Fast and allocation-quality-competitive, but not
    guaranteed to find a repair the exact solver would.
    """
    pre = must_repair(bitmap, spares)
    rows, cols = set(pre.rows), set(pre.cols)
    if not pre.feasible:
        return RepairSolution("greedy", False, tuple(sorted(rows)), tuple(sorted(cols)))
    current = pre.residual
    while not current.is_clear:
        rows_left = spares.spare_rows - len(rows)
        cols_left = spares.spare_cols - len(cols)
        if rows_left == 0 and cols_left == 0:
            return RepairSolution("greedy", False, tuple(sorted(rows)), tuple(sorted(cols)))
        row_counts = current.row_counts()
        col_counts = current.col_counts()
        orphan = next(
            (
                (r, c)
                for r, c in sorted(current.fails)
                if row_counts[r] == 1 and col_counts[c] == 1
            ),
            None,
        )
        if orphan is not None:
            r, c = orphan
            # the orphan costs one spare either way; spend the spare
            # type with more slack so pivot lines keep their options
            if rows_left >= cols_left and rows_left > 0:
                rows.add(r)
                current = current.without_lines(rows=(r,))
            else:
                cols.add(c)
                current = current.without_lines(cols=(c,))
            continue
        best_row = max(row_counts, key=lambda r: (row_counts[r], -r)) if rows_left else None
        best_col = max(col_counts, key=lambda c: (col_counts[c], -c)) if cols_left else None
        if best_col is None or (
            best_row is not None and row_counts[best_row] >= col_counts[best_col]
        ):
            rows.add(best_row)
            current = current.without_lines(rows=(best_row,))
        else:
            cols.add(best_col)
            current = current.without_lines(cols=(best_col,))
    return RepairSolution("greedy", True, tuple(sorted(rows)), tuple(sorted(cols)))
