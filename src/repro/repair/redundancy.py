"""BISR hardware area model: fuse registers and address comparators.

Built-in self-repair logic sits between the address decoder and the
array: one fuse register per spare line holds the failing address (plus
a valid bit), and an equality comparator per spare steers matching
accesses onto the spare line.  The model below counts that hardware in
NAND2-equivalent gates, consistent with the rest of the platform's area
accounting (:mod:`repro.netlist.area`), so repair overhead lands in the
same DFT-area report as the test controller and TAM multiplexer.
"""

from __future__ import annotations

from repro.netlist.area import AreaReport
from repro.soc.memory import MemorySpec, RedundancySpec

#: Spares assumed when a memory spec carries no redundancy of its own
#: (2 spare rows + 2 spare columns is a common commodity-SRAM choice).
DEFAULT_REDUNDANCY = RedundancySpec(spare_rows=2, spare_cols=2)

#: NAND2 equivalents per fuse-register bit (fuse latch + shift plumbing).
GATES_PER_FUSE_BIT = 6.0
#: NAND2 equivalents per comparator bit (XNOR into the match AND-tree).
GATES_PER_COMPARE_BIT = 3.5
#: Fixed steering/valid logic per spare line (mux legs, enable).
GATES_PER_SPARE_LINE = 12.0


def diagnosis_geometry(spec: MemorySpec, model_rows: int = 64) -> tuple[int, int]:
    """The ``(rows, cols)`` the behavioral model uses for ``spec``.

    Arrays are modelled at ``min(words, model_rows)`` word lines to keep
    March simulation fast — the same down-scaling the BIST engine's
    behavioral runs use — with the true word width as the column count.
    """
    return min(spec.words, model_rows), spec.bits


def row_address_bits(spec: MemorySpec) -> int:
    """Address bits a spare-row fuse register must store."""
    return spec.address_bits


def col_address_bits(spec: MemorySpec) -> int:
    """Address bits a spare-column fuse register must store."""
    return max(1, (spec.bits - 1).bit_length())


def bisr_gates(spec: MemorySpec, redundancy: RedundancySpec | None = None) -> float:
    """BISR hardware for one memory, in NAND2 equivalents.

    Per spare line: a fuse register of (address bits + 1 valid bit), an
    equality comparator over the address bits, and fixed steering logic.
    A memory without spares needs no BISR hardware at all.
    """
    red = redundancy if redundancy is not None else spec.redundancy
    if red is None or not red.has_spares:
        return 0.0
    total = 0.0
    for count, addr_bits in (
        (red.spare_rows, row_address_bits(spec)),
        (red.spare_cols, col_address_bits(spec)),
    ):
        per_line = (
            GATES_PER_FUSE_BIT * (addr_bits + 1)
            + GATES_PER_COMPARE_BIT * addr_bits
            + GATES_PER_SPARE_LINE
        )
        total += count * per_line
    return total


def bisr_report(
    memories: list[MemorySpec],
    chip_gates: float,
    default: RedundancySpec | None = None,
) -> AreaReport:
    """Per-memory BISR area report against the chip's gate count.

    ``default`` (e.g. :data:`DEFAULT_REDUNDANCY`) applies to memories
    whose spec carries no redundancy; None leaves them unrepaired.
    """
    report = AreaReport(chip_gates=chip_gates)
    for spec in memories:
        red = spec.redundancy if spec.redundancy is not None else default
        gates = bisr_gates(spec, red)
        if gates > 0.0 and red is not None:
            report.add(f"BISR {spec.name}", gates, note=red.describe())
    return report
