"""Recursive-descent parser for the STIL subset.

Grammar (uniform; see :mod:`repro.stil.ast`)::

    file      := "STIL" WORD ";" statement*
    statement := label? head body
    label     := (STRING | WORD) ":"
    head      := (WORD | STRING | ANN) arg*
    arg       := WORD | STRING | TICKED | "=" | "+"
    body      := ";" | "{" statement* "}"

Assignments are recognized when a ``=`` token appears among the args:
``"si0" = 0101 ;`` parses to an assignment statement.
"""

from __future__ import annotations

from repro.stil.ast import Statement, StilFile
from repro.stil.errors import StilError
from repro.stil.tokens import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_punct(self, value: str) -> Token:
        token = self.next()
        if token.kind != "PUNCT" or token.value != value:
            raise StilError(f"expected {value!r}, got {token.value!r}", token.line)
        return token

    def parse_file(self) -> StilFile:
        head = self.next()
        if head.kind != "WORD" or head.value != "STIL":
            raise StilError("file must start with 'STIL <version>;'", head.line)
        version = self.next()
        if version.kind != "WORD":
            raise StilError("missing STIL version", version.line)
        self.expect_punct(";")
        statements = []
        while self.peek().kind != "EOF":
            statements.append(self.parse_statement())
        return StilFile(version=version.value, statements=statements)

    def parse_statement(self) -> Statement:
        token = self.next()
        if token.kind == "PUNCT":
            raise StilError(f"unexpected {token.value!r}", token.line)
        if token.kind == "ANN":
            return Statement(keyword="Ann", args=[token.value], line=token.line)
        keyword = token.value
        line = token.line
        args: list[str] = []
        is_assign = False
        while True:
            nxt = self.peek()
            if nxt.kind == "EOF":
                raise StilError("unexpected end of file in statement", nxt.line)
            if nxt.kind == "PUNCT":
                if nxt.value == ";":
                    self.next()
                    return Statement(keyword, args, None, is_assign, line)
                if nxt.value == "{":
                    self.next()
                    children = []
                    while not (self.peek().kind == "PUNCT" and self.peek().value == "}"):
                        if self.peek().kind == "EOF":
                            raise StilError("unclosed block", line)
                        children.append(self.parse_statement())
                    self.next()  # consume }
                    # optional trailing semicolon after a block
                    if self.peek().kind == "PUNCT" and self.peek().value == ";":
                        self.next()
                    return Statement(keyword, args, children, is_assign, line)
                if nxt.value == "=":
                    self.next()
                    is_assign = True
                    continue
                if nxt.value in "+:()":
                    self.next()
                    if nxt.value == ":":
                        # label: re-parse the real statement, remember label
                        inner = self.parse_statement()
                        inner.args = inner.args
                        return Statement(
                            keyword=inner.keyword,
                            args=inner.args,
                            children=inner.children,
                            is_assign=inner.is_assign,
                            line=line,
                        )
                    continue  # '+' in group expressions, parens ignored
                raise StilError(f"unexpected {nxt.value!r}", nxt.line)
            self.next()
            args.append(nxt.value)
            if nxt.kind == "ANN":
                # {* ... *} annotations are self-terminating
                return Statement(keyword, args, None, is_assign, line)


def parse(text: str) -> StilFile:
    """Parse STIL source text into a :class:`StilFile`."""
    return _Parser(tokenize(text)).parse_file()
