"""STIL writer: render a :class:`repro.soc.Core` (plus optional concrete
patterns) as a STIL file.

This is the format STEAC consumes — in the paper it is produced by
commercial ATPG tools; here it is produced by :mod:`repro.atpg` or by
this writer directly.  Core attributes STIL cannot express natively are
carried in standard ``Ann {* ... *}`` annotations:

* ``Header``: ``Ann {* core=<name> type=<hard|soft|legacy> gates=<n> *}``
* per-signal: ``Ann {* kind=<clock|reset|test_enable|scan_enable|test>
  [domain=<d>] *}``
* per-pattern block: ``Ann {* test=<scan|functional> power=<p>
  patterns=<n> *}`` — ``patterns`` lets a file declare a vector *count*
  without carrying vector *data* (used for the DSC case study, where the
  paper publishes counts only).

Scan-vector convention: each scan pattern is written as one
``Call "load_unload"`` carrying that vector's chain loads **and its own
expected unload response**, followed by one ``V`` with the PI/PO values
of the capture cycle.  (Real ATEs interleave vector *i*'s unload with
vector *i+1*'s load; the pattern translator performs that interleaving
when producing chip-level cycles.)
"""

from __future__ import annotations

from repro.patterns.core_patterns import CorePatternSet
from repro.soc.core import Core
from repro.soc.ports import SignalKind
from repro.soc.tests import CoreTest, TestKind

_KIND_TAGS = {
    SignalKind.CLOCK: "clock",
    SignalKind.RESET: "reset",
    SignalKind.TEST_ENABLE: "test_enable",
    SignalKind.SCAN_ENABLE: "scan_enable",
    SignalKind.TEST: "test",
}


# bit-expansion rules live with the SOC model so every consumer agrees
from repro.soc.bits import expand_port_bits, functional_signal_order  # noqa: F401


def _wrap(data: str, indent: str, width: int = 80) -> str:
    """Wrap long vector data across lines (the tokenizer rejoins it)."""
    if len(data) <= width:
        return data
    chunks = [data[i : i + width] for i in range(0, len(data), width)]
    return ("\n" + indent).join(chunks)


def _group_expr(names: list[str]) -> str:
    return " + ".join(f'"{n}"' for n in names)


def core_to_stil(core: Core, patterns: CorePatternSet | None = None) -> str:
    """Render ``core`` (and optional concrete ``patterns``) as STIL text."""
    lines: list[str] = ["STIL 1.0;", ""]
    # -- Header ------------------------------------------------------------
    lines.append("Header {")
    lines.append(f'   Title "{core.name} core test information";')
    lines.append('   Source "repro STIL writer";')
    lines.append(
        f"   Ann {{* core={core.name} type={core.core_type.value} "
        f"gates={core.gate_count} *}}"
    )
    lines.append("}")
    lines.append("")
    # -- Signals -----------------------------------------------------------
    lines.append("Signals {")
    for port in core.ports:
        direction = {"input": "In", "output": "Out", "inout": "InOut"}[port.direction.value]
        for bit_name in expand_port_bits(port):
            attrs: list[str] = []
            if port.kind is SignalKind.SCAN_IN:
                attrs.append("ScanIn;")
            elif port.kind is SignalKind.SCAN_OUT:
                attrs.append("ScanOut;")
            elif port.kind in _KIND_TAGS:
                ann = f"kind={_KIND_TAGS[port.kind]}"
                if port.clock_domain:
                    ann += f" domain={port.clock_domain}"
                attrs.append(f"Ann {{* {ann} *}}")
            if attrs:
                lines.append(f'   "{bit_name}" {direction} {{ {" ".join(attrs)} }}')
            else:
                lines.append(f'   "{bit_name}" {direction};')
    lines.append("}")
    lines.append("")
    # -- SignalGroups --------------------------------------------------------
    pi_order, po_order = functional_signal_order(core)
    si_names = [c.scan_in for c in core.scan_chains]
    so_names = [c.scan_out for c in core.scan_chains]
    lines.append("SignalGroups {")
    if pi_order:
        lines.append(f'   "_pi" = \'{_group_expr(pi_order)}\';')
    if po_order:
        lines.append(f'   "_po" = \'{_group_expr(po_order)}\';')
    if si_names:
        lines.append(f'   "_si" = \'{_group_expr(si_names)}\';')
        lines.append(f'   "_so" = \'{_group_expr(so_names)}\';')
    lines.append("}")
    lines.append("")
    # -- ScanStructures -------------------------------------------------------
    if core.scan_chains:
        lines.append("ScanStructures {")
        for chain in core.scan_chains:
            lines.append(f'   ScanChain "{chain.name}" {{')
            lines.append(f"      ScanLength {chain.length};")
            lines.append(f'      ScanIn "{chain.scan_in}";')
            lines.append(f'      ScanOut "{chain.scan_out}";')
            if chain.clock_domain:
                lines.append(f"      Ann {{* domain={chain.clock_domain} *}}")
            lines.append("   }")
        lines.append("}")
        lines.append("")
    # -- Timing ----------------------------------------------------------------
    lines.append("Timing {")
    lines.append('   WaveformTable "_default_wft" {')
    lines.append("      Period '100ns';")
    lines.append("      Waveforms {")
    for port in core.ports:
        if port.kind is SignalKind.CLOCK:
            lines.append(f'         "{port.name}" {{ P {{ \'0ns\' D; \'50ns\' U; \'80ns\' D; }} }}')
    lines.append("      }")
    lines.append("   }")
    lines.append("}")
    lines.append("")
    # -- Procedures ----------------------------------------------------------
    if core.scan_chains:
        se_ports = core.ports_of_kind(SignalKind.SCAN_ENABLE)
        lines.append("Procedures {")
        lines.append('   "load_unload" {')
        lines.append('      W "_default_wft";')
        for se in se_ports:
            lines.append(f'      V {{ "{se.name}" = 1; }}')
        lines.append('      Shift { V { "_si" = #; "_so" = #; } }')
        lines.append("   }")
        lines.append("}")
        lines.append("")
    # -- Pattern bursts ---------------------------------------------------------
    test_names = [t.name for t in core.tests]
    lines.append('PatternBurst "_burst" {')
    lines.append("   PatList {")
    for name in test_names:
        lines.append(f'      "{name}";')
    lines.append("   }")
    lines.append("}")
    lines.append("")
    lines.append('PatternExec { PatternBurst "_burst"; }')
    lines.append("")
    # -- Patterns -----------------------------------------------------------------
    for test in core.tests:
        lines.extend(_pattern_block(core, test, patterns))
        lines.append("")
    return "\n".join(lines)


def _pattern_block(core: Core, test: CoreTest, patterns: CorePatternSet | None) -> list[str]:
    lines = [f'Pattern "{test.name}" {{']
    lines.append('   W "_default_wft";')
    kind_tag = "scan" if test.kind is TestKind.SCAN else "functional"
    lines.append(
        f"   Ann {{* test={kind_tag} power={test.power} patterns={test.patterns} *}}"
    )
    if patterns is not None:
        if test.kind is TestKind.SCAN and patterns.scan_vectors:
            chain_by_name = {c.name: c for c in core.scan_chains}
            for vec in patterns.scan_vectors:
                lines.append('   Call "load_unload" {')
                for chain_name in patterns.chain_order:
                    chain = chain_by_name[chain_name]
                    load = vec.loads.get(chain_name, "")
                    unload = vec.unloads.get(chain_name, "")
                    if load:
                        lines.append(f'      "{chain.scan_in}" = {_wrap(load, "         ")};')
                    if unload:
                        lines.append(f'      "{chain.scan_out}" = {_wrap(unload, "         ")};')
                lines.append("   }")
                lines.append(_capture_v(vec.pi, vec.expected_po))
        elif test.kind is TestKind.FUNCTIONAL and patterns.functional_vectors:
            for vec in patterns.functional_vectors:
                lines.append(_capture_v(vec.pi, vec.expected_po))
    lines.append("}")
    return lines


def _capture_v(pi: str, expected_po: str) -> str:
    """Render the capture-cycle V statement, omitting empty groups."""
    assigns = []
    if pi:
        assigns.append(f'"_pi" = {_wrap(pi, "      ")};')
    if expected_po:
        assigns.append(f'"_po" = {_wrap(expected_po, "      ")};')
    return "   V { " + " ".join(assigns) + " }"
