"""Generic statement-tree AST for STIL.

STIL is a keyword-block language; rather than hard-coding one grammar per
block we parse everything into a uniform :class:`Statement` tree and let
:mod:`repro.stil.semantics` interpret the keywords it knows.  This keeps
the parser robust to constructs we don't model (Timing details, UserKeywords,
vendor blocks), which simply survive as generic subtrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class Statement:
    """One STIL statement.

    Three shapes share this node type:

    * **keyword statement**: ``ScanLength 1629;`` → ``keyword="ScanLength",
      args=["1629"]``, no children;
    * **block statement**: ``Signals { ... }`` → children hold the body;
    * **assignment**: ``"si0" = 0101;`` → ``keyword`` is the LHS name,
      ``is_assign=True`` and ``args`` holds the RHS tokens.

    ``args`` keeps raw token values in order (strings unquoted, ticked
    expressions unquoted).
    """

    keyword: str
    args: list[str] = field(default_factory=list)
    children: Optional[list["Statement"]] = None
    is_assign: bool = False
    line: int = 0

    @property
    def arg(self) -> str:
        """First argument (e.g. a block's name), or ``""``."""
        return self.args[0] if self.args else ""

    @property
    def rhs(self) -> str:
        """Assignment right-hand side joined to a single string."""
        return "".join(self.args)

    def find_all(self, keyword: str) -> Iterator["Statement"]:
        """Yield direct children with the given keyword."""
        for child in self.children or []:
            if child.keyword == keyword:
                yield child

    def find(self, keyword: str) -> Optional["Statement"]:
        """First direct child with the given keyword, or None."""
        return next(self.find_all(keyword), None)

    def assignments(self) -> dict[str, str]:
        """All direct assignment children as a name → value dict."""
        return {c.keyword: c.rhs for c in self.children or [] if c.is_assign}


@dataclass
class StilFile:
    """A parsed STIL file: the version and the top-level statements."""

    version: str
    statements: list[Statement] = field(default_factory=list)

    def find_all(self, keyword: str) -> Iterator[Statement]:
        """Yield top-level statements with the given keyword."""
        for stmt in self.statements:
            if stmt.keyword == keyword:
                yield stmt

    def find(self, keyword: str, name: str | None = None) -> Optional[Statement]:
        """First top-level statement with keyword (and block name)."""
        for stmt in self.find_all(keyword):
            if name is None or stmt.arg == name:
                return stmt
        return None
