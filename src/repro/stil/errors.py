"""STIL parsing errors."""

from __future__ import annotations


class StilError(ValueError):
    """Raised on malformed STIL input.

    Carries the 1-based source line where the problem was detected.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
