"""Tokenizer for the STIL (IEEE 1450) subset.

Produces a flat token stream; the parser builds the statement tree.
Token kinds:

* ``WORD`` — bare identifiers, numbers, and vector data (``Signals``,
  ``1.0``, ``0101XH``, ``#``);
* ``STRING`` — double-quoted signal/block names (quotes stripped);
* ``TICKED`` — single-quoted timing/group expressions (quotes stripped);
* ``ANN`` — ``{* ... *}`` annotation payloads (delimiters stripped);
* ``PUNCT`` — one of ``{ } ; : = + ( )``.

Comments (``//`` and ``/* */``) are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stil.errors import StilError

_PUNCT = set("{};:=+()")
_WORD_CHARS = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.[]\\#%!$-/")


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source line."""

    kind: str
    value: str
    line: int


def tokenize(text: str) -> list[Token]:
    """Tokenize STIL source text (raises :class:`StilError` on garbage)."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end == -1 else end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise StilError("unterminated block comment", line)
            line += text.count("\n", i, end)
            i = end + 2
            continue
        if text.startswith("{*", i):
            end = text.find("*}", i + 2)
            if end == -1:
                raise StilError("unterminated annotation", line)
            payload = text[i + 2 : end].strip()
            tokens.append(Token("ANN", payload, line))
            line += text.count("\n", i, end)
            i = end + 2
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end == -1:
                raise StilError("unterminated string", line)
            tokens.append(Token("STRING", text[i + 1 : end], line))
            line += text.count("\n", i, end)
            i = end + 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise StilError("unterminated quoted expression", line)
            tokens.append(Token("TICKED", text[i + 1 : end], line))
            line += text.count("\n", i, end)
            i = end + 1
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, line))
            i += 1
            continue
        if ch in _WORD_CHARS:
            j = i
            while j < n and text[j] in _WORD_CHARS:
                j += 1
            tokens.append(Token("WORD", text[i:j], line))
            i = j
            continue
        raise StilError(f"unexpected character {ch!r}", line)
    tokens.append(Token("EOF", "", line))
    return tokens
