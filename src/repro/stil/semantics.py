"""Semantic extraction: STIL AST → :class:`repro.soc.Core` + patterns.

This is the "STIL Parser" module of STEAC (paper Fig. 1): it digests each
IP's test information — "the IO ports, scan structure (number of scan
chains, length of each scan chain, etc.), and test vectors" — into the
platform's core model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.patterns.core_patterns import CorePatternSet, FunctionalVector, ScanVector
from repro.soc.core import Core, CoreType
from repro.soc.ports import Direction, Port, SignalKind
from repro.soc.scan import ScanChain
from repro.soc.tests import CoreTest, TestKind
from repro.stil.ast import Statement, StilFile
from repro.stil.errors import StilError
from repro.stil.parser import parse

_TAG_KINDS = {
    "clock": SignalKind.CLOCK,
    "reset": SignalKind.RESET,
    "test_enable": SignalKind.TEST_ENABLE,
    "scan_enable": SignalKind.SCAN_ENABLE,
    "test": SignalKind.TEST,
}

_DIRECTIONS = {"In": Direction.IN, "Out": Direction.OUT, "InOut": Direction.INOUT}


def parse_ann(payload: str) -> dict[str, str]:
    """Parse a ``key=value key=value`` annotation payload."""
    result: dict[str, str] = {}
    for token in payload.split():
        if "=" in token:
            key, _, value = token.partition("=")
            result[key] = value
    return result


@dataclass
class ExtractedCore:
    """Result of :func:`core_from_stil`: the core model plus any concrete
    pattern payloads the file carried."""

    core: Core
    patterns: CorePatternSet
    signal_groups: dict[str, list[str]] = field(default_factory=dict)


def _extract_signals(stil: StilFile) -> list[Port]:
    block = stil.find("Signals")
    if block is None:
        raise StilError("STIL file has no Signals block")
    ports: list[Port] = []
    for stmt in block.children or []:
        if stmt.keyword == "Ann":
            continue
        direction = _DIRECTIONS.get(stmt.arg)
        if direction is None:
            raise StilError(f"signal {stmt.keyword!r} has bad direction {stmt.arg!r}", stmt.line)
        kind = SignalKind.FUNCTIONAL
        domain = None
        for child in stmt.children or []:
            if child.keyword == "ScanIn":
                kind = SignalKind.SCAN_IN
            elif child.keyword == "ScanOut":
                kind = SignalKind.SCAN_OUT
            elif child.keyword == "Ann":
                tags = parse_ann(child.arg)
                if "kind" in tags:
                    mapped = _TAG_KINDS.get(tags["kind"])
                    if mapped is None:
                        raise StilError(f"unknown signal kind {tags['kind']!r}", child.line)
                    kind = mapped
                domain = tags.get("domain", domain)
        ports.append(Port(name=stmt.keyword, direction=direction, kind=kind, clock_domain=domain))
    return ports


def _extract_groups(stil: StilFile) -> dict[str, list[str]]:
    groups: dict[str, list[str]] = {}
    block = stil.find("SignalGroups")
    for stmt in (block.children or []) if block else []:
        if not stmt.is_assign:
            continue
        names = [part.strip().strip('"') for part in stmt.rhs.split("+")]
        groups[stmt.keyword] = [n for n in names if n]
    return groups


def _extract_chains(stil: StilFile) -> list[ScanChain]:
    chains: list[ScanChain] = []
    block = stil.find("ScanStructures")
    for stmt in (block.children or []) if block else []:
        if stmt.keyword != "ScanChain":
            continue
        length_stmt = stmt.find("ScanLength")
        si_stmt = stmt.find("ScanIn")
        so_stmt = stmt.find("ScanOut")
        if length_stmt is None or si_stmt is None or so_stmt is None:
            raise StilError(f"scan chain {stmt.arg!r} is missing fields", stmt.line)
        domain = None
        ann = stmt.find("Ann")
        if ann is not None:
            domain = parse_ann(ann.arg).get("domain")
        chains.append(
            ScanChain(
                name=stmt.arg,
                length=int(length_stmt.arg),
                scan_in=si_stmt.arg,
                scan_out=so_stmt.arg,
                clock_domain=domain,
            )
        )
    return chains


def _pattern_order(stil: StilFile) -> list[str]:
    """Pattern names in execution order (PatternExec → burst → PatList),
    falling back to declaration order."""
    exec_block = stil.find("PatternExec")
    if exec_block is not None:
        burst_ref = exec_block.find("PatternBurst")
        if burst_ref is not None:
            burst = stil.find("PatternBurst", burst_ref.arg)
            if burst is not None:
                patlist = burst.find("PatList")
                if patlist is not None:
                    return [c.keyword for c in patlist.children or []]
    return [p.arg for p in stil.find_all("Pattern")]


def _extract_pattern_block(
    block: Statement,
    chains: list[ScanChain],
    patterns: CorePatternSet,
) -> tuple[TestKind, float, int]:
    """Walk one Pattern block; append vectors to ``patterns``.

    Returns (test kind, power, declared pattern count).
    """
    kind = TestKind.FUNCTIONAL
    power = 0.0
    declared = 0
    chain_by_si = {c.scan_in: c for c in chains}
    chain_by_so = {c.scan_out: c for c in chains}
    pending_call: dict[str, str] | None = None
    extracted = 0

    def finish_scan_vector(v_stmt: Statement | None) -> None:
        nonlocal pending_call, extracted
        if pending_call is None:
            return
        loads: dict[str, str] = {}
        unloads: dict[str, str] = {}
        for sig, data in pending_call.items():
            if sig in chain_by_si:
                loads[chain_by_si[sig].name] = data
            elif sig in chain_by_so:
                unloads[chain_by_so[sig].name] = data.upper()
        assigns = v_stmt.assignments() if v_stmt is not None else {}
        patterns.scan_vectors.append(
            ScanVector(
                loads=loads,
                pi=assigns.get("_pi", ""),
                expected_po=assigns.get("_po", "").upper(),
                unloads=unloads,
            )
        )
        pending_call = None
        extracted += 1

    for stmt in block.children or []:
        if stmt.keyword == "Ann":
            tags = parse_ann(stmt.arg)
            if tags.get("test") == "scan":
                kind = TestKind.SCAN
            power = float(tags.get("power", power))
            declared = int(tags.get("patterns", declared))
        elif stmt.keyword == "Call":
            finish_scan_vector(None)  # Call without a V closes the previous
            pending_call = stmt.assignments()
            kind = TestKind.SCAN
        elif stmt.keyword == "V":
            if pending_call is not None:
                finish_scan_vector(stmt)
            else:
                assigns = stmt.assignments()
                patterns.functional_vectors.append(
                    FunctionalVector(
                        pi=assigns.get("_pi", ""),
                        expected_po=assigns.get("_po", "").upper(),
                    )
                )
                extracted += 1
    finish_scan_vector(None)
    return kind, power, declared if declared else extracted


def core_from_stil(text_or_ast: str | StilFile) -> ExtractedCore:
    """Extract the core test information from a STIL file.

    Accepts raw text or a pre-parsed :class:`StilFile`.  Returns the core
    (ports, chains, tests with counts) and whatever concrete vectors the
    file carried.
    """
    stil = parse(text_or_ast) if isinstance(text_or_ast, str) else text_or_ast
    ports = _extract_signals(stil)
    groups = _extract_groups(stil)
    chains = _extract_chains(stil)

    name = "core"
    core_type = CoreType.HARD
    gates = 0
    header = stil.find("Header")
    if header is not None:
        for ann in header.find_all("Ann"):
            tags = parse_ann(ann.arg)
            name = tags.get("core", name)
            gates = int(tags.get("gates", gates))
            if "type" in tags:
                core_type = CoreType(tags["type"])

    patterns = CorePatternSet(
        core_name=name,
        pi_order=groups.get("_pi", []),
        po_order=groups.get("_po", []),
        chain_order=[c.name for c in chains],
    )

    tests: list[CoreTest] = []
    pattern_blocks = {p.arg: p for p in stil.find_all("Pattern")}
    for pat_name in _pattern_order(stil):
        block = pattern_blocks.get(pat_name)
        if block is None:
            continue
        kind, power, count = _extract_pattern_block(block, chains, patterns)
        tests.append(CoreTest(name=pat_name, kind=kind, patterns=count, power=power))

    core = Core(
        name=name,
        core_type=core_type,
        ports=ports,
        scan_chains=chains,
        tests=tests,
        gate_count=gates,
        wrapped=True,
    )
    return ExtractedCore(core=core, patterns=patterns, signal_groups=groups)
