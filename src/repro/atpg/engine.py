"""Combinational evaluation engines for ATPG.

Two evaluators over the same levelized gate order:

* :class:`CombEngine` — 3-valued (0/1/X) single-pattern evaluation with
  optional net forcing (the faulty machine pins the fault site); PODEM
  runs a good and a faulty engine side by side.
* :class:`ParallelSim` — bit-parallel 2-valued evaluation packing up to
  64 patterns per Python int, used for fault simulation with fault
  dropping.
"""

from __future__ import annotations

from repro.netlist.cells import LIBRARY, X
from repro.netlist.netlist import Module


def _levelize(module: Module):
    """Topological order of (instance, cell); rejects sequential cells."""
    comb = []
    for inst in module.instances:
        cell = LIBRARY.get(inst.ref)
        if cell is None:
            raise ValueError(f"{inst.name}: not a library cell ({inst.ref}); flatten first")
        if cell.sequential:
            raise ValueError(
                f"{inst.name}: sequential cell {inst.ref} in combinational view; "
                "use repro.atpg.scan.combinational_view first"
            )
        comb.append((inst, cell))
    driver_of = {}
    for inst, cell in comb:
        net = inst.conns.get(cell.output)
        if net is not None:
            driver_of[net] = inst.name
    indeg = {}
    deps: dict[str, list] = {}
    for inst, cell in comb:
        count = 0
        for pin in cell.inputs:
            net = inst.conns.get(pin)
            if net in driver_of:
                count += 1
                deps.setdefault(driver_of[net], []).append((inst, cell))
        indeg[inst.name] = count
    ready = [(i, c) for i, c in comb if indeg[i.name] == 0]
    order = []
    while ready:
        inst, cell = ready.pop()
        order.append((inst, cell))
        for succ in deps.get(inst.name, []):
            indeg[succ[0].name] -= 1
            if indeg[succ[0].name] == 0:
                ready.append(succ)
    if len(order) != len(comb):
        raise ValueError("combinational loop in ATPG view")
    return order


class CombEngine:
    """3-valued evaluator with optional stuck-net forcing."""

    def __init__(self, module: Module):
        self.module = module
        self.order = _levelize(module)
        self.inputs = module.input_ports
        self.outputs = module.output_ports

    def evaluate(
        self,
        pi_values: dict[str, int],
        force: tuple[str, int] | None = None,
    ) -> dict[str, int]:
        """Evaluate all nets; unassigned inputs are X.  ``force`` pins a
        net to a value regardless of its driver (the stuck fault)."""
        values: dict[str, int] = {net: X for net in self.module.nets}
        for pin in self.inputs:
            values[pin] = pi_values.get(pin, X)
        if force is not None and force[0] in values:
            values[force[0]] = force[1]
        for inst, cell in self.order:
            out_net = inst.conns.get(cell.output)
            if out_net is None:
                continue
            if force is not None and out_net == force[0]:
                continue  # stuck: driver overridden
            args = [values.get(inst.conns.get(pin, ""), X) for pin in cell.inputs]
            values[out_net] = cell.func(*args)
        return values


_MASK = (1 << 64) - 1


class ParallelSim:
    """64-way bit-parallel 2-valued fault simulator."""

    def __init__(self, module: Module):
        self.module = module
        self.order = _levelize(module)
        self.inputs = module.input_ports
        self.outputs = module.output_ports

    def _eval(self, pi_words: dict[str, int], force: tuple[str, int] | None) -> dict[str, int]:
        values: dict[str, int] = {}
        for pin in self.inputs:
            values[pin] = pi_words.get(pin, 0) & _MASK
        if force is not None:
            values[force[0]] = _MASK if force[1] else 0
        for inst, cell in self.order:
            out_net = inst.conns.get(cell.output)
            if out_net is None:
                continue
            if force is not None and out_net == force[0]:
                continue
            a = [values.get(inst.conns.get(p, ""), 0) for p in cell.inputs]
            name = cell.name
            if name == "INV":
                v = ~a[0]
            elif name == "BUF":
                v = a[0]
            elif name == "NAND2":
                v = ~(a[0] & a[1])
            elif name == "NAND3":
                v = ~(a[0] & a[1] & a[2])
            elif name == "NOR2":
                v = ~(a[0] | a[1])
            elif name == "NOR3":
                v = ~(a[0] | a[1] | a[2])
            elif name == "AND2":
                v = a[0] & a[1]
            elif name == "AND3":
                v = a[0] & a[1] & a[2]
            elif name == "OR2":
                v = a[0] | a[1]
            elif name == "OR3":
                v = a[0] | a[1] | a[2]
            elif name == "XOR2":
                v = a[0] ^ a[1]
            elif name == "XNOR2":
                v = ~(a[0] ^ a[1])
            elif name == "MUX2":
                d0, d1, s = a
                v = (d0 & ~s) | (d1 & s)
            elif name == "TIE0":
                v = 0
            elif name == "TIE1":
                v = _MASK
            else:
                raise ValueError(f"no parallel model for cell {name}")
            values[out_net] = v & _MASK
        return values

    def run(self, pi_words: dict[str, int], force: tuple[str, int] | None = None) -> dict[str, int]:
        """Evaluate a packed batch; returns output-port words."""
        values = self._eval(pi_words, force)
        return {po: values.get(po, 0) for po in self.outputs}

    @staticmethod
    def pack(patterns: list[dict[str, int]], inputs: list[str]) -> dict[str, int]:
        """Pack ≤64 single-bit patterns into input words (bit *i* of each
        word is pattern *i*'s value)."""
        if len(patterns) > 64:
            raise ValueError("at most 64 patterns per batch")
        words = {pin: 0 for pin in inputs}
        for i, pattern in enumerate(patterns):
            for pin in inputs:
                if pattern.get(pin, 0):
                    words[pin] |= 1 << i
        return words
