"""ATPG substrate: PODEM, fault simulation, and full-scan pattern
generation emitting STIL (the paper assumes commercial ATPG here)."""

from repro.atpg.engine import CombEngine, ParallelSim
from repro.atpg.faults import StuckFault, all_stuck_faults
from repro.atpg.faultsim_gate import FaultSimResult, fault_simulate, fill_x
from repro.atpg.podem import PodemResult, podem
from repro.atpg.scan import (
    AtpgResult,
    CombView,
    combinational_view,
    generate_scan_patterns,
    trace_chain_flops,
)

__all__ = [
    "CombEngine",
    "ParallelSim",
    "StuckFault",
    "all_stuck_faults",
    "FaultSimResult",
    "fault_simulate",
    "fill_x",
    "PodemResult",
    "podem",
    "AtpgResult",
    "CombView",
    "combinational_view",
    "generate_scan_patterns",
    "trace_chain_flops",
]
