"""PODEM: path-oriented decision making test generation (Goel 1981).

Dual-machine formulation: the composite circuit value of a net is the
pair (good, faulty); ``D`` = (1,0), ``D̄`` = (0,1).  PODEM assigns only
primary inputs, re-implies by full dual simulation, and backtracks on a
decision stack.  Correctness comes from implication + exhaustive
backtracking; the objective/backtrace heuristics only steer the search.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.engine import CombEngine
from repro.atpg.faults import StuckFault
from repro.netlist.cells import LIBRARY, X

#: Objective inversion parity through each cell type (None = pick any).
_INVERTING = {"INV", "NAND2", "NAND3", "NOR2", "NOR3", "XNOR2"}
_NON_INVERTING = {"BUF", "AND2", "AND3", "OR2", "OR3", "XOR2", "MUX2"}


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    fault: StuckFault
    test: dict[str, int] | None  # PI assignment (may be partial), None = no test
    backtracks: int
    aborted: bool = False

    @property
    def testable(self) -> bool:
        return self.test is not None


def podem(engine: CombEngine, fault: StuckFault, max_backtracks: int = 200) -> PodemResult:
    """Generate a test for ``fault`` or prove it untestable (within the
    backtrack budget)."""
    if fault.net not in engine.module.nets:
        raise KeyError(f"no net {fault.net!r} in module {engine.module.name!r}")
    assignment: dict[str, int] = {}
    stack: list[list] = []  # [pi, value, flipped]
    backtracks = 0
    driver_pin: dict[str, tuple] = {}
    for inst in engine.module.instances:
        cell = LIBRARY[inst.ref]
        net = inst.conns.get(cell.output)
        if net is not None:
            driver_pin[net] = (inst, cell)

    while True:
        good = engine.evaluate(assignment)
        faulty = engine.evaluate(assignment, force=(fault.net, fault.value))

        # fault effect observed at a primary output?
        for po in engine.outputs:
            g, f = good.get(po, X), faulty.get(po, X)
            if g != X and f != X and g != f:
                return PodemResult(fault, dict(assignment), backtracks)

        objective = _pick_objective(engine, fault, good, faulty, driver_pin)
        if objective is not None:
            pi, value = _backtrace(engine, objective, good, driver_pin)
            if pi is not None:
                assignment[pi] = value
                stack.append([pi, value, False])
                continue
        # dead end: backtrack
        advanced = False
        while stack:
            top = stack[-1]
            if not top[2]:
                top[2] = True
                top[1] ^= 1
                assignment[top[0]] = top[1]
                advanced = True
                break
            stack.pop()
            del assignment[top[0]]
            backtracks += 1
            if backtracks > max_backtracks:
                return PodemResult(fault, None, backtracks, aborted=True)
        if not advanced and not stack:
            return PodemResult(fault, None, backtracks)


def _pick_objective(engine, fault, good, faulty, driver_pin):
    """Next value objective: excite the fault, then advance the
    D-frontier.  Returns (net, value) or None if hopeless."""
    site_good = good.get(fault.net, X)
    if site_good == X:
        return (fault.net, 1 - fault.value)  # excite
    if site_good == fault.value:
        return None  # conflict: fault cannot be excited under assignment
    # D-frontier: gates with a D input and an X output (composite)
    for inst, cell in engine.order:
        out_net = inst.conns.get(cell.output)
        if out_net is None:
            continue
        g_out, f_out = good.get(out_net, X), faulty.get(out_net, X)
        if not (g_out == X or f_out == X):
            continue
        has_d = False
        x_input = None
        for pin in cell.inputs:
            net = inst.conns.get(pin, "")
            g, f = good.get(net, X), faulty.get(net, X)
            if g != X and f != X and g != f:
                has_d = True
            elif g == X or f == X:
                x_input = net
        if has_d and x_input is not None:
            # drive the X side input to the gate's non-controlling value
            return (x_input, _non_controlling(cell.name))
    return None


def _non_controlling(cell_name: str) -> int:
    if cell_name in ("AND2", "AND3", "NAND2", "NAND3"):
        return 1
    if cell_name in ("OR2", "OR3", "NOR2", "NOR3"):
        return 0
    return 0  # XOR/MUX: either propagates; pick 0


def _backtrace(engine, objective, good, driver_pin):
    """Walk the objective back to an unassigned primary input."""
    net, value = objective
    for _ in range(10_000):
        if net in engine.inputs:
            if good.get(net, X) == X:
                return net, value
            return None, None  # PI already set: unreachable objective
        entry = driver_pin.get(net)
        if entry is None:
            return None, None  # undriven internal net
        inst, cell = entry
        if cell.name in _INVERTING:
            value ^= 1
        # choose an X-valued input to pursue
        x_net = None
        for pin in cell.inputs:
            candidate = inst.conns.get(pin, "")
            if good.get(candidate, X) == X:
                x_net = candidate
                break
        if x_net is None:
            return None, None
        net = x_net
    return None, None
