"""Gate-level stuck-at fault universe.

Faults are modelled at net granularity (a net stuck at 0 or 1), the
classical collapsed approximation: a gate-output fault dominates its
input faults along fanout-free paths, so net faults cover the structural
fault classes our flow needs while keeping the universe linear in design
size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist import Module


@dataclass(frozen=True)
class StuckFault:
    """Net ``net`` stuck at ``value`` (0 or 1)."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.value}")

    def describe(self) -> str:
        return f"{self.net}/SA{self.value}"


def all_stuck_faults(module: Module, skip: set[str] | None = None) -> list[StuckFault]:
    """Both polarities on every net (minus ``skip``), in sorted order."""
    skip = skip or set()
    faults = []
    for net in sorted(module.nets):
        if net in skip:
            continue
        faults.append(StuckFault(net, 0))
        faults.append(StuckFault(net, 1))
    return faults
