"""Gate-level stuck-at fault simulation (serial fault, 64-way parallel
pattern) with fault dropping — the engine behind ATPG coverage numbers."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.atpg.engine import ParallelSim
from repro.atpg.faults import StuckFault
from repro.netlist import Module


@dataclass
class FaultSimResult:
    """Coverage outcome for a pattern set."""

    total_faults: int
    detected: set[StuckFault] = field(default_factory=set)
    undetected: list[StuckFault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 0.0
        return 100.0 * len(self.detected) / self.total_faults


def fill_x(pattern: dict[str, int], inputs: list[str], seed: int = 11) -> dict[str, int]:
    """Complete a partial assignment with seeded pseudo-random values."""
    # string seeds hash via sha512 inside Random — stable across
    # processes, unlike tuple.__hash__ under PYTHONHASHSEED salting
    rng = random.Random(f"{seed}:{sorted(pattern.items())}")
    return {pin: pattern.get(pin, rng.randint(0, 1)) for pin in inputs}


def fault_simulate(
    module: Module,
    faults: list[StuckFault],
    patterns: list[dict[str, int]],
) -> FaultSimResult:
    """Which of ``faults`` do ``patterns`` detect?

    Patterns must be complete assignments (use :func:`fill_x`).  Serial
    fault / parallel pattern: the good machine runs once per 64-pattern
    batch, then each remaining fault runs once per batch and is dropped
    at first detection.
    """
    sim = ParallelSim(module)
    result = FaultSimResult(total_faults=len(faults))
    remaining = list(faults)
    for start in range(0, len(patterns), 64):
        batch = patterns[start : start + 64]
        words = ParallelSim.pack(batch, sim.inputs)
        good = sim.run(words)
        batch_mask = (1 << len(batch)) - 1
        still: list[StuckFault] = []
        for fault in remaining:
            bad = sim.run(words, force=(fault.net, fault.value))
            hit = False
            for po in sim.outputs:
                if (good[po] ^ bad[po]) & batch_mask:
                    hit = True
                    break
            if hit:
                result.detected.add(fault)
            else:
                still.append(fault)
        remaining = still
        if not remaining:
            break
    result.undetected = remaining
    return result
