"""TAM bus model: wire assignment derived from a schedule.

The mux-based TAM carries test data between chip pins and core wrappers.
Given a session schedule, each scan-tested core gets a contiguous slice
of TAM wire pairs for the duration of its session; the TAM multiplexer
(:mod:`repro.tam.mux`) steers chip pins to the active session's cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sched.result import ScheduleResult
from repro.util import Table


@dataclass(frozen=True)
class TamSlot:
    """One core's TAM allocation inside one session."""

    session: int
    core_name: str
    task_name: str
    wires: tuple[int, ...]  # wire-pair indices

    @property
    def width(self) -> int:
        return len(self.wires)


@dataclass
class TamBus:
    """The chip's TAM: total wire-pair count and per-session slots."""

    width: int
    slots: list[TamSlot] = field(default_factory=list)

    @property
    def sessions(self) -> int:
        return max((s.session for s in self.slots), default=-1) + 1

    def slots_in_session(self, session: int) -> list[TamSlot]:
        return [s for s in self.slots if s.session == session]

    def slot_for_task(self, task_name: str) -> TamSlot:
        for slot in self.slots:
            if slot.task_name == task_name:
                return slot
        raise KeyError(f"no TAM slot for task {task_name!r}")

    def wire_sources(self) -> dict[int, list[TamSlot]]:
        """wire index → slots that drive it (across sessions)."""
        sources: dict[int, list[TamSlot]] = {w: [] for w in range(self.width)}
        for slot in self.slots:
            for wire in slot.wires:
                sources[wire].append(slot)
        return sources

    def render(self) -> Table:
        table = Table(
            ["Session", "Core", "Wire pairs"], title=f"TAM bus ({self.width} wire pairs)"
        )
        for slot in self.slots:
            wires = ",".join(str(w) for w in slot.wires)
            table.add_row([slot.session, slot.core_name, wires])
        return table


def build_tam(result: ScheduleResult) -> TamBus:
    """Derive the TAM bus from a schedule: within each session, scan
    tasks receive consecutive wire-pair slices starting at wire 0."""
    width = 0
    slots: list[TamSlot] = []
    for session in result.sessions:
        cursor = 0
        for test in session.tests:
            if not test.task.is_scan:
                continue
            wires = tuple(range(cursor, cursor + test.width))
            cursor += test.width
            slots.append(
                TamSlot(
                    session=session.index,
                    core_name=test.task.core_name,
                    task_name=test.task.name,
                    wires=wires,
                )
            )
        width = max(width, cursor)
    return TamBus(width=width, slots=slots)
