"""TAM (test access mechanism) bus: wire assignment and mux generation."""

from repro.tam.bus import TamBus, TamSlot, build_tam
from repro.tam.mux import make_tam_mux

__all__ = ["TamBus", "TamSlot", "build_tam", "make_tam_mux"]
