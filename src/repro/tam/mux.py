"""TAM multiplexer generation.

Steers the chip's TAM-out pins among the wrappers' parallel outputs
according to the active session ("the TAM multiplexer requires about 132
gates" — paper Section 3; ours is measured from the generated netlist in
experiment E4).

Input side needs no gates: TAM-in pins fan out to all wrappers' ``wpi``
ports, and inactive wrappers simply ignore them (their WIR holds
FUNCTIONAL/BYPASS).  Output side: per TAM-out wire, a session-decoded
one-hot OR-AND network selects the active wrapper's ``wpo``.
"""

from __future__ import annotations

from repro.netlist import Module
from repro.tam.bus import TamBus


def make_tam_mux(bus: TamBus, name: str = "tam_mux") -> Module:
    """Generate the TAM output multiplexer for a bus assignment.

    Ports: session-select bits ``sel0..``, one data input per (slot,
    wire) — named ``{task}_wpo{i}`` with the task name sanitized — and
    ``tam_out0..`` outputs.
    """
    m = Module(name)
    n_sessions = max(1, bus.sessions)
    sel_bits = max(1, (n_sessions - 1).bit_length())
    for b in range(sel_bits):
        m.add_input(f"sel{b}")
        m.add_instance(f"u_seli{b}", "INV", A=f"sel{b}", Y=f"n_sel{b}_n")
    for w in range(bus.width):
        m.add_output(f"tam_out{w}")

    def minterm(session: int, out: str, tag: str) -> None:
        literals = [
            f"sel{b}" if (session >> b) & 1 else f"n_sel{b}_n" for b in range(sel_bits)
        ]
        _tree(m, literals, out, "AND", tag)

    session_nets: dict[int, str] = {}
    for slot in bus.slots:
        if slot.session not in session_nets:
            net = m.add_net(f"n_ses{slot.session}")
            minterm(slot.session, net, f"u_ses{slot.session}")
            session_nets[slot.session] = net

    sources = bus.wire_sources()
    for w in range(bus.width):
        terms = []
        for slot in sources[w]:
            local = slot.wires.index(w)
            pin = _sanitize(f"{slot.task_name}_wpo{local}")
            if not any(p.name == pin for p in m.ports):
                m.add_input(pin)
            net = m.add_net(f"n_w{w}_s{slot.session}")
            m.add_instance(
                f"u_g_w{w}_s{slot.session}", "AND2",
                A=pin, B=session_nets[slot.session], Y=net,
            )
            terms.append(net)
        if terms:
            _tree(m, terms, f"tam_out{w}", "OR", f"u_or_w{w}")
        else:
            m.add_instance(f"u_tie_w{w}", "TIE0", Y=f"tam_out{w}")
    return m


def _sanitize(name: str) -> str:
    return name.replace(".", "_")


def _tree(m: Module, nets: list[str], out: str, kind: str, prefix: str) -> None:
    cell2, cell3 = (("AND2", "AND3") if kind == "AND" else ("OR2", "OR3"))
    if len(nets) == 1:
        m.add_instance(f"{prefix}_buf", "BUF", A=nets[0], Y=out)
        return
    current = list(nets)
    level = 0
    while len(current) > 1:
        nxt = []
        i = 0
        while i < len(current):
            group = current[i : i + 3] if len(current) - i == 3 else current[i : i + 2]
            i += len(group)
            if len(group) == 1:
                nxt.append(group[0])
                continue
            final = i >= len(current) and not nxt
            y = out if final else m.add_net(f"{prefix}_t{level}_{len(nxt)}")
            m.add_instance(
                f"{prefix}_g{level}_{len(nxt)}",
                cell3 if len(group) == 3 else cell2,
                Y=y,
                **dict(zip("ABC", group)),
            )
            nxt.append(y)
        current = nxt
        level += 1
