"""Small shared helpers: ASCII table rendering, validation, formatting."""

from repro.util.tables import Table, format_gates, format_cycles
from repro.util.validate import check_positive, check_non_negative, check_name

__all__ = [
    "Table",
    "format_gates",
    "format_cycles",
    "check_positive",
    "check_non_negative",
    "check_name",
]
