"""ASCII table rendering for reports and benchmark output.

The benchmark harness reproduces the paper's tables as monospace text; this
module provides the single table formatter used throughout so that every
report has a consistent look.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class Table:
    """A simple left-aligned ASCII table with a header row.

    >>> t = Table(["Core", "Patterns"])
    >>> t.add_row(["USB", 716])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Core | Patterns
    -----+---------
    USB  | 716
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        """Append a row; cells are stringified with :func:`str`."""
        cells = [str(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        """Render the table to a string (no trailing newline)."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header.rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            line = " | ".join(c.ljust(w) for c, w in zip(row, widths))
            lines.append(line.rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_gates(gates: float) -> str:
    """Format a gate count (NAND2 equivalents) for reports."""
    if gates >= 1000:
        return f"{gates / 1000.0:.1f}k gates"
    return f"{gates:.0f} gates"


def format_cycles(cycles: int) -> str:
    """Format a cycle count with thousands separators (paper style)."""
    return f"{cycles:,}"
