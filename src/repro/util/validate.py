"""Input validation helpers shared by the data-model constructors."""

from __future__ import annotations

import re

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_\[\].$]*$")


def check_positive(value: int | float, what: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{what} must be positive, got {value!r}")


def check_non_negative(value: int | float, what: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{what} must be non-negative, got {value!r}")


def check_name(name: str, what: str = "name") -> str:
    """Validate an HDL-ish identifier and return it.

    Identifiers may contain word characters plus ``[ ] . $`` after the first
    character (bus bits like ``data[3]`` and hierarchical names like
    ``u_top.u_core`` are accepted).
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(f"invalid {what}: {name!r}")
    return name
