"""Test Controller: session-sequencing FSM, behavioral and gate-level."""

from repro.controller.fsm import SessionConfig, TestControllerModel
from repro.controller.generator import make_test_controller

__all__ = ["SessionConfig", "TestControllerModel", "make_test_controller"]
