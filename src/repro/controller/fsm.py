"""Test controller behavioral model.

The Test Controller sequences the test sessions on-chip: it holds the
current session, decodes per-core test-enable values (so TE signals need
no chip pins — see :mod:`repro.sched.ioalloc`), broadcasts the wrapper
serial controls during reconfiguration, and advances on a tester pulse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sched.result import ScheduleResult


@dataclass(frozen=True)
class SessionConfig:
    """What the controller drives during one session."""

    index: int
    active_cores: tuple[str, ...]
    scan_cores: tuple[str, ...]
    te_values: dict[str, bool] = field(default_factory=dict, hash=False, compare=False)


@dataclass
class TestControllerModel:
    """Behavioral session sequencer.

    States: ``IDLE`` → (start) → ``CONFIG`` (program WIRs, settle TAM
    muxes) → ``RUN`` → (session done) → ``CONFIG`` … → ``DONE``.
    """

    sessions: list[SessionConfig]
    state: str = "IDLE"
    current: int = -1

    @classmethod
    def from_schedule(cls, result: ScheduleResult) -> "TestControllerModel":
        configs = []
        for session in result.sessions:
            actives = tuple(t.task.core_name for t in session.tests)
            scans = tuple(t.task.core_name for t in session.tests if t.task.is_scan)
            te_values = {core: True for core in actives}
            configs.append(
                SessionConfig(
                    index=session.index,
                    active_cores=actives,
                    scan_cores=scans,
                    te_values=te_values,
                )
            )
        return cls(sessions=configs)

    # -- stepping ------------------------------------------------------------

    def start(self) -> None:
        """Tester asserts start: enter the first session's CONFIG."""
        if not self.sessions:
            self.state = "DONE"
            return
        self.current = 0
        self.state = "CONFIG"

    def config_done(self) -> None:
        """WIRs programmed and muxes settled: run the session."""
        if self.state != "CONFIG":
            raise RuntimeError(f"config_done in state {self.state}")
        self.state = "RUN"

    def session_done(self) -> None:
        """Session finished: advance or complete."""
        if self.state != "RUN":
            raise RuntimeError(f"session_done in state {self.state}")
        if self.current + 1 < len(self.sessions):
            self.current += 1
            self.state = "CONFIG"
        else:
            self.state = "DONE"

    # -- outputs -------------------------------------------------------------

    @property
    def active_session(self) -> SessionConfig | None:
        if 0 <= self.current < len(self.sessions) and self.state in ("CONFIG", "RUN"):
            return self.sessions[self.current]
        return None

    def test_enable(self, core: str) -> bool:
        """The TE value the controller drives for ``core`` right now."""
        session = self.active_session
        return bool(session and session.te_values.get(core, False))

    @property
    def select_wir(self) -> bool:
        """WIR programming window is open during CONFIG."""
        return self.state == "CONFIG"

    @property
    def done(self) -> bool:
        return self.state == "DONE"
