"""Gate-level Test Controller generation ("TACS Generator", Fig. 1).

The paper measures its DSC controller at "about 371 gates"; experiment
E4 compares our generated area against that.  Structure:

* a 2-bit state FSM (IDLE / CONFIG / RUN, DONE),
* a session counter sized for the schedule,
* per-session one-hot decode,
* per-core test-enable outputs (OR of the sessions the core is active
  in, gated by RUN) — this is what lets TE signals come off chip pins,
* wrapper serial-control broadcast (``selectwir`` during CONFIG, shift /
  capture / update passthroughs), and
* the TAM session-select output feeding :mod:`repro.tam.mux`.
"""

from __future__ import annotations

from repro.netlist import Module
from repro.sched.result import ScheduleResult


def make_test_controller(result: ScheduleResult, name: str = "test_controller") -> Module:
    """Generate the controller netlist for a session schedule."""
    n_sessions = max(1, len(result.sessions))
    s_bits = max(1, (n_sessions - 1).bit_length())
    cores = sorted({t.task.core_name for s in result.sessions for t in s.tests})

    m = Module(name)
    for port in ("tck", "trstn", "start", "next_session", "config_done"):
        m.add_input(port)
    for port in ("selectwir", "shift_bcast", "capture_bcast", "update_bcast", "done"):
        m.add_output(port)
    m.add_input("shiftwr")
    m.add_input("capturewr")
    m.add_input("updatewr")
    for core in cores:
        m.add_output(f"te_{core}")
    for b in range(s_bits):
        m.add_output(f"session_sel{b}")

    # --- state FSM: s1 s0 = 00 idle, 01 config, 10 run, 11 done ------------
    m.add_instance("u_s0_inv", "INV", A="n_s0", Y="n_s0_n")
    m.add_instance("u_s1_inv", "INV", A="n_s1", Y="n_s1_n")
    m.add_instance("u_idle", "AND2", A="n_s1_n", B="n_s0_n", Y="n_idle")
    m.add_instance("u_cfg", "AND2", A="n_s1_n", B="n_s0", Y="n_config")
    m.add_instance("u_run", "AND2", A="n_s1", B="n_s0_n", Y="n_run")
    m.add_instance("u_done_st", "AND2", A="n_s1", B="n_s0", Y="n_done_st")
    # at-last-session detect
    last = n_sessions - 1
    last_literals = [
        f"n_c{b}" if (last >> b) & 1 else f"n_c{b}_n" for b in range(s_bits)
    ]
    _tree(m, last_literals, "n_at_last", "AND", "u_last")
    # transitions
    m.add_instance("u_t_start", "AND2", A="n_idle", B="start", Y="n_go")
    m.add_instance("u_t_cfg", "AND2", A="n_config", B="config_done", Y="n_to_run")
    m.add_instance("u_t_next", "AND2", A="n_run", B="next_session", Y="n_adv")
    m.add_instance("u_t_fin", "AND2", A="n_adv", B="n_at_last", Y="n_finish")
    m.add_instance("u_fin_inv", "INV", A="n_at_last", Y="n_not_last")
    m.add_instance("u_t_more", "AND2", A="n_adv", B="n_not_last", Y="n_to_cfg")
    # next-state logic: s0' = go | to_cfg | (config & !config_done) | done&s0
    m.add_instance("u_hold_cfg", "INV", A="config_done", Y="n_cfgd_n")
    m.add_instance("u_s0_h", "AND2", A="n_config", B="n_cfgd_n", Y="n_s0_hold")
    m.add_instance("u_s0_o1", "OR3", A="n_go", B="n_to_cfg", C="n_s0_hold", Y="n_s0_p")
    m.add_instance("u_s0_o2", "OR3", A="n_s0_p", B="n_finish", C="n_done_st", Y="n_s0_d")
    # s1' = to_run | (run & !adv) | finish | done
    m.add_instance("u_adv_inv", "INV", A="n_adv", Y="n_adv_n")
    m.add_instance("u_s1_h", "AND2", A="n_run", B="n_adv_n", Y="n_s1_hold")
    m.add_instance("u_s1_o1", "OR3", A="n_to_run", B="n_s1_hold", C="n_finish", Y="n_s1_p")
    m.add_instance("u_s1_o2", "OR3", A="n_s1_p", B="n_done_st", C="n_to_cfg_z", Y="n_s1_d")
    m.add_instance("u_z_tie", "TIE0", Y="n_to_cfg_z")
    m.add_instance("u_s0_ff", "DFFR", D="n_s0_d", CK="tck", RN="trstn", Q="n_s0")
    m.add_instance("u_s1_ff", "DFFR", D="n_s1_d", CK="tck", RN="trstn", Q="n_s1")
    m.add_instance("u_done_buf", "BUF", A="n_done_st", Y="done")

    # --- session counter ------------------------------------------------------
    carry = "n_to_cfg"
    for b in range(s_bits):
        q = f"n_c{b}"
        m.add_instance(f"u_cx{b}", "XOR2", A=q, B=carry, Y=f"n_cn{b}")
        m.add_instance(f"u_cc{b}", "AND2", A=q, B=carry, Y=f"n_cy{b}")
        m.add_instance(f"u_cf{b}", "DFFR", D=f"n_cn{b}", CK="tck", RN="trstn", Q=q)
        m.add_instance(f"u_ci{b}", "INV", A=q, Y=f"n_c{b}_n")
        m.add_instance(f"u_co{b}", "BUF", A=q, Y=f"session_sel{b}")
        carry = f"n_cy{b}"

    # --- per-session decode -------------------------------------------------------
    for s in range(n_sessions):
        literals = [f"n_c{b}" if (s >> b) & 1 else f"n_c{b}_n" for b in range(s_bits)]
        _tree(m, literals, m.add_net(f"n_ses{s}"), "AND", f"u_sd{s}")

    # --- per-core TE: OR of (session decode & run) over active sessions ---------
    active: dict[str, list[int]] = {core: [] for core in cores}
    for session in result.sessions:
        for test in session.tests:
            active[test.task.core_name].append(session.index)
    for core in cores:
        terms = []
        for s in sorted(set(active[core])):
            net = m.add_net(f"n_te_{core}_{s}")
            m.add_instance(f"u_te_{core}_{s}", "AND2", A=f"n_ses{s}", B="n_run", Y=net)
            terms.append(net)
        _tree(m, terms, f"te_{core}", "OR", f"u_teor_{core}")

    # --- wrapper serial control broadcast -----------------------------------------
    m.add_instance("u_selw", "BUF", A="n_config", Y="selectwir")
    m.add_instance("u_shb", "BUF", A="shiftwr", Y="shift_bcast")
    m.add_instance("u_cpb", "BUF", A="capturewr", Y="capture_bcast")
    m.add_instance("u_upb", "BUF", A="updatewr", Y="update_bcast")
    return m


def _tree(m: Module, nets: list[str], out: str, kind: str, prefix: str) -> None:
    cell2, cell3 = (("AND2", "AND3") if kind == "AND" else ("OR2", "OR3"))
    if not nets:
        m.add_instance(f"{prefix}_tie", "TIE0", Y=out)
        return
    if len(nets) == 1:
        m.add_instance(f"{prefix}_buf", "BUF", A=nets[0], Y=out)
        return
    current = list(nets)
    level = 0
    while len(current) > 1:
        nxt = []
        i = 0
        while i < len(current):
            group = current[i : i + 3] if len(current) - i == 3 else current[i : i + 2]
            i += len(group)
            if len(group) == 1:
                nxt.append(group[0])
                continue
            final = i >= len(current) and not nxt
            y = out if final else m.add_net(f"{prefix}_t{level}_{len(nxt)}")
            m.add_instance(
                f"{prefix}_g{level}_{len(nxt)}",
                cell3 if len(group) == 3 else cell2,
                Y=y,
                **dict(zip("ABC", group)),
            )
            nxt.append(y)
        current = nxt
        level += 1
