"""Gate-level wrapper generation ("Wrapper Generator" in paper Fig. 1).

Builds a wrapper module around a core: WBC cells on every functional IO
bit, wrapper chains per the balance plan, a WIR, a WBY, and the serial /
parallel access plumbing.  The core itself is instantiated by reference —
a blackbox for real IPs, or a real module (for simulation-based
verification in the tests).

Wrapper ports:

* chip-side functional mirrors of the core's functional IOs (bit-expanded);
* pass-throughs for the core's control/test pins (clock, reset, SE, TE,
  dedicated test signals);
* the IEEE-1500-style serial interface ``wsi, wso, wrck, selectwir,
  shiftwr, capturewr, updatewr``;
* the parallel TAM interface ``wpi0..wpi{w-1}`` / ``wpo0..wpo{w-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist import Module, Netlist
from repro.soc.core import Core
from repro.soc.ports import Direction, SignalKind
from repro.soc.bits import expand_port_bits
from repro.wrapper.balance import WrapperPlan, design_wrapper
from repro.wrapper.cells import make_wbc_cell, make_wby_cell
from repro.wrapper.wir import WrapperInstruction, make_wir


@dataclass
class GeneratedWrapper:
    """Result of :func:`generate_wrapper`."""

    module: Module
    plan: WrapperPlan
    wbc_count: int

    def area(self, netlist: Netlist) -> float:
        """Wrapper area excluding the wrapped core itself."""
        core_refs = {self.plan.core_name}
        total = 0.0
        for inst in self.module.instances:
            if inst.ref in core_refs:
                continue
            if inst.ref in netlist.modules:
                total += netlist.module(inst.ref).area(netlist)
            else:
                from repro.netlist.cells import LIBRARY

                if inst.ref in LIBRARY:
                    total += LIBRARY[inst.ref].area
        return total


def generate_wrapper(
    core: Core,
    netlist: Netlist,
    width: int = 1,
    plan: WrapperPlan | None = None,
) -> GeneratedWrapper:
    """Generate the wrapper module for ``core`` and add it to ``netlist``.

    Shared cells (``WBC``, ``WBY``, ``WIR``) are added to the netlist once
    and instantiated per use.
    """
    if plan is None:
        plan = design_wrapper(core, width)
    for maker, ref in ((make_wbc_cell, "WBC"), (make_wby_cell, "WBY"), (make_wir, "WIR")):
        if ref not in netlist.modules:
            netlist.add(maker(ref))

    m = Module(f"{core.name}_wrapper")
    # -- ports ---------------------------------------------------------------
    serial_ports = ("wsi", "wrck", "selectwir", "shiftwr", "capturewr", "updatewr")
    for port in serial_ports:
        m.add_input(port)
    m.add_output("wso")
    for k in range(plan.width):
        m.add_input(f"wpi{k}")
        m.add_output(f"wpo{k}")
    m.add_input("parallel_sel")  # INTEST_PARALLEL vs serial chain feed

    core_conns: dict[str, str] = {}
    in_bits: list[str] = []
    out_bits: list[str] = []
    for port in core.ports:
        bits = expand_port_bits(port)
        if port.kind is SignalKind.FUNCTIONAL:
            if port.direction is Direction.IN:
                for bit in bits:
                    m.add_input(bit)
                    in_bits.append(bit)
            else:
                for bit in bits:
                    m.add_output(bit)
                    out_bits.append(bit)
        elif port.kind in (SignalKind.SCAN_IN, SignalKind.SCAN_OUT):
            # internal scan IO stays inside the wrapper (net per bit)
            for bit in bits:
                m.add_net(f"n_core_{bit}")
        else:
            # control/test pins pass straight through
            for bit in bits:
                m.add_input(bit)
                core_conns[bit] = bit

    # -- WIR -------------------------------------------------------------------
    wir_conns = {p: p for p in ("wsi", "wrck", "selectwir", "shiftwr", "updatewr")}
    wir_conns["wso"] = "n_wir_so"
    for instr in WrapperInstruction:
        wir_conns[f"dec_{instr.name}"] = f"n_dec_{instr.name}"
    m.add_instance("u_wir", "WIR", **wir_conns)

    # mode/safe/shift controls derived from the decoded instruction
    m.add_instance(
        "u_mode_or1", "OR2",
        A=f"n_dec_{WrapperInstruction.INTEST_SCAN.name}",
        B=f"n_dec_{WrapperInstruction.INTEST_PARALLEL.name}",
        Y="n_intest",
    )
    m.add_instance(
        "u_mode_or2", "OR2",
        A="n_intest",
        B=f"n_dec_{WrapperInstruction.EXTEST.name}",
        Y="n_test_mode",
    )
    m.add_instance(
        "u_safe_buf", "BUF", A=f"n_dec_{WrapperInstruction.SAFE.name}", Y="n_safe_en"
    )
    m.add_instance("u_nsel_inv", "INV", A="selectwir", Y="n_sel_wr")
    m.add_instance("u_shift_dr", "AND2", A="shiftwr", B="n_sel_wr", Y="n_shift_dr")
    m.add_instance("u_capture_dr", "AND2", A="capturewr", B="n_sel_wr", Y="n_capture_dr")
    m.add_instance("u_update_dr", "AND2", A="updatewr", B="n_sel_wr", Y="n_update_dr")

    # -- WBY ---------------------------------------------------------------------
    m.add_instance("u_wby", "WBY", wsi="wsi", wrck="wrck", wso="n_wby_so")

    # -- wrapper chains -------------------------------------------------------------
    chain_by_name = {c.name: c for c in core.scan_chains}
    in_iter = iter(in_bits)
    out_iter = iter(out_bits)
    serial_prev = "wsi"
    chain_tails: list[str] = []
    wbc_count = 0
    for k, chain in enumerate(plan.chains):
        head = m.add_net(f"n_ch{k}_head")
        m.add_instance(
            f"u_ch{k}_src", "MUX2", D0="n_serial_prev_" + str(k), D1=f"wpi{k}", S="parallel_sel",
            Y=head,
        )
        m.add_instance(f"u_ch{k}_serbuf", "BUF", A=serial_prev, Y=f"n_serial_prev_{k}")
        cursor = head
        # input cells first
        for i in range(chain.input_cells):
            bit = next(in_iter)
            cto = m.add_net(f"n_ch{k}_i{i}_cto")
            m.add_instance(
                f"u_wbc_{bit}", "WBC",
                cfi=bit, cti=cursor, wrck="wrck",
                shift="n_shift_dr", capture="n_capture_dr", update="n_update_dr",
                mode="n_test_mode", safe_en="n_safe_en",
                cfo=f"n_core_{bit}", cto=cto,
            )
            core_conns[bit] = f"n_core_{bit}"
            cursor = cto
            wbc_count += 1
        # then the internal chains (through the core)
        if plan.rebalanced:
            # soft core: one synthesized chain per wrapper chain; the
            # re-stitched core exposes si/so per wrapper chain index
            if chain.internal_length > 0:
                si_net = f"n_core_rebal_si{k}"
                so_net = f"n_core_rebal_so{k}"
                m.add_net(si_net)
                m.add_net(so_net)
                m.add_instance(f"u_ch{k}_si", "BUF", A=cursor, Y=si_net)
                core_conns[f"rebal_si{k}"] = si_net
                core_conns[f"rebal_so{k}"] = so_net
                cursor = so_net
        else:
            for name in chain.internal_chains:
                ichain = chain_by_name[name]
                # a chain whose scan-out shares a functional output pin
                # simply taps the same core net the output WBC taps
                si_net = m.add_net(f"n_core_{ichain.scan_in}_drv")
                so_net = m.add_net(f"n_core_{ichain.scan_out}")
                m.add_instance(f"u_{name}_si", "BUF", A=cursor, Y=si_net)
                core_conns[ichain.scan_in] = si_net
                core_conns[ichain.scan_out] = so_net
                cursor = so_net
        # output cells last
        for i in range(chain.output_cells):
            bit = next(out_iter)
            cto = m.add_net(f"n_ch{k}_o{i}_cto")
            m.add_instance(
                f"u_wbc_{bit}", "WBC",
                cfi=f"n_core_{bit}", cti=cursor, wrck="wrck",
                shift="n_shift_dr", capture="n_capture_dr", update="n_update_dr",
                mode="n_test_mode", safe_en="n_safe_en",
                cfo=bit, cto=cto,
            )
            core_conns[bit] = f"n_core_{bit}"
            cursor = cto
            wbc_count += 1
        m.add_instance(f"u_ch{k}_wpo", "BUF", A=cursor, Y=f"wpo{k}")
        chain_tails.append(cursor)
        serial_prev = cursor

    # -- WSO selection: WIR when selectwir, else bypass vs chain tail -----------
    last_tail = chain_tails[-1] if chain_tails else "n_wby_so"
    m.add_instance(
        "u_wso_mux1", "MUX2",
        D0=last_tail, D1="n_wby_so", S=f"n_dec_{WrapperInstruction.BYPASS.name}",
        Y="n_wso_dr",
    )
    m.add_instance("u_wso_mux2", "MUX2", D0="n_wso_dr", D1="n_wir_so", S="selectwir", Y="wso")

    # -- the core itself -----------------------------------------------------------
    # functional outputs come straight from the core (output WBCs tap them)
    for bit in out_bits:
        core_conns.setdefault(bit, f"n_core_{bit}")
    for bit in in_bits:
        core_conns.setdefault(bit, f"n_core_{bit}")
    # shared scan-out chains: the core drives the shared functional net,
    # already mapped above via core_conns[chain.scan_out]
    m.add_instance("u_core", core.name, **core_conns)

    netlist.add(m)
    return GeneratedWrapper(module=m, plan=plan, wbc_count=wbc_count)
