"""IEEE-1500-style core test wrappers.

Implements the paper's "Wrapper Generator": wrapper boundary cells (the
26-gate WBR cell of Section 3), wrapper-chain balancing for an assigned
TAM width, the WIR instruction set, and full gate-level generation.
"""

from repro.wrapper.balance import (
    WrapperChain,
    WrapperPlan,
    design_wrapper,
    partition_greedy,
    partition_optimal,
)
from repro.wrapper.cells import (
    WBC_AREA,
    WBC_LIGHT_AREA,
    WBY_AREA,
    make_wbc_cell,
    make_wbc_light_cell,
    make_wby_cell,
)
from repro.wrapper.generator import GeneratedWrapper, generate_wrapper
from repro.wrapper.wir import WIR_AREA, WIR_BITS, WrapperInstruction, encode, make_wir
from repro.wrapper.wrapper import CoreWrapper, wir_shift_sequence

__all__ = [
    "WrapperChain",
    "WrapperPlan",
    "design_wrapper",
    "partition_greedy",
    "partition_optimal",
    "WBC_AREA",
    "WBC_LIGHT_AREA",
    "WBY_AREA",
    "make_wbc_cell",
    "make_wbc_light_cell",
    "make_wby_cell",
    "GeneratedWrapper",
    "generate_wrapper",
    "WIR_AREA",
    "WIR_BITS",
    "WrapperInstruction",
    "encode",
    "make_wir",
    "CoreWrapper",
    "wir_shift_sequence",
]
