"""Wrapper scan-chain balancing.

A wrapped core's test time is governed by its longest wrapper chain, so
the generator must partition the core's internal scan chains plus its
boundary cells into ``w`` balanced wrapper chains (the classic
*Design_wrapper* problem).  The paper's scheduler additionally
"rebalances scan chains for each assigned TAM width" for soft cores.

Provided algorithms:

* :func:`partition_greedy` — longest-processing-time/best-fit-decreasing
  heuristic (sort descending, place on least-loaded chain); the standard
  Design_wrapper heuristic.
* :func:`partition_optimal` — exact branch-and-bound minimizing the max
  chain length; exponential, intended for small instances and for
  validating the heuristic in tests.
* :func:`design_wrapper` — the full flow: internal chains (re-stitched
  for soft cores), then wrapper input/output cells distributed to balance
  scan-in/scan-out lengths separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soc.core import Core
from repro.soc.scan import rebalance_lengths
from repro.util import check_positive


def partition_greedy(lengths: list[int], width: int) -> list[list[int]]:
    """Partition item indices into ``width`` bins, minimizing max load
    (LPT/BFD heuristic).  Returns bins of item indices (some may be
    empty); deterministic for reproducibility."""
    check_positive(width, "partition width")
    bins: list[list[int]] = [[] for _ in range(width)]
    loads = [0] * width
    for index in sorted(range(len(lengths)), key=lambda i: (-lengths[i], i)):
        target = min(range(width), key=lambda b: (loads[b], b))
        bins[target].append(index)
        loads[target] += lengths[index]
    return bins


def partition_optimal(lengths: list[int], width: int, node_limit: int = 200_000) -> list[list[int]]:
    """Exact minimum-makespan partition via branch-and-bound.

    Sorted-descending DFS with two prunes: (a) bound the partial makespan
    by the best complete solution found, (b) skip equal-load bins
    (symmetry).  Falls back to the greedy answer if ``node_limit`` is
    exhausted (guards pathological inputs in property tests).
    """
    check_positive(width, "partition width")
    n = len(lengths)
    if n == 0:
        return [[] for _ in range(width)]
    order = sorted(range(n), key=lambda i: (-lengths[i], i))
    best_bins = partition_greedy(lengths, width)
    best_makespan = max((sum(lengths[i] for i in b) for b in best_bins), default=0)
    lower = max(max(lengths, default=0), (sum(lengths) + width - 1) // width)
    if best_makespan == lower:
        return best_bins
    assign = [0] * n
    loads = [0] * width
    nodes = 0

    def dfs(pos: int) -> bool:
        nonlocal best_makespan, nodes
        if nodes > node_limit:
            return True  # abort: keep best found so far
        nodes += 1
        if pos == n:
            makespan = max(loads)
            if makespan < best_makespan:
                best_makespan = makespan
                for i in range(n):
                    best_bins_flat[order[i]] = assign[i]
            return best_makespan == lower
        item = lengths[order[pos]]
        seen_loads: set[int] = set()
        for b in range(width):
            if loads[b] in seen_loads:
                continue  # symmetric bin
            seen_loads.add(loads[b])
            if loads[b] + item >= best_makespan:
                continue
            loads[b] += item
            assign[pos] = b
            if dfs(pos + 1):
                loads[b] -= item
                return True
            loads[b] -= item
        return False

    best_bins_flat = [0] * n
    for b, items in enumerate(best_bins):
        for i in items:
            best_bins_flat[i] = b
    dfs(0)
    result: list[list[int]] = [[] for _ in range(width)]
    for i, b in enumerate(best_bins_flat):
        result[b].append(i)
    return result


@dataclass
class WrapperChain:
    """One wrapper chain: some internal scan chains plus boundary cells.

    ``in_length`` (scan-in depth) counts input cells + internal flops;
    ``out_length`` counts internal flops + output cells.
    """

    internal_chains: list[str] = field(default_factory=list)
    internal_length: int = 0
    input_cells: int = 0
    output_cells: int = 0

    @property
    def in_length(self) -> int:
        return self.input_cells + self.internal_length

    @property
    def out_length(self) -> int:
        return self.internal_length + self.output_cells

    @property
    def total_cells(self) -> int:
        """Flops on this wrapper chain (input cells + internal + output)."""
        return self.input_cells + self.internal_length + self.output_cells


@dataclass
class WrapperPlan:
    """A complete wrapper-chain assignment for one core at one TAM width."""

    core_name: str
    width: int
    chains: list[WrapperChain]
    rebalanced: bool = False

    @property
    def scan_in_depth(self) -> int:
        """si: the longest wrapper scan-in path."""
        return max((c.in_length for c in self.chains), default=0)

    @property
    def scan_out_depth(self) -> int:
        """so: the longest wrapper scan-out path."""
        return max((c.out_length for c in self.chains), default=0)

    @property
    def boundary_cells(self) -> int:
        """Total wrapper boundary cells in the plan."""
        return sum(c.input_cells + c.output_cells for c in self.chains)


def wrapper_cell_counts(core: Core) -> tuple[int, int]:
    """(input cells, output cells) a wrapper needs for ``core``.

    One cell per functional bit; INOUT pads get an output-side
    observation cell only (their drive side rides the mission
    interconnect) — the same accounting
    :func:`repro.wrapper.generator.generate_wrapper` stitches, so plans
    and generated netlists always agree.
    """
    from repro.soc.ports import Direction, SignalKind

    n_in = n_out = 0
    for port in core.ports:
        if port.kind is not SignalKind.FUNCTIONAL:
            continue
        if port.direction is Direction.IN:
            n_in += port.width
        else:
            n_out += port.width
    return n_in, n_out


def design_wrapper(core: Core, width: int, exact: bool = False) -> WrapperPlan:
    """Build a balanced wrapper plan for ``core`` with ``width`` TAM wires.

    Internal scan chains are re-stitched into ``width`` balanced chains
    for soft cores, or partitioned (greedy or exact) for hard cores.
    Wrapper input/output cells (one per functional input/output bit) are
    then distributed to equalize scan-in and scan-out depths.
    """
    check_positive(width, "TAM width")
    n_in_cells, n_out_cells = wrapper_cell_counts(core)

    chains = [WrapperChain() for _ in range(width)]
    rebalanced = False
    if core.scan_chains:
        if core.is_soft:
            new_lengths = rebalance_lengths(core.scan_flops, width)
            for i, length in enumerate(new_lengths):
                chains[i].internal_chains.append(f"{core.name}_rebal{i}")
                chains[i].internal_length = length
            rebalanced = True
        else:
            lengths = core.chain_lengths
            partition = (
                partition_optimal(lengths, width) if exact else partition_greedy(lengths, width)
            )
            for b, items in enumerate(partition):
                for i in items:
                    chains[b].internal_chains.append(core.scan_chains[i].name)
                    chains[b].internal_length += lengths[i]

    # distribute boundary cells: input cells balance scan-in depth,
    # output cells balance scan-out depth (independent greedy passes)
    for _ in range(n_in_cells):
        target = min(chains, key=lambda c: c.in_length)
        target.input_cells += 1
    for _ in range(n_out_cells):
        target = min(chains, key=lambda c: c.out_length)
        target.output_cells += 1

    return WrapperPlan(core_name=core.name, width=width, chains=chains, rebalanced=rebalanced)
