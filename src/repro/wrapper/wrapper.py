"""High-level wrapper model: structure summary, area estimate, WIR usage.

This is the scheduler- and report-facing view of a wrapper; the actual
gates live in :mod:`repro.wrapper.generator`.  The closed-form area model
here is validated against generated-netlist areas in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.core import Core
from repro.wrapper.balance import WrapperPlan, design_wrapper
from repro.wrapper.cells import WBC_AREA, WBY_AREA
from repro.wrapper.wir import WIR_AREA, WrapperInstruction, encode


def wir_shift_sequence(instruction: WrapperInstruction) -> list[int]:
    """Bits to shift into WSI to load ``instruction`` (first bit shifted
    first; the opcode MSB must be shifted first so it lands deepest)."""
    return list(reversed(encode(instruction)))


@dataclass
class CoreWrapper:
    """A wrapped core: the balance plan plus derived figures.

    Attributes:
        core: the wrapped core.
        plan: wrapper-chain assignment (per TAM width).
    """

    core: Core
    plan: WrapperPlan

    @classmethod
    def design(cls, core: Core, width: int, exact: bool = False) -> "CoreWrapper":
        """Design a wrapper for ``core`` with ``width`` TAM wires."""
        return cls(core=core, plan=design_wrapper(core, width, exact=exact))

    @property
    def boundary_cells(self) -> int:
        """WBC count = functional input bits + functional output bits."""
        return self.plan.boundary_cells

    @property
    def scan_in_depth(self) -> int:
        return self.plan.scan_in_depth

    @property
    def scan_out_depth(self) -> int:
        return self.plan.scan_out_depth

    @property
    def estimated_area(self) -> float:
        """Closed-form wrapper area (NAND2 equivalents): WBC cells + WIR +
        WBY + per-chain access muxes/buffers + mode decode glue."""
        per_chain_glue = 2.5 + 1.0 + 1.0  # source mux + serial buf + wpo buf
        glue = 2 * 1.5 + 2 * 2.5 + 0.7 + 3 * 1.5 + 1.0  # ORs, WSO muxes, INV, ANDs, BUF
        return (
            self.boundary_cells * WBC_AREA
            + WIR_AREA
            + WBY_AREA
            + self.plan.width * per_chain_glue
            + glue
        )

    def summary_row(self) -> list[object]:
        """Row for wrapper reports: core, width, cells, si/so, area."""
        return [
            self.core.name,
            self.plan.width,
            self.boundary_cells,
            self.scan_in_depth,
            self.scan_out_depth,
            f"{self.estimated_area:.0f}",
        ]
