"""Wrapper Instruction Register (WIR) model and gate-level generator.

The WIR selects the wrapper's operating mode.  We implement the IEEE
1500-style instruction set STEAC needs: functional bypass, serial and
parallel internal test, external test, core bypass, and safe isolation.
"""

from __future__ import annotations

import enum
import math

from repro.netlist import Module


class WrapperInstruction(enum.Enum):
    """Wrapper operating modes, in encoding order (value = opcode)."""

    FUNCTIONAL = 0     # wrapper transparent, core in mission mode
    BYPASS = 1         # WSI -> WBY -> WSO, core untouched
    INTEST_SCAN = 2    # internal test, wrapper chains fed serially (WSI)
    INTEST_PARALLEL = 3  # internal test, wrapper chains fed from the TAM
    EXTEST = 4         # interconnect test: drive outputs, capture inputs
    SAFE = 5           # safe values held on outputs while others test

    @property
    def opcode(self) -> int:
        return self.value

    @property
    def is_intest(self) -> bool:
        return self in (WrapperInstruction.INTEST_SCAN, WrapperInstruction.INTEST_PARALLEL)


#: Number of WIR register bits needed for the full instruction set.
WIR_BITS = max(1, math.ceil(math.log2(len(WrapperInstruction))))


def encode(instruction: WrapperInstruction, bits: int = WIR_BITS) -> list[int]:
    """Opcode as a bit list, LSB first (shift order: LSB enters last)."""
    return [(instruction.opcode >> i) & 1 for i in range(bits)]


def make_wir(name: str = "WIR", bits: int = WIR_BITS) -> Module:
    """Generate the WIR: shift stage, update stage, and full decode.

    Ports: ``wsi, wrck, selectwir, shiftwr, updatewr`` in, ``wso`` and one
    decoded line ``dec_<instruction>`` per instruction out.  The shift
    stage advances only when ``selectwir & shiftwr``; the update stage is
    transparent during ``selectwir & updatewr``.
    """
    m = Module(name)
    for port in ("wsi", "wrck", "selectwir", "shiftwr", "updatewr"):
        m.add_input(port)
    m.add_output("wso")
    for instr in WrapperInstruction:
        m.add_output(f"dec_{instr.name}")

    m.add_instance("u_shift_en", "AND2", A="selectwir", B="shiftwr", Y="n_shift_en")
    m.add_instance("u_update_en", "AND2", A="selectwir", B="updatewr", Y="n_update_en")

    prev = "wsi"
    for b in range(bits):
        m.add_instance(f"u_sr{b}", "DFFE", D=prev, CK="wrck", E="n_shift_en", Q=f"n_sr{b}")
        m.add_instance(f"u_upd{b}", "DLATCH", D=f"n_sr{b}", G="n_update_en", Q=f"n_ir{b}")
        m.add_instance(f"u_inv{b}", "INV", A=f"n_ir{b}", Y=f"n_irn{b}")
        prev = f"n_sr{b}"
    m.add_instance("u_wso_buf", "BUF", A=prev, Y="wso")

    for instr in WrapperInstruction:
        literals = [
            f"n_ir{b}" if (instr.opcode >> b) & 1 else f"n_irn{b}" for b in range(bits)
        ]
        _and_tree(m, f"dec_{instr.name}", literals, prefix=f"u_dec_{instr.name}")
    return m


def _and_tree(m: Module, out_net: str, inputs: list[str], prefix: str) -> None:
    """Reduce ``inputs`` with AND2/AND3 gates into ``out_net``."""
    if len(inputs) == 1:
        m.add_instance(f"{prefix}_buf", "BUF", A=inputs[0], Y=out_net)
        return
    level = 0
    current = list(inputs)
    while len(current) > 1:
        nxt: list[str] = []
        i = 0
        while i < len(current):
            group = current[i : i + 3] if len(current) - i == 3 else current[i : i + 2]
            i += len(group)
            last_round = i >= len(current) and not nxt
            out = out_net if last_round else m.add_net(f"{prefix}_n{level}_{len(nxt)}")
            if len(group) == 1:
                nxt.append(group[0])
                continue
            cell_name = "AND3" if len(group) == 3 else "AND2"
            pins = dict(zip(("A", "B", "C"), group))
            m.add_instance(f"{prefix}_g{level}_{len(nxt)}", cell_name, Y=out, **pins)
            nxt.append(out)
        current = nxt
        level += 1


#: Area of the default WIR in NAND2 equivalents.
WIR_AREA = make_wir().area()
