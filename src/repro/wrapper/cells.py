"""Wrapper boundary cell (WBC) generators.

The paper reports "the area of the WBR cell is equivalent to 26 two-input
NAND gates".  We build the cell from library gates and let the area fall
out of the structure; the default safe capture/update cell lands on
exactly 26.0 NAND2 equivalents (checked by tests).

Cell structure (IEEE-1500-style ``WC_SD1_CU`` with safe mode)::

    shift mux   : CTI vs CFI            (MUX2)
    or gate     : shift|capture         (OR2)
    shift FF    : WBR shift stage       (DFFE, clock WRCK,
                                         enabled on shift|capture)
    update latch: shadow/update stage   (DLATCH, gate = update & mode)
    guard gate  : update gating         (AND2)
    mode mux    : functional vs test    (MUX2)
    safe mux    : safe value insertion  (MUX2 + TIE0)
    out buffer  : CFO driver            (BUF)

Ports: ``cfi`` (functional in), ``cto``/``cti`` (serial test path),
``cfo`` (functional out), controls ``wrck, shift, capture, update, mode,
safe_en``.
"""

from __future__ import annotations

from repro.netlist import Module


def make_wbc_cell(name: str = "WBC") -> Module:
    """Build the full capture/update/safe wrapper boundary cell."""
    m = Module(name)
    for port in ("cfi", "cti", "wrck", "shift", "capture", "update", "mode", "safe_en"):
        m.add_input(port)
    m.add_output("cfo")
    m.add_output("cto")
    # serial path: shift mux selects CTI when shifting, CFI when capturing;
    # the enable FF holds its state when neither shifting nor capturing
    m.add_instance("u_shift_mux", "MUX2", D0="cfi", D1="cti", S="shift", Y="n_load")
    m.add_instance("u_sc_or", "OR2", A="shift", B="capture", Y="n_sc")
    m.add_instance("u_ff", "DFFE", D="n_load", CK="wrck", E="n_sc", Q="n_ff_q")
    m.add_instance("u_cto_buf", "BUF", A="n_ff_q", Y="cto")
    # update stage: shadow latch, gated so it only opens in test mode
    m.add_instance("u_upd_and", "AND2", A="update", B="mode", Y="n_upd")
    m.add_instance("u_latch", "DLATCH", D="n_ff_q", G="n_upd", Q="n_upd_q")
    # output path: functional bypass vs test value, then safe insertion
    m.add_instance("u_mode_mux", "MUX2", D0="cfi", D1="n_upd_q", S="mode", Y="n_mode")
    m.add_instance("u_safe_tie", "TIE0", Y="n_safe_val")
    m.add_instance("u_safe_mux", "MUX2", D0="n_mode", D1="n_safe_val", S="safe_en", Y="n_out")
    m.add_instance("u_out_buf", "BUF", A="n_out", Y="cfo")
    return m


def make_wbc_light_cell(name: str = "WBC_LIGHT") -> Module:
    """A minimal shift-only boundary cell (no update stage, no safe mode).

    Used for ablation studies: trades ripple during shift for ~40% less
    area.  Structure: shift mux + hold mux + OR + FF + mode mux + buffer.
    """
    m = Module(name)
    for port in ("cfi", "cti", "wrck", "shift", "capture", "mode"):
        m.add_input(port)
    m.add_output("cfo")
    m.add_output("cto")
    m.add_instance("u_shift_mux", "MUX2", D0="cfi", D1="cti", S="shift", Y="n_load")
    m.add_instance("u_sc_or", "OR2", A="shift", B="capture", Y="n_sc")
    m.add_instance("u_hold_mux", "MUX2", D0="n_ff_q", D1="n_load", S="n_sc", Y="n_d")
    m.add_instance("u_ff", "DFF", D="n_d", CK="wrck", Q="n_ff_q")
    m.add_instance("u_cto_buf", "BUF", A="n_ff_q", Y="cto")
    m.add_instance("u_mode_mux", "MUX2", D0="cfi", D1="n_ff_q", S="mode", Y="n_out")
    m.add_instance("u_out_buf", "BUF", A="n_out", Y="cfo")
    return m


def make_wby_cell(name: str = "WBY") -> Module:
    """The 1-bit wrapper bypass register (WSI → FF → WSO)."""
    m = Module(name)
    m.add_input("wsi")
    m.add_input("wrck")
    m.add_output("wso")
    m.add_instance("u_ff", "DFF", D="wsi", CK="wrck", Q="wso")
    return m


#: Area of the full WBC in NAND2 equivalents (the paper's "26 gates").
WBC_AREA = make_wbc_cell().area()

#: Area of the light ablation cell.
WBC_LIGHT_AREA = make_wbc_light_cell().area()

#: Area of the bypass register.
WBY_AREA = make_wby_cell().area()
