"""Test-time models.

The wrapped-core scan-test formula is the standard cycle-accurate model
(Iyengar/Chakrabarty/Marinissen) the whole TAM literature uses::

    T = (1 + max(si, so)) * p + min(si, so)

for ``p`` patterns through wrapper scan-in/out depths ``si``/``so``: each
pattern needs ``max(si, so)`` shift cycles (load of pattern *i* overlaps
unload of pattern *i-1*) plus one capture cycle, and the last response
needs a final ``min(si, so)`` flush (the shorter side finishes inside the
next-to-last overlap).  The pattern translator reproduces exactly these
cycle counts, and an integration test pins the two together.

Functional tests are cycle-based: one vector per tester cycle plus the
wrapper-programming preamble.
"""

from __future__ import annotations

from functools import lru_cache

from repro.soc.core import Core
from repro.wrapper.balance import design_wrapper
from repro.wrapper.wir import WIR_BITS

#: Cycles to program one wrapper's WIR (shift opcode + update + select).
WIR_PROGRAM_CYCLES = WIR_BITS + 2

#: Cycles to reconfigure the chip between sessions (re-program WIRs,
#: switch TAM muxes, settle clocks).  Modelled, not published.
SESSION_RECONFIG_CYCLES = 32

#: Preamble cycles before a functional test (wrapper to FUNCTIONAL mode).
FUNCTIONAL_SETUP_CYCLES = WIR_PROGRAM_CYCLES


def scan_test_time(si: int, so: int, patterns: int) -> int:
    """Cycle count for a scan test through a wrapper (see module doc)."""
    if patterns <= 0:
        return 0
    return (1 + max(si, so)) * patterns + min(si, so)


def functional_test_time(patterns: int, setup: int = FUNCTIONAL_SETUP_CYCLES) -> int:
    """Cycle count for a cycle-based functional test."""
    if patterns <= 0:
        return 0
    return patterns + setup


def core_scan_time(core: Core, width: int, patterns: int | None = None) -> int:
    """Scan test time of ``core`` at TAM width ``width``.

    Uses the balanced wrapper plan for that width; ``patterns`` defaults
    to the core's total scan pattern count.
    """
    if patterns is None:
        patterns = core.scan_patterns
    plan = design_wrapper(core, width)
    return scan_test_time(plan.scan_in_depth, plan.scan_out_depth, patterns)


def make_scan_time_fn(core: Core, patterns: int):
    """A cached ``width -> cycles`` function for a core's scan test."""

    @lru_cache(maxsize=None)
    def time_fn(width: int) -> int:
        return core_scan_time(core, width, patterns)

    return time_fn


def best_width_time(core: Core, max_width: int, patterns: int | None = None) -> tuple[int, int]:
    """(width, cycles) minimizing scan time with width <= ``max_width``.

    Scan time is non-increasing in width, so this is simply the time at
    ``max_width`` — but the function also returns the *smallest* width
    achieving that time (extra wires that buy nothing are wasted pins).
    """
    best_time = core_scan_time(core, max_width, patterns)
    width = max_width
    while width > 1 and core_scan_time(core, width - 1, patterns) == best_time:
        width -= 1
    return width, best_time
