"""Test-time models.

The wrapped-core scan-test formula is the standard cycle-accurate model
(Iyengar/Chakrabarty/Marinissen) the whole TAM literature uses::

    T = (1 + max(si, so)) * p + min(si, so)

for ``p`` patterns through wrapper scan-in/out depths ``si``/``so``: each
pattern needs ``max(si, so)`` shift cycles (load of pattern *i* overlaps
unload of pattern *i-1*) plus one capture cycle, and the last response
needs a final ``min(si, so)`` flush (the shorter side finishes inside the
next-to-last overlap).  The pattern translator reproduces exactly these
cycle counts, and an integration test pins the two together.

Functional tests are cycle-based: one vector per tester cycle plus the
wrapper-programming preamble.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.soc.core import Core
from repro.wrapper.balance import design_wrapper
from repro.wrapper.wir import WIR_BITS

#: Cycles to program one wrapper's WIR (shift opcode + update + select).
WIR_PROGRAM_CYCLES = WIR_BITS + 2

#: Cycles to reconfigure the chip between sessions (re-program WIRs,
#: switch TAM muxes, settle clocks).  Modelled, not published.
SESSION_RECONFIG_CYCLES = 32

#: Preamble cycles before a functional test (wrapper to FUNCTIONAL mode).
FUNCTIONAL_SETUP_CYCLES = WIR_PROGRAM_CYCLES


def scan_test_time(si: int, so: int, patterns: int) -> int:
    """Cycle count for a scan test through a wrapper (see module doc)."""
    if patterns <= 0:
        return 0
    return (1 + max(si, so)) * patterns + min(si, so)


def functional_test_time(patterns: int, setup: int = FUNCTIONAL_SETUP_CYCLES) -> int:
    """Cycle count for a cycle-based functional test."""
    if patterns <= 0:
        return 0
    return patterns + setup


#: Cap on the process-level scan-time-table cache (distinct core
#: structures, not chips — identical cores across a corpus share one
#: entry, so even a 10^5-chip sweep stays far below this unless every
#: chip's every core is structurally unique).
SCAN_TIME_CACHE_CAP = 4096

#: Process-level ``(core digest, patterns, max_width) -> ScanTimeModel``
#: LRU.  The per-``Core``-object memo dies with the object; a generated
#: corpus builds fresh ``Core`` instances for every chip even when the
#: structures repeat, and a ``repro.core.batch`` worker process outlives
#: thousands of chips — this cache makes each distinct core structure
#: pay for its ``design_wrapper`` sweep once per process, not once per
#: chip.
_SCAN_TIME_CACHE: OrderedDict[tuple[str, int, int], "ScanTimeModel"] = OrderedDict()
_SCAN_TIME_LOCK = threading.Lock()
_SCAN_TIME_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def _core_structural_digest(core: Core) -> str:
    """The core's content digest (cached on the object): identical
    structures — however many times the generator rebuilds them —
    share one key.  The canonical form includes the core name, so two
    look-alike cores with different names never alias (a
    :class:`ScanTimeModel` records ``core_name`` and task/result
    equality depends on it)."""
    digest = core.__dict__.get("_canonical_digest")
    if digest is None:
        from repro.soc.digest import canonical_core, digest_document

        digest = core.__dict__["_canonical_digest"] = digest_document(
            canonical_core(core)
        )
    return digest


def scan_time_cache_stats() -> dict:
    """Counters for the process-level table cache (benchmark/test aid)."""
    with _SCAN_TIME_LOCK:
        return {
            **_SCAN_TIME_STATS,
            "entries": len(_SCAN_TIME_CACHE),
            "capacity": SCAN_TIME_CACHE_CAP,
        }


def clear_scan_time_cache() -> None:
    """Drop every process-level table and reset the counters (tests)."""
    with _SCAN_TIME_LOCK:
        _SCAN_TIME_CACHE.clear()
        _SCAN_TIME_STATS.update(hits=0, misses=0, evictions=0)


def core_scan_time(core: Core, width: int, patterns: int | None = None) -> int:
    """Scan test time of ``core`` at TAM width ``width``.

    Uses the balanced wrapper plan for that width; ``patterns`` defaults
    to the core's total scan pattern count.
    """
    if patterns is None:
        patterns = core.scan_patterns
    plan = design_wrapper(core, width)
    return scan_test_time(plan.scan_in_depth, plan.scan_out_depth, patterns)


@dataclass(frozen=True)
class ScanTimeModel:
    """Declarative ``width -> cycles`` model for one core's scan test.

    The monotone non-increasing time table is computed **once** per
    (core, patterns) pair — running :func:`design_wrapper` for every
    useful width up front — and stored as a plain tuple, so the model is

    * **picklable** — tasks and schedule results built from it cross
      process boundaries (the ``repro.core.batch`` process backend),
      unlike the closure-over-``Core`` + ``lru_cache`` it replaced, and
    * **O(1) in the scheduler hot loop** — the session local search
      re-evaluates ``task.time()`` thousands of times per chip; every
      call is a tuple index, never a wrapper redesign.

    ``times[w - 1]`` is the cycle count at TAM width ``w``; widths above
    the table clamp to the last entry (extra wires buy nothing past the
    task's own maximum useful width).
    """

    core_name: str
    patterns: int
    times: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError(
                f"scan-time model for {self.core_name!r} needs at least one width"
            )

    @classmethod
    def for_core(
        cls, core: Core, patterns: int | None = None, max_width: int | None = None
    ) -> "ScanTimeModel":
        """Precompute the table for ``core`` over widths ``1..max_width``
        (default: the core's largest useful scan width).

        Tables are memoized at two levels.  A memo **on the core
        object** (keyed by ``(patterns, max_width)``) makes repeat
        calls for a live core free.  Behind it, a **process-level LRU**
        keyed by the core's structural digest shares tables across
        *distinct but identical* core objects — the common case in
        corpus sweeps, where the generator rebuilds the same structures
        for every chip and a batch worker process integrates thousands
        of them.  Both levels assume the core's wrapper-relevant
        structure (ports, chains, core type) is not mutated between
        calls; the model itself is frozen, so sharing one instance
        across cores and threads is safe.
        """
        if patterns is None:
            patterns = core.scan_patterns
        if max_width is None:
            from repro.sched.tasks import scan_max_width

            max_width = scan_max_width(core)
        cache = core.__dict__.setdefault("_scan_time_models", {})
        key = (patterns, max_width)
        model = cache.get(key)
        if model is not None:
            return model
        shared_key = (_core_structural_digest(core), patterns, max_width)
        with _SCAN_TIME_LOCK:
            model = _SCAN_TIME_CACHE.get(shared_key)
            if model is not None:
                _SCAN_TIME_CACHE.move_to_end(shared_key)
                _SCAN_TIME_STATS["hits"] += 1
        if model is None:
            times = tuple(
                core_scan_time(core, width, patterns)
                for width in range(1, max(1, max_width) + 1)
            )
            model = cls(core_name=core.name, patterns=patterns, times=times)
            with _SCAN_TIME_LOCK:
                _SCAN_TIME_STATS["misses"] += 1
                _SCAN_TIME_CACHE[shared_key] = model
                _SCAN_TIME_CACHE.move_to_end(shared_key)
                while len(_SCAN_TIME_CACHE) > SCAN_TIME_CACHE_CAP:
                    _SCAN_TIME_CACHE.popitem(last=False)
                    _SCAN_TIME_STATS["evictions"] += 1
        cache[key] = model
        return model

    @property
    def max_width(self) -> int:
        """Largest width the table covers (wider queries clamp to it)."""
        return len(self.times)

    def __call__(self, width: int) -> int:
        """Cycle count at TAM width ``width`` (clamped into the table)."""
        if width < 1:
            width = 1
        return self.times[min(width, len(self.times)) - 1]


def make_scan_time_fn(core: Core, patterns: int) -> ScanTimeModel:
    """A precomputed ``width -> cycles`` callable for a core's scan test.

    Kept for API compatibility; returns a (picklable)
    :class:`ScanTimeModel` rather than the old closure.
    """
    return ScanTimeModel.for_core(core, patterns)


def best_width_time(core: Core, max_width: int, patterns: int | None = None) -> tuple[int, int]:
    """(width, cycles) minimizing scan time with width <= ``max_width``.

    Scan time is non-increasing in width, so this is simply the time at
    ``max_width`` — but the function also returns the *smallest* width
    achieving that time (extra wires that buy nothing are wasted pins).

    Reads the precomputed (and corpus-wide memoized)
    :class:`ScanTimeModel` table instead of re-running
    ``design_wrapper`` per width: the first call per core structure
    pays for the sweep once; every later call — any ``max_width`` ≤ the
    table, any caller — is tuple indexing.
    """
    model = ScanTimeModel.for_core(core, patterns, max_width=max_width)
    best_time = model(max_width)
    width = max_width
    while width > 1 and model(width - 1) == best_time:
        width -= 1
    return width, best_time
