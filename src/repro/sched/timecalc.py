"""Test-time models.

The wrapped-core scan-test formula is the standard cycle-accurate model
(Iyengar/Chakrabarty/Marinissen) the whole TAM literature uses::

    T = (1 + max(si, so)) * p + min(si, so)

for ``p`` patterns through wrapper scan-in/out depths ``si``/``so``: each
pattern needs ``max(si, so)`` shift cycles (load of pattern *i* overlaps
unload of pattern *i-1*) plus one capture cycle, and the last response
needs a final ``min(si, so)`` flush (the shorter side finishes inside the
next-to-last overlap).  The pattern translator reproduces exactly these
cycle counts, and an integration test pins the two together.

Functional tests are cycle-based: one vector per tester cycle plus the
wrapper-programming preamble.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.core import Core
from repro.wrapper.balance import design_wrapper
from repro.wrapper.wir import WIR_BITS

#: Cycles to program one wrapper's WIR (shift opcode + update + select).
WIR_PROGRAM_CYCLES = WIR_BITS + 2

#: Cycles to reconfigure the chip between sessions (re-program WIRs,
#: switch TAM muxes, settle clocks).  Modelled, not published.
SESSION_RECONFIG_CYCLES = 32

#: Preamble cycles before a functional test (wrapper to FUNCTIONAL mode).
FUNCTIONAL_SETUP_CYCLES = WIR_PROGRAM_CYCLES


def scan_test_time(si: int, so: int, patterns: int) -> int:
    """Cycle count for a scan test through a wrapper (see module doc)."""
    if patterns <= 0:
        return 0
    return (1 + max(si, so)) * patterns + min(si, so)


def functional_test_time(patterns: int, setup: int = FUNCTIONAL_SETUP_CYCLES) -> int:
    """Cycle count for a cycle-based functional test."""
    if patterns <= 0:
        return 0
    return patterns + setup


def core_scan_time(core: Core, width: int, patterns: int | None = None) -> int:
    """Scan test time of ``core`` at TAM width ``width``.

    Uses the balanced wrapper plan for that width; ``patterns`` defaults
    to the core's total scan pattern count.
    """
    if patterns is None:
        patterns = core.scan_patterns
    plan = design_wrapper(core, width)
    return scan_test_time(plan.scan_in_depth, plan.scan_out_depth, patterns)


@dataclass(frozen=True)
class ScanTimeModel:
    """Declarative ``width -> cycles`` model for one core's scan test.

    The monotone non-increasing time table is computed **once** per
    (core, patterns) pair — running :func:`design_wrapper` for every
    useful width up front — and stored as a plain tuple, so the model is

    * **picklable** — tasks and schedule results built from it cross
      process boundaries (the ``repro.core.batch`` process backend),
      unlike the closure-over-``Core`` + ``lru_cache`` it replaced, and
    * **O(1) in the scheduler hot loop** — the session local search
      re-evaluates ``task.time()`` thousands of times per chip; every
      call is a tuple index, never a wrapper redesign.

    ``times[w - 1]`` is the cycle count at TAM width ``w``; widths above
    the table clamp to the last entry (extra wires buy nothing past the
    task's own maximum useful width).
    """

    core_name: str
    patterns: int
    times: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.times:
            raise ValueError(
                f"scan-time model for {self.core_name!r} needs at least one width"
            )

    @classmethod
    def for_core(
        cls, core: Core, patterns: int | None = None, max_width: int | None = None
    ) -> "ScanTimeModel":
        """Precompute the table for ``core`` over widths ``1..max_width``
        (default: the core's largest useful scan width).

        Tables are memoized **on the core object** keyed by
        ``(patterns, max_width)`` — once per (core, patterns), however
        many times tasks are rebuilt — so the cache's lifetime is the
        core's.  The memo assumes the core's wrapper-relevant structure
        (ports, chains, core type) is not mutated between calls.
        """
        if patterns is None:
            patterns = core.scan_patterns
        if max_width is None:
            from repro.sched.tasks import scan_max_width

            max_width = scan_max_width(core)
        cache = core.__dict__.setdefault("_scan_time_models", {})
        key = (patterns, max_width)
        model = cache.get(key)
        if model is None:
            times = tuple(
                core_scan_time(core, width, patterns)
                for width in range(1, max(1, max_width) + 1)
            )
            model = cache[key] = cls(
                core_name=core.name, patterns=patterns, times=times
            )
        return model

    @property
    def max_width(self) -> int:
        """Largest width the table covers (wider queries clamp to it)."""
        return len(self.times)

    def __call__(self, width: int) -> int:
        """Cycle count at TAM width ``width`` (clamped into the table)."""
        if width < 1:
            width = 1
        return self.times[min(width, len(self.times)) - 1]


def make_scan_time_fn(core: Core, patterns: int) -> ScanTimeModel:
    """A precomputed ``width -> cycles`` callable for a core's scan test.

    Kept for API compatibility; returns a (picklable)
    :class:`ScanTimeModel` rather than the old closure.
    """
    return ScanTimeModel.for_core(core, patterns)


def best_width_time(core: Core, max_width: int, patterns: int | None = None) -> tuple[int, int]:
    """(width, cycles) minimizing scan time with width <= ``max_width``.

    Scan time is non-increasing in width, so this is simply the time at
    ``max_width`` — but the function also returns the *smallest* width
    achieving that time (extra wires that buy nothing are wasted pins).
    """
    best_time = core_scan_time(core, max_width, patterns)
    width = max_width
    while width > 1 and core_scan_time(core, width - 1, patterns) == best_time:
        width -= 1
    return width, best_time
