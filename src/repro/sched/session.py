"""Session-based test scheduling (the paper's core contribution).

"The Scheduler partitions core tests into several test sessions, and
assigns the TAM wires to each core to meet the power and IO resource
constraints" (Section 2).  A *session* is a set of tests that run
concurrently; the chip is reconfigured between sessions, so control pins
are only needed for the session's members — the whole reason
session-based scheduling beats non-session scheduling under tight IO
budgets (Section 3).

Algorithm: for each candidate session count ``k``, seed with a
longest-first greedy placement, then improve with first-improvement
local search (single-task moves and pairwise swaps).  Width assignment
inside a session is exact given the membership: wires go to the critical
(longest) scan task until it stops improving.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.sched.ioalloc import SharingPolicy, control_pins
from repro.sched.power import fits_power_budget
from repro.sched.result import ScheduledTest, ScheduleResult, Session, TestTask
from repro.sched.timecalc import SESSION_RECONFIG_CYCLES
from repro.soc.soc import Soc


class InfeasibleScheduleError(ValueError):
    """Raised when no feasible schedule exists for the given resources."""


def assign_widths(tasks: list[TestTask], data_pins: int) -> Optional[dict[str, int]]:
    """Assign TAM wire pairs to the scan tasks of one session.

    A width-``w`` connection costs ``2w`` data pins (w in + w out).
    Returns task-name → width, or ``None`` if the scan tasks cannot all
    get at least one wire pair.
    """
    scan_tasks = [t for t in tasks if t.is_scan]
    if not scan_tasks:
        return {}
    pairs = data_pins // 2
    if pairs < len(scan_tasks):
        return None
    widths = {t.name: 1 for t in scan_tasks}
    remaining = pairs - len(scan_tasks)
    while remaining > 0:
        # the session is as long as its slowest member: widen that one
        order = sorted(scan_tasks, key=lambda t: -t.time(widths[t.name]))
        granted = False
        for task in order:
            w = widths[task.name]
            current = task.time(w)
            # smallest extra wires that actually shorten this task
            for extra in range(1, remaining + 1):
                if w + extra > task.max_width:
                    break
                if task.time(w + extra) < current:
                    widths[task.name] = w + extra
                    remaining -= extra
                    granted = True
                    break
            if granted:
                break
            if task is order[0] and w >= task.max_width:
                # critical task saturated: no grant can shorten the session
                return widths
        if not granted:
            break
    return widths


def build_session(
    index: int,
    tasks: list[TestTask],
    soc: Soc,
    policy: SharingPolicy = SharingPolicy(),
) -> Optional[Session]:
    """Materialize a session from a membership set, or ``None`` if the
    membership violates a constraint (mutexes, power, pins)."""
    if not tasks:
        return Session(index=index)
    # per-core mutex: a core's tests cannot run concurrently
    cores = [t.core_name for t in tasks]
    if len(cores) != len(set(cores)):
        return None
    # the chip functional interface serves one functional test at a time
    if sum(1 for t in tasks if t.uses_functional_pins) > 1:
        return None
    if not fits_power_budget(tasks, soc.power_budget):
        return None
    ctrl = control_pins(tasks, policy)
    if ctrl > soc.test_pins:
        return None
    data = soc.test_pins - ctrl
    widths = assign_widths(tasks, data)
    if widths is None:
        return None
    scheduled = [
        ScheduledTest(task=t, width=widths.get(t.name, 1), start=0) for t in tasks
    ]
    return Session(index=index, tests=scheduled, control_pins=ctrl, data_pins=data)


def _total_time(sessions: list[Session], reconfig: int) -> int:
    """Makespan of a session sequence: lengths plus one reconfiguration
    between consecutive *non-trivial* sessions.  A zero-length session
    (every member test has zero patterns) applies no cycles, so the chip
    is never actually reconfigured for it — charging it
    ``SESSION_RECONFIG_CYCLES`` would inflate the makespan."""
    used = [s for s in sessions if s.tests and s.length > 0]
    if not used:
        return 0
    return sum(s.length for s in used) + reconfig * (len(used) - 1)


def _finalize_sessions(
    sessions: list[Session], reconfig: int
) -> tuple[list[Session], int]:
    """Assemble the final session list: drop empty sessions, merge all
    zero-length sessions into one trailing no-op session, renumber, and
    set test start offsets.

    Zero-length tests stay in the schedule (the verifier's coverage rule
    demands every input task placed exactly once) but cost nothing: the
    merged session sits at the makespan with zero duration and no
    reconfiguration charge.  Returns ``(sessions, total_time)``;
    ``total_time`` equals :func:`_total_time` on the input.
    """
    real = [s for s in sessions if s.tests and s.length > 0]
    zero_tests = [t for s in sessions if s.tests and s.length == 0 for t in s.tests]
    offset = 0
    for i, session in enumerate(real):
        session.index = i
        for test in session.tests:
            test.start = offset
        offset += session.length
        if i < len(real) - 1:
            offset += reconfig
    finalized = list(real)
    if zero_tests:
        for test in zero_tests:
            test.start = offset
        # control/data pins deliberately 0: a no-op session programs
        # nothing, and the verifier skips accounting on zeroed sessions
        finalized.append(Session(index=len(real), tests=zero_tests))
    return finalized, offset


def _materialize(
    memberships: list[list[TestTask]], soc: Soc, policy: SharingPolicy
) -> Optional[list[Session]]:
    sessions = []
    for i, members in enumerate(memberships):
        session = build_session(i, members, soc, policy)
        if session is None:
            return None
        sessions.append(session)
    return sessions


def _greedy_seed(
    tasks: list[TestTask], k: int, soc: Soc, policy: SharingPolicy, reconfig: int
) -> Optional[list[list[TestTask]]]:
    memberships: list[list[TestTask]] = [[] for _ in range(k)]
    for task in sorted(tasks, key=lambda t: -t.min_time):
        best_idx, best_total = None, None
        for i in range(k):
            trial = [list(m) for m in memberships]
            trial[i].append(task)
            sessions = _materialize(trial, soc, policy)
            if sessions is None:
                continue
            total = _total_time(sessions, reconfig)
            if best_total is None or total < best_total:
                best_idx, best_total = i, total
        if best_idx is None:
            return None
        memberships[best_idx].append(task)
    return memberships


def _local_search(
    memberships: list[list[TestTask]],
    soc: Soc,
    policy: SharingPolicy,
    reconfig: int,
    max_rounds: int = 60,
) -> list[list[TestTask]]:
    best = [list(m) for m in memberships]
    sessions = _materialize(best, soc, policy)
    best_total = _total_time(sessions, reconfig)
    for _ in range(max_rounds):
        improved = False
        # single-task moves
        for src, dst in itertools.permutations(range(len(best)), 2):
            for task in list(best[src]):
                trial = [list(m) for m in best]
                trial[src].remove(task)
                trial[dst].append(task)
                sessions = _materialize(trial, soc, policy)
                if sessions is None:
                    continue
                total = _total_time(sessions, reconfig)
                if total < best_total:
                    best, best_total, improved = trial, total, True
                    break
            if improved:
                break
        if improved:
            continue
        # pairwise swaps
        for a, b in itertools.combinations(range(len(best)), 2):
            for ta in list(best[a]):
                for tb in list(best[b]):
                    trial = [list(m) for m in best]
                    trial[a].remove(ta)
                    trial[b].remove(tb)
                    trial[a].append(tb)
                    trial[b].append(ta)
                    sessions = _materialize(trial, soc, policy)
                    if sessions is None:
                        continue
                    total = _total_time(sessions, reconfig)
                    if total < best_total:
                        best, best_total, improved = trial, total, True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break
    return best


def schedule_sessions(
    soc: Soc,
    tasks: list[TestTask],
    n_sessions: int | None = None,
    policy: SharingPolicy = SharingPolicy(),
    reconfig: int = SESSION_RECONFIG_CYCLES,
    max_sessions: int = 8,
) -> ScheduleResult:
    """Session-based schedule for ``tasks`` on ``soc``.

    When ``n_sessions`` is None, a window of ``max_sessions`` candidate
    session counts is searched, starting at the mutex-forced floor
    (functional tests serialize on the chip's functional interface,
    BIST groups on the engine, a core's tests on the core) and capped
    at the task count — ``floor .. min(#tasks, floor + max_sessions - 1)``.
    For small chips (floor 1) this is the classic ``1 .. max_sessions``
    search; large chips with many functional tests start higher and
    stay schedulable.  ``max_sessions`` sizes the search window — it is
    not a hard cap on the returned session count; pass ``n_sessions``
    to pin the count exactly.  The best feasible result is returned.
    """
    if not tasks:
        return ScheduleResult(soc_name=soc.name, strategy="session-based",
                              pin_budget=soc.test_pins)
    if n_sessions is not None:
        candidates = [n_sessions]
    else:
        per_core: dict[str, int] = {}
        for t in tasks:
            per_core[t.core_name] = per_core.get(t.core_name, 0) + 1
        forced = max(
            1,
            sum(1 for t in tasks if t.uses_functional_pins),
            sum(1 for t in tasks if t.uses_bist_port),
            max(per_core.values()),
        )
        # a window of max_sessions candidate counts starting at the floor
        # (degenerates to the classic 1..max_sessions for small chips)
        candidates = list(range(forced, min(len(tasks), forced + max_sessions - 1) + 1))
    best_sessions: Optional[list[Session]] = None
    best_total: Optional[int] = None
    for k in candidates:
        seed = _greedy_seed(tasks, k, soc, policy, reconfig)
        if seed is None:
            continue
        improved = _local_search(seed, soc, policy, reconfig)
        sessions = _materialize(improved, soc, policy)
        total = _total_time(sessions, reconfig)
        if best_total is None or total < best_total:
            best_sessions, best_total = sessions, total
    if best_sessions is None:
        raise InfeasibleScheduleError(
            f"no feasible session schedule for {soc.name!r} with "
            f"{soc.test_pins} pins (tried {candidates} sessions)"
        )
    used, total = _finalize_sessions(best_sessions, reconfig)
    return ScheduleResult(
        soc_name=soc.name,
        strategy="session-based",
        sessions=used,
        total_time=total,
        pin_budget=soc.test_pins,
        notes=f"{len(used)} sessions, reconfig {reconfig} cycles each",
    )


def schedule_serial(
    soc: Soc,
    tasks: list[TestTask],
    policy: SharingPolicy = SharingPolicy(),
    reconfig: int = SESSION_RECONFIG_CYCLES,
) -> ScheduleResult:
    """Fully serial baseline: one task per session, each at max width."""
    memberships = [[t] for t in sorted(tasks, key=lambda t: -t.min_time)]
    sessions = _materialize(memberships, soc, policy)
    if sessions is None:
        raise InfeasibleScheduleError(
            f"serial schedule infeasible for {soc.name!r}: some single test "
            f"does not fit in {soc.test_pins} pins"
        )
    used, total = _finalize_sessions(sessions, reconfig)
    return ScheduleResult(
        soc_name=soc.name,
        strategy="serial",
        sessions=used,
        total_time=total,
        pin_budget=soc.test_pins,
        notes=f"{len(used)} single-test sessions",
    )
