"""Session-based test scheduling (the paper's core contribution).

"The Scheduler partitions core tests into several test sessions, and
assigns the TAM wires to each core to meet the power and IO resource
constraints" (Section 2).  A *session* is a set of tests that run
concurrently; the chip is reconfigured between sessions, so control pins
are only needed for the session's members — the whole reason
session-based scheduling beats non-session scheduling under tight IO
budgets (Section 3).

Algorithm: for each candidate session count ``k``, seed with a
longest-first greedy placement, then improve with first-improvement
local search (single-task moves and pairwise swaps).  Width assignment
inside a session is exact given the membership: wires go to the critical
(longest) scan task until it stops improving.

The search is **incremental**: a candidate move touches exactly two
sessions, so only those two memberships are re-evaluated (through a
memo keyed by ordered membership — the greedy seed's k-way trial
placement and the O(n²) swap neighborhood revisit identical memberships
constantly) and the running makespan is updated by delta instead of
re-summed.  The candidate-``k`` loop and the local-search rounds are
additionally pruned against the five-floor session lower bound
(:func:`repro.sched.bounds.session_schedule_floor`): once the incumbent
reaches the floor, nothing can *strictly* improve, so stopping early
cannot change the answer.  The pre-incremental search is retained in
:mod:`repro.sched.session_ref` as the differential-test oracle — the
two engines are bit-identical by construction and by test.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.obs import METRICS, span
from repro.sched.bounds import session_schedule_floor
from repro.sched.ioalloc import SharingPolicy, control_pins
from repro.sched.power import fits_power_budget
from repro.sched.result import ScheduledTest, ScheduleResult, Session, TestTask
from repro.sched.timecalc import SESSION_RECONFIG_CYCLES
from repro.soc.soc import Soc


class InfeasibleScheduleError(ValueError):
    """Raised when no feasible schedule exists for the given resources."""


# Search telemetry (see repro.obs): the hot loop counts into plain local
# ints and flushes here once per scheduling run, so the instrumented
# path costs additions, not lock round-trips.
_M_RUNS = METRICS.counter("sched.runs", "session-search invocations")
_M_ROUNDS = METRICS.counter("sched.rounds", "local-search improvement rounds run")
_M_MOVES = METRICS.counter(
    "sched.moves.evaluated", "single-task moves and pairwise swaps evaluated"
)
_M_MOVES_PRUNED = METRICS.counter(
    "sched.moves.pruned",
    "neighborhood moves skipped because the incumbent hit session_schedule_floor",
)
_M_CANDIDATES_PRUNED = METRICS.counter(
    "sched.candidates.pruned",
    "candidate session counts skipped once the incumbent hit the floor",
)
_M_FLOOR_EXITS = METRICS.counter(
    "sched.floor_exits", "local-search terminations by reason"
)
for _reason in ("floor", "converged", "max_rounds"):
    _M_FLOOR_EXITS.inc(0, reason=_reason)
_M_MEMO_HITS = METRICS.counter(
    "cache.evaluator_memo.hits", "session-evaluator membership-memo hits"
)
_M_MEMO_MISSES = METRICS.counter(
    "cache.evaluator_memo.misses", "session-evaluator membership-memo misses"
)


def assign_widths(tasks: list[TestTask], data_pins: int) -> Optional[dict[str, int]]:
    """Assign TAM wire pairs to the scan tasks of one session.

    A width-``w`` connection costs ``2w`` data pins (w in + w out).
    Returns task-name → width, or ``None`` if the scan tasks cannot all
    get at least one wire pair.
    """
    scan_tasks = [t for t in tasks if t.is_scan]
    if not scan_tasks:
        return {}
    pairs = data_pins // 2
    if pairs < len(scan_tasks):
        return None
    widths = {t.name: 1 for t in scan_tasks}
    remaining = pairs - len(scan_tasks)
    while remaining > 0:
        # the session is as long as its slowest member: widen that one
        order = sorted(scan_tasks, key=lambda t: -t.time(widths[t.name]))
        granted = False
        for task in order:
            w = widths[task.name]
            current = task.time(w)
            # smallest extra wires that actually shorten this task
            for extra in range(1, remaining + 1):
                if w + extra > task.max_width:
                    break
                if task.time(w + extra) < current:
                    widths[task.name] = w + extra
                    remaining -= extra
                    granted = True
                    break
            if granted:
                break
            if task is order[0] and w >= task.max_width:
                # critical task saturated: no grant can shorten the session
                return widths
        if not granted:
            break
    return widths


def build_session(
    index: int,
    tasks: list[TestTask],
    soc: Soc,
    policy: SharingPolicy = SharingPolicy(),
) -> Optional[Session]:
    """Materialize a session from a membership set, or ``None`` if the
    membership violates a constraint (mutexes, power, pins)."""
    if not tasks:
        return Session(index=index)
    # per-core mutex: a core's tests cannot run concurrently
    cores = [t.core_name for t in tasks]
    if len(cores) != len(set(cores)):
        return None
    # the chip functional interface serves one functional test at a time
    if sum(1 for t in tasks if t.uses_functional_pins) > 1:
        return None
    if not fits_power_budget(tasks, soc.power_budget):
        return None
    ctrl = control_pins(tasks, policy)
    if ctrl > soc.test_pins:
        return None
    data = soc.test_pins - ctrl
    widths = assign_widths(tasks, data)
    if widths is None:
        return None
    scheduled = [
        ScheduledTest(task=t, width=widths.get(t.name, 1), start=0) for t in tasks
    ]
    return Session(index=index, tests=scheduled, control_pins=ctrl, data_pins=data)


def _total_time(sessions: list[Session], reconfig: int) -> int:
    """Makespan of a session sequence: lengths plus one reconfiguration
    between consecutive *non-trivial* sessions.  A zero-length session
    (every member test has zero patterns) applies no cycles, so the chip
    is never actually reconfigured for it — charging it
    ``SESSION_RECONFIG_CYCLES`` would inflate the makespan."""
    used = [s for s in sessions if s.tests and s.length > 0]
    if not used:
        return 0
    return sum(s.length for s in used) + reconfig * (len(used) - 1)


def _finalize_sessions(
    sessions: list[Session], reconfig: int
) -> tuple[list[Session], int]:
    """Assemble the final session list: drop empty sessions, merge all
    zero-length sessions into one trailing no-op session, renumber, and
    set test start offsets.

    Zero-length tests stay in the schedule (the verifier's coverage rule
    demands every input task placed exactly once) but cost nothing: the
    merged session sits at the makespan with zero duration and no
    reconfiguration charge.  Returns ``(sessions, total_time)``;
    ``total_time`` equals :func:`_total_time` on the input.
    """
    real = [s for s in sessions if s.tests and s.length > 0]
    zero_tests = [t for s in sessions if s.tests and s.length == 0 for t in s.tests]
    offset = 0
    for i, session in enumerate(real):
        session.index = i
        for test in session.tests:
            test.start = offset
        offset += session.length
        if i < len(real) - 1:
            offset += reconfig
    finalized = list(real)
    if zero_tests:
        for test in zero_tests:
            test.start = offset
        # control/data pins deliberately 0: a no-op session programs
        # nothing, and the verifier skips accounting on zeroed sessions
        finalized.append(Session(index=len(real), tests=zero_tests))
    return finalized, offset


class _SessionEvaluator:
    """Memoized membership → session length, the search's inner oracle.

    ``length(members)`` answers the only two questions the search asks
    of a membership — is it feasible, and how long is the session — by
    running the same checks as :func:`build_session` (same call order,
    same width assignment) without allocating ``Session`` /
    ``ScheduledTest`` objects.  Results are memoized keyed by the
    *ordered* identity tuple of the members: order is semantic (width
    assignment breaks ties by membership order, and the final test list
    preserves it), and the greedy seed's k-way trials, the O(n²) swap
    neighborhood, and every post-improvement re-scan revisit identical
    memberships, so the memo absorbs most of the search.  Task objects
    are fixed for the lifetime of one scheduling run, so ``id()`` is a
    stable, collision-free key component.
    """

    __slots__ = ("soc", "policy", "_memo", "hits", "misses")

    def __init__(self, soc: Soc, policy: SharingPolicy):
        self.soc = soc
        self.policy = policy
        self._memo: dict[tuple[int, ...], Optional[int]] = {}
        self.hits = 0
        self.misses = 0

    def length(self, members: list[TestTask]) -> Optional[int]:
        """Session length of ``members``, or ``None`` if infeasible."""
        if not members:
            return 0
        key = tuple(map(id, members))
        try:
            cached = self._memo[key]
            self.hits += 1
            return cached
        except KeyError:
            self.misses += 1
        result = self._evaluate(members)
        self._memo[key] = result
        return result

    def _evaluate(self, members: list[TestTask]) -> Optional[int]:
        # mirrors build_session's feasibility checks exactly
        cores = [t.core_name for t in members]
        if len(cores) != len(set(cores)):
            return None
        if sum(1 for t in members if t.uses_functional_pins) > 1:
            return None
        if not fits_power_budget(members, self.soc.power_budget):
            return None
        ctrl = control_pins(members, self.policy)
        if ctrl > self.soc.test_pins:
            return None
        widths = assign_widths(members, self.soc.test_pins - ctrl)
        if widths is None:
            return None
        return max(t.time(widths.get(t.name, 1)) for t in members)


def _makespan(sum_len: int, active: int, reconfig: int) -> int:
    """Makespan from the two running aggregates: total length of the
    non-trivial sessions and their count (reconfig between each pair)."""
    return sum_len + reconfig * (active - 1) if active else 0


def _greedy_seed(
    tasks: list[TestTask],
    k: int,
    evaluator: _SessionEvaluator,
    reconfig: int,
) -> Optional[tuple[list[list[TestTask]], list[int]]]:
    """Longest-first greedy placement over ``k`` sessions.

    Each trial placement touches exactly one session, so only that
    session is re-evaluated (the other ``k-1`` are unchanged and known
    feasible) and the trial makespan is the incumbent adjusted by the
    one session's length delta — O(1) bookkeeping per trial where the
    reference rebuilds all ``k`` sessions.
    """
    members: list[list[TestTask]] = [[] for _ in range(k)]
    lengths = [0] * k
    sum_len = 0
    active = 0
    for task in sorted(tasks, key=lambda t: -t.min_time):
        best_idx: Optional[int] = None
        best_total: Optional[int] = None
        best_len = 0
        for i in range(k):
            new_len = evaluator.length(members[i] + [task])
            if new_len is None:
                continue
            s, a = sum_len, active
            if lengths[i]:
                s -= lengths[i]
                a -= 1
            if new_len:
                s += new_len
                a += 1
            total = _makespan(s, a, reconfig)
            if best_total is None or total < best_total:
                best_idx, best_total, best_len = i, total, new_len
        if best_idx is None:
            return None
        if lengths[best_idx]:
            sum_len -= lengths[best_idx]
            active -= 1
        if best_len:
            sum_len += best_len
            active += 1
        lengths[best_idx] = best_len
        members[best_idx].append(task)
    return members, lengths


def _local_search(
    members: list[list[TestTask]],
    lengths: list[int],
    evaluator: _SessionEvaluator,
    reconfig: int,
    floor: int,
    max_rounds: int = 60,
    stats: Optional[dict] = None,
) -> tuple[list[list[TestTask]], int]:
    """First-improvement local search (moves, then swaps), incremental.

    A move or swap touches two sessions: only those two memberships are
    evaluated (memoized) and the makespan is updated by delta.  Rounds
    stop early once the incumbent reaches ``floor`` — every feasible
    makespan is ≥ the floor, so no *strict* improvement exists and the
    reference search's remaining rounds would scan and accept nothing.
    Returns the improved memberships and their makespan.

    ``stats`` (when given) accumulates search telemetry — plain local
    integer counters, flushed by the caller, so the hot loop never
    touches a lock: ``rounds``, ``moves`` (move and swap candidates
    evaluated), ``moves_pruned`` (on a floor exit, the size of the
    neighborhood — ``(k-1)·n`` single-task moves plus the pairwise swap
    space — that the reference search would have scanned next without
    accepting anything), and ``exits[reason]`` for reason ``floor`` /
    ``converged`` / ``max_rounds``.  Telemetry never influences the
    search — bit-identity with the reference is unconditional.
    """
    k = len(members)
    sum_len = sum(ln for ln in lengths if ln)
    active = sum(1 for ln in lengths if ln)
    best_total = _makespan(sum_len, active, reconfig)
    rounds = moves = pruned = 0
    exit_reason = "max_rounds"
    for _ in range(max_rounds):
        if best_total <= floor:
            exit_reason = "floor"
            n_tasks = sum(len(m) for m in members)
            pruned = (k - 1) * n_tasks + sum(
                len(members[a]) * len(members[b])
                for a, b in itertools.combinations(range(k), 2)
            )
            break
        rounds += 1
        improved = False
        # single-task moves
        for src, dst in itertools.permutations(range(k), 2):
            for ti in range(len(members[src])):
                moves += 1
                task = members[src][ti]
                new_src = members[src][:ti] + members[src][ti + 1:]
                len_src = evaluator.length(new_src)
                if len_src is None:
                    continue
                new_dst = members[dst] + [task]
                len_dst = evaluator.length(new_dst)
                if len_dst is None:
                    continue
                s, a = sum_len, active
                for i, new_len in ((src, len_src), (dst, len_dst)):
                    if lengths[i]:
                        s -= lengths[i]
                        a -= 1
                    if new_len:
                        s += new_len
                        a += 1
                total = _makespan(s, a, reconfig)
                if total < best_total:
                    members[src], members[dst] = new_src, new_dst
                    lengths[src], lengths[dst] = len_src, len_dst
                    sum_len, active, best_total = s, a, total
                    improved = True
                    break
            if improved:
                break
        if improved:
            continue
        # pairwise swaps
        for sa, sb in itertools.combinations(range(k), 2):
            for ti in range(len(members[sa])):
                ta = members[sa][ti]
                base_a = members[sa][:ti] + members[sa][ti + 1:]
                for tj in range(len(members[sb])):
                    moves += 1
                    tb = members[sb][tj]
                    new_a = base_a + [tb]
                    len_a = evaluator.length(new_a)
                    if len_a is None:
                        continue
                    new_b = members[sb][:tj] + members[sb][tj + 1:] + [ta]
                    len_b = evaluator.length(new_b)
                    if len_b is None:
                        continue
                    s, a = sum_len, active
                    for i, new_len in ((sa, len_a), (sb, len_b)):
                        if lengths[i]:
                            s -= lengths[i]
                            a -= 1
                        if new_len:
                            s += new_len
                            a += 1
                    total = _makespan(s, a, reconfig)
                    if total < best_total:
                        members[sa], members[sb] = new_a, new_b
                        lengths[sa], lengths[sb] = len_a, len_b
                        sum_len, active, best_total = s, a, total
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            exit_reason = "converged"
            break
    if stats is not None:
        stats["rounds"] += rounds
        stats["moves"] += moves
        stats["moves_pruned"] += pruned
        stats["exits"][exit_reason] += 1
    return members, best_total


def schedule_sessions(
    soc: Soc,
    tasks: list[TestTask],
    n_sessions: int | None = None,
    policy: SharingPolicy = SharingPolicy(),
    reconfig: int = SESSION_RECONFIG_CYCLES,
    max_sessions: int = 8,
) -> ScheduleResult:
    """Session-based schedule for ``tasks`` on ``soc``.

    When ``n_sessions`` is None, a window of ``max_sessions`` candidate
    session counts is searched, starting at the mutex-forced floor
    (functional tests serialize on the chip's functional interface,
    BIST groups on the engine, a core's tests on the core) and capped
    at the task count — ``floor .. min(#tasks, floor + max_sessions - 1)``.
    For small chips (floor 1) this is the classic ``1 .. max_sessions``
    search; large chips with many functional tests start higher and
    stay schedulable.  ``max_sessions`` sizes the search window — it is
    not a hard cap on the returned session count; pass ``n_sessions``
    to pin the count exactly.  The best feasible result is returned.

    Candidate counts are pruned against the session lower bound: once
    the incumbent makespan reaches
    :func:`~repro.sched.bounds.session_schedule_floor`, no remaining
    candidate can strictly improve it (ties keep the earlier candidate,
    exactly as the unpruned loop would), so the loop stops.  The result
    is bit-identical to :func:`~repro.sched.session_ref.
    schedule_sessions_reference`.
    """
    if not tasks:
        return ScheduleResult(soc_name=soc.name, strategy="session-based",
                              pin_budget=soc.test_pins)
    if n_sessions is not None:
        candidates = [n_sessions]
    else:
        per_core: dict[str, int] = {}
        for t in tasks:
            per_core[t.core_name] = per_core.get(t.core_name, 0) + 1
        forced = max(
            1,
            sum(1 for t in tasks if t.uses_functional_pins),
            sum(1 for t in tasks if t.uses_bist_port),
            max(per_core.values()),
        )
        # a window of max_sessions candidate counts starting at the floor
        # (degenerates to the classic 1..max_sessions for small chips)
        candidates = list(range(forced, min(len(tasks), forced + max_sessions - 1) + 1))
    evaluator = _SessionEvaluator(soc, policy)
    floor = session_schedule_floor(soc, tasks, reconfig)
    stats = {"rounds": 0, "moves": 0, "moves_pruned": 0,
             "exits": {"floor": 0, "converged": 0, "max_rounds": 0}}
    candidates_pruned = 0
    best_members: Optional[list[list[TestTask]]] = None
    best_total: Optional[int] = None
    sp = span("sched.session_search", soc=soc.name, tasks=len(tasks))
    try:
        with sp:
            for ci, k in enumerate(candidates):
                if best_total is not None and best_total <= floor:
                    # bound pruning: every remaining k yields >= floor >= incumbent
                    candidates_pruned = len(candidates) - ci
                    break
                seeded = _greedy_seed(tasks, k, evaluator, reconfig)
                if seeded is None:
                    continue
                members, lengths = seeded
                members, total = _local_search(
                    members, lengths, evaluator, reconfig, floor, stats=stats
                )
                if best_total is None or total < best_total:
                    best_members, best_total = members, total
            if sp.id is not None:
                sp.set(
                    floor=floor, makespan=best_total,
                    rounds=stats["rounds"], moves=stats["moves"],
                    moves_pruned=stats["moves_pruned"],
                    candidates_pruned=candidates_pruned,
                    memo_hits=evaluator.hits, memo_misses=evaluator.misses,
                )
    finally:
        # one flush per scheduling run — the search itself only ever
        # bumps plain local ints (see _local_search)
        _M_RUNS.inc()
        _M_ROUNDS.inc(stats["rounds"])
        _M_MOVES.inc(stats["moves"])
        _M_MOVES_PRUNED.inc(stats["moves_pruned"])
        _M_CANDIDATES_PRUNED.inc(candidates_pruned)
        for reason, count in stats["exits"].items():
            if count:
                _M_FLOOR_EXITS.inc(count, reason=reason)
        _M_MEMO_HITS.inc(evaluator.hits)
        _M_MEMO_MISSES.inc(evaluator.misses)
    if best_members is None:
        raise InfeasibleScheduleError(
            f"no feasible session schedule for {soc.name!r} with "
            f"{soc.test_pins} pins (tried {candidates} sessions)"
        )
    best_sessions = []
    for i, membership in enumerate(best_members):
        session = build_session(i, membership, soc, policy)
        if session is None:  # pragma: no cover — search only keeps feasible sets
            raise InfeasibleScheduleError(
                f"internal error: winning membership infeasible for {soc.name!r}"
            )
        best_sessions.append(session)
    used, total = _finalize_sessions(best_sessions, reconfig)
    return ScheduleResult(
        soc_name=soc.name,
        strategy="session-based",
        sessions=used,
        total_time=total,
        pin_budget=soc.test_pins,
        notes=f"{len(used)} sessions, reconfig {reconfig} cycles each",
    )


def schedule_serial(
    soc: Soc,
    tasks: list[TestTask],
    policy: SharingPolicy = SharingPolicy(),
    reconfig: int = SESSION_RECONFIG_CYCLES,
) -> ScheduleResult:
    """Fully serial baseline: one task per session, each at max width."""
    memberships = [[t] for t in sorted(tasks, key=lambda t: -t.min_time)]
    sessions = []
    for i, membership in enumerate(memberships):
        session = build_session(i, membership, soc, policy)
        if session is None:
            raise InfeasibleScheduleError(
                f"serial schedule infeasible for {soc.name!r}: some single test "
                f"does not fit in {soc.test_pins} pins"
            )
        sessions.append(session)
    used, total = _finalize_sessions(sessions, reconfig)
    return ScheduleResult(
        soc_name=soc.name,
        strategy="serial",
        sessions=used,
        total_time=total,
        pin_budget=soc.test_pins,
        notes=f"{len(used)} single-test sessions",
    )
