"""Test-IO allocation and sharing.

Section 3 of the paper: "The total test IOs of the three large cores are
19, including 6 clock signals, 4 reset signals, 7 test enable signals,
and 2 SE signals.  With shared test IOs, the test control IO counts are
reduced."

The sharing rules implemented here (each is a policy knob):

* **clocks** — one chip pin per distinct clock *domain* among the cores
  concurrently under test (domains cannot share a pin; identical domains
  listed by several tasks do).
* **resets** — all resets under test assert together, so one shared pin.
* **scan enables** — the controller aligns all shift phases in a session,
  so one shared SE pin.
* **test enables / dedicated test signals** — static per session, so the
  generated Test Controller drives them on-chip: zero pins (at the cost
  of controller gates, which E4 accounts for).
* **BIST port** — all memories share the single BIST access port
  (Fig. 2); it costs :data:`BIST_PORT_PINS` whenever a BIST task runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.sched.result import TestTask

#: Chip pins of the shared memory-BIST access port (start, done/result,
#: serial command in, serial response out) — the MBS/MBR/MSI/MSO subset
#: of Fig. 2 that must reach the tester; the rest is on-chip.
BIST_PORT_PINS = 4


@dataclass(frozen=True)
class SharingPolicy:
    """Which control-IO classes may share chip pins."""

    share_resets: bool = True
    share_scan_enables: bool = True
    te_from_controller: bool = True

    @classmethod
    def none(cls) -> "SharingPolicy":
        """No sharing at all — every control signal gets its own pin
        (the paper's '19 IOs' baseline)."""
        return cls(share_resets=False, share_scan_enables=False, te_from_controller=False)


def control_pins(tasks: Iterable[TestTask], policy: SharingPolicy = SharingPolicy()) -> int:
    """Chip control pins needed while ``tasks`` run concurrently."""
    tasks = list(tasks)
    domains: set[str] = set()
    resets = 0
    scan_enables = 0
    test_enables = 0
    bist = False
    for task in tasks:
        domains.update(task.clock_domains)
        resets += task.control.resets
        scan_enables += task.control.scan_enables
        test_enables += task.control.test_enables
        bist = bist or task.uses_bist_port
    pins = len(domains)
    if policy.share_resets:
        pins += 1 if resets else 0
    else:
        pins += resets
    if policy.share_scan_enables:
        pins += 1 if scan_enables else 0
    else:
        pins += scan_enables
    if not policy.te_from_controller:
        pins += test_enables
    if bist:
        pins += BIST_PORT_PINS
    return pins


def data_pins_available(test_pins: int, tasks: Iterable[TestTask], policy: SharingPolicy = SharingPolicy()) -> int:
    """TAM data pins left after control allocation (>= 0)."""
    return max(0, test_pins - control_pins(tasks, policy))


def io_sharing_report(tasks: Iterable[TestTask], policy: SharingPolicy = SharingPolicy()):
    """Before/after table for the E3 experiment."""
    from repro.util import Table

    tasks = list(tasks)
    raw = sum(t.control.total for t in tasks)
    shared = control_pins(tasks, policy)
    table = Table(["Scheme", "Control pins"], title="Test control IO sharing")
    table.add_row(["dedicated (paper: 19 for USB+TV+JPEG)", raw])
    table.add_row(["shared via policy", shared])
    return table
