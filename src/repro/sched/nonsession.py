"""Non-session-based scheduling: preemption-free rectangle packing.

The comparison baseline of Section 3.  Tests start and finish
independently (no session barriers), which looks more parallel — but
because there is no reconfiguration point at which chip pins can be
re-multiplexed, **every** test's control IOs must be held on dedicated
pins for the whole test, leaving fewer pins for TAM data.  This is
exactly the paper's observation: "parallel testing may not be better
than serial testing ... more test control IOs are needed for parallel
testing, so fewer IO pins can be used as the test data IOs".

Algorithm: longest-first list scheduling over a pool of TAM wire pairs,
with per-core and functional-interface mutexes and a power timeline.
For each task every (candidate start, width) pair is evaluated and the
earliest-finish placement wins.
"""

from __future__ import annotations

from repro.sched.ioalloc import SharingPolicy, control_pins
from repro.sched.power import PowerTimeline
from repro.sched.result import ScheduledTest, ScheduleResult, Session, TestTask
from repro.sched.session import InfeasibleScheduleError
from repro.soc.soc import Soc


def schedule_nonsession(
    soc: Soc,
    tasks: list[TestTask],
    policy: SharingPolicy | None = None,
) -> ScheduleResult:
    """Non-session schedule: all control pins reserved for the full test.

    Without session boundaries there is no point at which the controller
    can re-multiplex pins or re-align reset/SE waveforms, so the default
    policy is :meth:`SharingPolicy.none` — every control signal of every
    test holds a dedicated pin for the whole test (the paper's premise).
    """
    if policy is None:
        policy = SharingPolicy.none()
    if not tasks:
        return ScheduleResult(soc_name=soc.name, strategy="non-session",
                              pin_budget=soc.test_pins)
    ctrl = control_pins(tasks, policy)
    data = soc.test_pins - ctrl
    pairs = data // 2
    if any(t.is_scan for t in tasks) and pairs < 1:
        raise InfeasibleScheduleError(
            f"non-session schedule infeasible: control IOs need {ctrl} of "
            f"{soc.test_pins} pins, leaving no TAM wire pair"
        )

    placed: list[ScheduledTest] = []
    wire_free = [0] * max(pairs, 1)  # per wire-pair availability time
    tag_busy: dict[str, list[tuple[int, int]]] = {}
    power = PowerTimeline(budget=soc.power_budget)

    def tags_of(task: TestTask) -> list[str]:
        tags = [f"core:{task.core_name}"]
        if task.uses_functional_pins:
            tags.append("functional-pins")
        if task.uses_bist_port:
            tags.append("bist-port")
        return tags

    def tag_conflict(task: TestTask, start: int, finish: int) -> bool:
        for tag in tags_of(task):
            for s, f in tag_busy.get(tag, []):
                if start < f and s < finish:
                    return True
        return False

    def candidate_starts() -> list[int]:
        points = {0}
        points.update(wire_free)
        for intervals in tag_busy.values():
            points.update(f for _, f in intervals)
        for _s, f, _ in power.intervals:
            points.add(f)
        return sorted(points)

    for task in sorted(tasks, key=lambda t: -t.min_time):
        best = None  # (finish, start, width, wires)
        for start in candidate_starts():
            if best is not None and start >= best[0]:
                # durations are non-negative, so a start at or past the
                # best finish so far cannot finish strictly earlier
                break
            width_options = (
                range(1, min(task.max_width, pairs) + 1) if task.is_scan else [0]
            )
            for width in width_options:
                duration = task.time(width) if task.is_scan else task.fixed_time
                finish = start + duration
                if task.is_scan:
                    free = [i for i in range(pairs) if wire_free[i] <= start]
                    if len(free) < width:
                        continue
                    wires = free[:width]
                else:
                    wires = []
                if tag_conflict(task, start, finish):
                    continue
                if not power.fits(start, finish, task.power):
                    continue
                # earliest finish wins; ties go to the earlier start (and,
                # within one start, to the narrower width found first)
                if best is None or (finish, start) < (best[0], best[1]):
                    best = (finish, start, width, wires)
        if best is None:
            raise InfeasibleScheduleError(f"could not place task {task.name!r}")
        finish, start, width, wires = best
        placed.append(ScheduledTest(task=task, width=max(width, 1), start=start))
        for i in wires:
            wire_free[i] = finish
        for tag in tags_of(task):
            tag_busy.setdefault(tag, []).append((start, finish))
        power.add(start, finish, task.power)

    makespan = max(t.finish for t in placed)
    session = Session(index=0, tests=placed, control_pins=ctrl, data_pins=data)
    return ScheduleResult(
        soc_name=soc.name,
        strategy="non-session",
        sessions=[session],
        total_time=makespan,
        pin_budget=soc.test_pins,
        notes=f"{ctrl} control pins reserved throughout; {pairs} TAM wire pairs",
    )
