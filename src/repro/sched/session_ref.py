"""Reference session scheduler: the pre-incremental search, retained.

This module preserves the original full-rematerialization search that
:mod:`repro.sched.session` replaced with incremental delta evaluation:
every candidate move rebuilds *all* ``k`` sessions via
:func:`~repro.sched.session.build_session` and re-sums the makespan from
scratch.  It is deliberately simple — the semantics are easy to audit —
and deliberately slow, which makes it the perfect oracle:

* the differential tests (``tests/test_sched_incremental.py``) assert
  the incremental engine returns **bit-identical** schedules (same JSON
  document) on generated corpora and on the d695 golden fixture, and
* ``benchmarks/bench_sched_search.py`` races the two to measure (and
  gate, via ``BENCH_sched.json``) the incremental engine's speedup.

Both engines share the leaf computations (:func:`build_session`,
``_total_time``, ``_finalize_sessions``) — what differs is the *search*:
how candidate memberships are evaluated and how the running makespan is
maintained.  Do not "optimize" this module; its value is being the
unoptimized baseline.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.sched.ioalloc import SharingPolicy
from repro.sched.result import ScheduleResult, Session, TestTask
from repro.sched.session import (
    InfeasibleScheduleError,
    _finalize_sessions,
    _total_time,
    build_session,
)
from repro.sched.timecalc import SESSION_RECONFIG_CYCLES
from repro.soc.soc import Soc


def _materialize(
    memberships: list[list[TestTask]], soc: Soc, policy: SharingPolicy
) -> Optional[list[Session]]:
    sessions = []
    for i, members in enumerate(memberships):
        session = build_session(i, members, soc, policy)
        if session is None:
            return None
        sessions.append(session)
    return sessions


def _greedy_seed(
    tasks: list[TestTask], k: int, soc: Soc, policy: SharingPolicy, reconfig: int
) -> Optional[list[list[TestTask]]]:
    memberships: list[list[TestTask]] = [[] for _ in range(k)]
    for task in sorted(tasks, key=lambda t: -t.min_time):
        best_idx, best_total = None, None
        for i in range(k):
            trial = [list(m) for m in memberships]
            trial[i].append(task)
            sessions = _materialize(trial, soc, policy)
            if sessions is None:
                continue
            total = _total_time(sessions, reconfig)
            if best_total is None or total < best_total:
                best_idx, best_total = i, total
        if best_idx is None:
            return None
        memberships[best_idx].append(task)
    return memberships


def _local_search(
    memberships: list[list[TestTask]],
    soc: Soc,
    policy: SharingPolicy,
    reconfig: int,
    max_rounds: int = 60,
) -> list[list[TestTask]]:
    best = [list(m) for m in memberships]
    sessions = _materialize(best, soc, policy)
    best_total = _total_time(sessions, reconfig)
    for _ in range(max_rounds):
        improved = False
        # single-task moves
        for src, dst in itertools.permutations(range(len(best)), 2):
            for task in list(best[src]):
                trial = [list(m) for m in best]
                trial[src].remove(task)
                trial[dst].append(task)
                sessions = _materialize(trial, soc, policy)
                if sessions is None:
                    continue
                total = _total_time(sessions, reconfig)
                if total < best_total:
                    best, best_total, improved = trial, total, True
                    break
            if improved:
                break
        if improved:
            continue
        # pairwise swaps
        for a, b in itertools.combinations(range(len(best)), 2):
            for ta in list(best[a]):
                for tb in list(best[b]):
                    trial = [list(m) for m in best]
                    trial[a].remove(ta)
                    trial[b].remove(tb)
                    trial[a].append(tb)
                    trial[b].append(ta)
                    sessions = _materialize(trial, soc, policy)
                    if sessions is None:
                        continue
                    total = _total_time(sessions, reconfig)
                    if total < best_total:
                        best, best_total, improved = trial, total, True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break
    return best


def schedule_sessions_reference(
    soc: Soc,
    tasks: list[TestTask],
    n_sessions: int | None = None,
    policy: SharingPolicy = SharingPolicy(),
    reconfig: int = SESSION_RECONFIG_CYCLES,
    max_sessions: int = 8,
) -> ScheduleResult:
    """The original (full-rematerialization) session search.

    Same contract as :func:`repro.sched.session.schedule_sessions`; the
    incremental engine must match this function's output bit for bit.
    """
    if not tasks:
        return ScheduleResult(soc_name=soc.name, strategy="session-based",
                              pin_budget=soc.test_pins)
    if n_sessions is not None:
        candidates = [n_sessions]
    else:
        per_core: dict[str, int] = {}
        for t in tasks:
            per_core[t.core_name] = per_core.get(t.core_name, 0) + 1
        forced = max(
            1,
            sum(1 for t in tasks if t.uses_functional_pins),
            sum(1 for t in tasks if t.uses_bist_port),
            max(per_core.values()),
        )
        candidates = list(range(forced, min(len(tasks), forced + max_sessions - 1) + 1))
    best_sessions: Optional[list[Session]] = None
    best_total: Optional[int] = None
    for k in candidates:
        seed = _greedy_seed(tasks, k, soc, policy, reconfig)
        if seed is None:
            continue
        improved = _local_search(seed, soc, policy, reconfig)
        sessions = _materialize(improved, soc, policy)
        total = _total_time(sessions, reconfig)
        if best_total is None or total < best_total:
            best_sessions, best_total = sessions, total
    if best_sessions is None:
        raise InfeasibleScheduleError(
            f"no feasible session schedule for {soc.name!r} with "
            f"{soc.test_pins} pins (tried {candidates} sessions)"
        )
    used, total = _finalize_sessions(best_sessions, reconfig)
    return ScheduleResult(
        soc_name=soc.name,
        strategy="session-based",
        sessions=used,
        total_time=total,
        pin_budget=soc.test_pins,
        notes=f"{len(used)} sessions, reconfig {reconfig} cycles each",
    )
