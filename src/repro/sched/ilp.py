"""Exact session scheduling as a mixed-integer linear program.

Gives a provable optimum for small instances (DSC core tests, ITC'02
d695) to validate the heuristic scheduler, using
:func:`scipy.optimize.milp` (HiGHS).

Formulation — for tasks *t*, sessions *s*, candidate widths *w*:

* ``x[t,s,w] ∈ {0,1}`` — task *t* runs in session *s* at width *w*;
* ``y[d,s] ∈ {0,1}`` — clock domain *d* has a pin in session *s*;
* ``r[s], e[s], b[s] ∈ {0,1}`` — session *s* needs the shared reset pin,
  shared SE pin, or the BIST port;
* ``z[s] ∈ {0,1}`` — session *s* is used;
* ``L[s] ≥ 0`` — session length.

Constraints: each task placed once; ``L[s] ≥ time(t,w)·x``; pin budget
``Σ 2w·x + Σ_d y + r + e + 4b ≤ P`` per session; power; per-core and
functional-interface mutexes; symmetry breaking on ``z``.  Objective:
``Σ L[s] + reconfig·(Σ z[s] − 1)``.

The shared-pin model matches :class:`repro.sched.ioalloc.SharingPolicy`'s
default (session-based sharing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.sched.ioalloc import BIST_PORT_PINS
from repro.sched.result import ScheduledTest, ScheduleResult, Session, TestTask
from repro.sched.session import InfeasibleScheduleError, build_session
from repro.sched.timecalc import SESSION_RECONFIG_CYCLES
from repro.soc.soc import Soc


def candidate_widths(task: TestTask, max_pairs: int) -> list[int]:
    """Widths worth offering the ILP.

    Scan time is non-increasing in width, so only the *smallest* width
    achieving each distinct time value needs to be offered — the pruned
    menu preserves optimality while shrinking the model.
    """
    if not task.is_scan:
        return [0]
    cap = min(task.max_width, max_pairs)
    pruned: list[int] = []
    best = None
    for w in range(1, cap + 1):
        t = task.time(w)
        if best is None or t < best:
            pruned.append(w)
            best = t
    return pruned


@dataclass
class _Var:
    """Bookkeeping for one column of the MILP."""

    kind: str
    key: tuple


def schedule_ilp(
    soc: Soc,
    tasks: list[TestTask],
    n_sessions: int,
    reconfig: int = SESSION_RECONFIG_CYCLES,
    time_limit: float = 60.0,
) -> ScheduleResult:
    """Optimal session-based schedule with at most ``n_sessions`` sessions.

    Zero-duration tasks (zero-pattern tests) are excluded from the MILP
    and re-attached as one trailing zero-length no-op session — the same
    treatment the session heuristic applies — because a zero-length test
    conflicts with nothing and costs nothing, so it cannot affect the
    optimum (modelling it would wrongly charge ``reconfig`` per used
    session and break the ``ilp <= heuristic`` invariant).
    """
    if not tasks:
        return ScheduleResult(soc_name=soc.name, strategy="ilp", pin_budget=soc.test_pins)
    zero_tasks = [t for t in tasks if t.serial_time == 0]
    tasks = [t for t in tasks if t.serial_time > 0]
    if not tasks:
        noop = Session(
            index=0, tests=[ScheduledTest(task=t, width=1, start=0) for t in zero_tasks]
        )
        return ScheduleResult(
            soc_name=soc.name, strategy="ilp", sessions=[noop], total_time=0,
            pin_budget=soc.test_pins, notes="all tasks zero-length",
        )
    pins = soc.test_pins
    max_pairs = pins // 2
    domains = sorted({d for t in tasks for d in t.clock_domains})
    sessions = range(n_sessions)

    variables: list[_Var] = []
    index: dict[tuple, int] = {}

    def add_var(kind: str, key: tuple) -> int:
        idx = len(variables)
        variables.append(_Var(kind, key))
        index[(kind,) + key] = idx
        return idx

    widths_of = {t.name: candidate_widths(t, max_pairs) for t in tasks}
    for t in tasks:
        for s in sessions:
            for w in widths_of[t.name]:
                add_var("x", (t.name, s, w))
    for d in domains:
        for s in sessions:
            add_var("y", (d, s))
    for s in sessions:
        add_var("r", (s,))
        add_var("e", (s,))
        add_var("b", (s,))
        add_var("z", (s,))
    for s in sessions:
        add_var("L", (s,))

    n = len(variables)
    task_by_name = {t.name: t for t in tasks}

    def x_idx(tname: str, s: int, w: int) -> int:
        return index[("x", tname, s, w)]

    constraints: list[LinearConstraint] = []

    def add_constraint(coeffs: dict[int, float], lb: float, ub: float) -> None:
        row = np.zeros(n)
        for i, c in coeffs.items():
            row[i] = c
        constraints.append(LinearConstraint(row, lb, ub))

    # 1. each task exactly once
    for t in tasks:
        coeffs = {x_idx(t.name, s, w): 1.0 for s in sessions for w in widths_of[t.name]}
        add_constraint(coeffs, 1.0, 1.0)

    big_m = max(t.serial_time for t in tasks)
    for t in tasks:
        for s in sessions:
            for w in widths_of[t.name]:
                # 2. L[s] >= time(t,w) * x
                add_constraint(
                    {index[("L", s)]: 1.0, x_idx(t.name, s, w): -float(t.time(max(w, 1)))},
                    0.0,
                    np.inf,
                )
                # 3. indicator links
                if t.clock_domains:
                    for d in t.clock_domains:
                        add_constraint(
                            {index[("y", d, s)]: 1.0, x_idx(t.name, s, w): -1.0}, 0.0, np.inf
                        )
                if t.control.resets:
                    add_constraint(
                        {index[("r", s)]: 1.0, x_idx(t.name, s, w): -1.0}, 0.0, np.inf
                    )
                if t.control.scan_enables:
                    add_constraint(
                        {index[("e", s)]: 1.0, x_idx(t.name, s, w): -1.0}, 0.0, np.inf
                    )
                if t.uses_bist_port:
                    add_constraint(
                        {index[("b", s)]: 1.0, x_idx(t.name, s, w): -1.0}, 0.0, np.inf
                    )
                add_constraint(
                    {index[("z", s)]: 1.0, x_idx(t.name, s, w): -1.0}, 0.0, np.inf
                )

    # 4. pin budget per session
    for s in sessions:
        coeffs: dict[int, float] = {}
        for t in tasks:
            for w in widths_of[t.name]:
                if w > 0:
                    coeffs[x_idx(t.name, s, w)] = 2.0 * w
        for d in domains:
            coeffs[index[("y", d, s)]] = 1.0
        coeffs[index[("r", s)]] = 1.0
        coeffs[index[("e", s)]] = 1.0
        coeffs[index[("b", s)]] = float(BIST_PORT_PINS)
        add_constraint(coeffs, -np.inf, float(pins))

    # 5. power budget per session
    if soc.power_budget > 0:
        for s in sessions:
            coeffs = {}
            for t in tasks:
                for w in widths_of[t.name]:
                    coeffs[x_idx(t.name, s, w)] = t.power
            add_constraint(coeffs, -np.inf, soc.power_budget)

    # 6. per-core mutex and functional-interface mutex
    cores = sorted({t.core_name for t in tasks})
    for s in sessions:
        for core in cores:
            members = [t for t in tasks if t.core_name == core]
            if len(members) > 1:
                coeffs = {
                    x_idx(t.name, s, w): 1.0 for t in members for w in widths_of[t.name]
                }
                add_constraint(coeffs, -np.inf, 1.0)
        funcs = [t for t in tasks if t.uses_functional_pins]
        if len(funcs) > 1:
            coeffs = {x_idx(t.name, s, w): 1.0 for t in funcs for w in widths_of[t.name]}
            add_constraint(coeffs, -np.inf, 1.0)

    # 7. symmetry breaking: z[s] >= z[s+1]
    for s in range(n_sessions - 1):
        add_constraint({index[("z", s)]: 1.0, index[("z", s + 1)]: -1.0}, 0.0, np.inf)

    # objective: sum L + reconfig * (sum z - 1)
    objective = np.zeros(n)
    for s in sessions:
        objective[index[("L", s)]] = 1.0
        objective[index[("z", s)]] = float(reconfig)

    integrality = np.ones(n)
    lower = np.zeros(n)
    upper = np.ones(n)
    for s in sessions:
        i = index[("L", s)]
        integrality[i] = 0
        upper[i] = float(big_m)

    result = milp(
        c=objective,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lower, upper),
        options={"time_limit": time_limit},
    )
    if result.x is None:
        raise InfeasibleScheduleError(f"ILP infeasible for {soc.name!r}: {result.message}")

    # decode the solution into sessions
    memberships: dict[int, list[tuple[TestTask, int]]] = {s: [] for s in sessions}
    for var, value in zip(variables, result.x):
        if var.kind == "x" and value > 0.5:
            tname, s, w = var.key
            memberships[s].append((task_by_name[tname], w))
    out_sessions: list[Session] = []
    offset = 0
    for s in sessions:
        if not memberships[s]:
            continue
        members = [t for t, _ in memberships[s]]
        session = build_session(len(out_sessions), members, soc)
        if session is None:
            # honor the ILP's width choices directly (build_session may
            # reject only due to heuristic width assignment differences)
            session = Session(
                index=len(out_sessions),
                tests=[ScheduledTest(task=t, width=max(w, 1)) for t, w in memberships[s]],
            )
        for test in session.tests:
            test.start = offset
        offset += session.length + reconfig
        out_sessions.append(session)
    total = sum(s.length for s in out_sessions) + reconfig * max(0, len(out_sessions) - 1)
    if zero_tasks:
        out_sessions.append(Session(
            index=len(out_sessions),
            tests=[ScheduledTest(task=t, width=1, start=total) for t in zero_tasks],
        ))
    return ScheduleResult(
        soc_name=soc.name,
        strategy="ilp",
        sessions=out_sessions,
        total_time=total,
        pin_budget=pins,
        notes=f"MILP optimum (HiGHS), objective {result.fun - reconfig:.0f}",
    )
