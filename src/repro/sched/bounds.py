"""Computable lower bounds on total test time.

Every scheduling strategy — heuristic, exact, or plugged in through the
registry — must respect these bounds; the invariant checker
(:mod:`repro.verify`) rejects any ``ScheduleResult`` whose total time
undercuts them, which is the differential harness's strongest oracle:
a "schedule" faster than the information-theoretic floor is a lying
schedule.

Five independent floors, combined with ``max``:

* **bottleneck** — the slowest single task at its best feasible width;
* **per-core serialization** — a core's tests never overlap, so each
  core's floor times sum;
* **functional-interface serialization** — the chip functional pin
  interface serves one functional test at a time;
* **BIST-engine serialization** — BIST groups share the one engine/port;
* **TAM wire capacity** — a width-``w`` scan connection occupies ``w``
  wire pairs for ``time(w)`` cycles, so makespan × available pairs must
  cover every task's cheapest wire-cycle product.

All bounds ignore control-pin pressure and inter-session
reconfiguration, so they are valid for *any* sharing policy and for
non-session (rectangle-packing) schedules alike.
"""

from __future__ import annotations

from repro.sched.result import TestTask
from repro.sched.timecalc import SESSION_RECONFIG_CYCLES
from repro.soc.soc import Soc


def task_width_cap(task: TestTask, test_pins: int) -> int:
    """The largest TAM width any schedule could grant ``task``."""
    if not task.is_scan:
        return 0
    return max(1, min(task.max_width, test_pins // 2))


def task_floor_time(task: TestTask, test_pins: int) -> int:
    """The fastest ``task`` can possibly run under ``test_pins``."""
    if task.is_scan:
        return task.time(task_width_cap(task, test_pins))
    return task.fixed_time


def task_wire_cycles_floor(task: TestTask, test_pins: int) -> int:
    """min over feasible widths of ``w * time(w)`` — the cheapest
    wire-pair x cycles budget the task can be run in (0 for non-scan)."""
    if not task.is_scan:
        return 0
    cap = task_width_cap(task, test_pins)
    return min(w * task.time(w) for w in range(1, cap + 1))


def forced_session_floor(tasks: list[TestTask]) -> int:
    """Minimum number of *non-trivial* (nonzero-length) sessions any
    session schedule of ``tasks`` must use.

    Tasks that are pairwise mutually exclusive — two tests of the same
    core, two functional tests (one functional interface), two BIST
    groups (one engine/port) — land in distinct sessions, and a task
    whose duration is nonzero at every width makes its session
    non-trivial.  Zero-pattern tasks are excluded: they can ride in any
    session (or the merged trailing no-op session) without adding one.
    """
    if not tasks:
        return 0
    per_core: dict[str, int] = {}
    functional = bist = 0
    for task in tasks:
        if task.min_time <= 0:
            continue
        per_core[task.core_name] = per_core.get(task.core_name, 0) + 1
        if task.uses_functional_pins:
            functional += 1
        if task.uses_bist_port:
            bist += 1
    return max(1, functional, bist, max(per_core.values(), default=1))


def session_schedule_floor(
    soc: Soc, tasks: list[TestTask], reconfig: int = SESSION_RECONFIG_CYCLES
) -> int:
    """A lower bound on the total time of any *session* schedule,
    including inter-session reconfiguration.

    A session schedule runs its sessions back to back, so its makespan
    is the sum of session lengths — itself bounded below by
    :func:`schedule_lower_bound` — plus ``reconfig`` cycles between
    consecutive non-trivial sessions, of which there are at least
    :func:`forced_session_floor`.  The incremental session search uses
    this floor to prune: once the incumbent reaches it, no candidate
    session count (and no further local-search round) can strictly
    improve, so the search can stop without changing its answer.
    """
    if not tasks:
        return 0
    forced = forced_session_floor(tasks)
    return schedule_lower_bound(soc, tasks) + reconfig * max(0, forced - 1)


def schedule_lower_bound(soc: Soc, tasks: list[TestTask]) -> int:
    """A lower bound on the total test time of ANY schedule of ``tasks``
    on ``soc`` (see the module docstring for the five floors)."""
    if not tasks:
        return 0
    pins = soc.test_pins
    floors = [task_floor_time(t, pins) for t in tasks]
    bottleneck = max(floors)
    per_core: dict[str, int] = {}
    for task, floor in zip(tasks, floors):
        per_core[task.core_name] = per_core.get(task.core_name, 0) + floor
    core_serial = max(per_core.values())
    functional = sum(
        f for t, f in zip(tasks, floors) if t.uses_functional_pins
    )
    bist = sum(f for t, f in zip(tasks, floors) if t.uses_bist_port)
    bound = max(bottleneck, core_serial, functional, bist)
    pairs = pins // 2
    if pairs > 0:
        total_wire_cycles = sum(task_wire_cycles_floor(t, pins) for t in tasks)
        bound = max(bound, -(-total_wire_cycles // pairs))  # ceil div
    return bound
