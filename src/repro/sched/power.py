"""Power accounting for test schedules.

Concurrent tests dissipate more than mission mode (every scan flop
toggles), so schedulers must respect a chip-level power ceiling.  The
paper's scheduler "assigns the TAM wires to each core to meet the power
and IO resource constraints"; this module provides the two checks the
schedulers use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sched.result import TestTask


def session_power(tasks: list[TestTask]) -> float:
    """Power drawn by a session (all members run concurrently)."""
    return sum(t.power for t in tasks)


def fits_power_budget(tasks: list[TestTask], budget: float) -> bool:
    """True if the concurrent set respects ``budget`` (0 = unconstrained)."""
    return budget <= 0 or session_power(tasks) <= budget


@dataclass
class PowerTimeline:
    """Piecewise-constant power usage over time, for the non-session
    (rectangle packing) scheduler.

    Intervals are half-open ``[start, finish)``.
    """

    budget: float = 0.0
    _intervals: list[tuple[int, int, float]] = field(default_factory=list)

    @property
    def intervals(self) -> list[tuple[int, int, float]]:
        """Recorded (start, finish, power) intervals."""
        return list(self._intervals)

    def add(self, start: int, finish: int, power: float) -> None:
        """Record a placed task's draw."""
        if power > 0 and finish > start:
            self._intervals.append((start, finish, power))

    def usage_at(self, t: int) -> float:
        """Total draw at time ``t``."""
        return sum(p for s, f, p in self._intervals if s <= t < f)

    def peak(self, start: int, finish: int) -> float:
        """Maximum draw over ``[start, finish)``."""
        points = {start}
        for s, __, __ in self._intervals:
            if start < s < finish:
                points.add(s)
        return max((self.usage_at(t) for t in points), default=0.0)

    def fits(self, start: int, finish: int, power: float) -> bool:
        """Can a task drawing ``power`` run in ``[start, finish)``?"""
        if self.budget <= 0:
            return True
        return self.peak(start, finish) + power <= self.budget + 1e-9
