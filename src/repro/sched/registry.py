"""Scheduler plugin registry: strategies resolve by name.

The Core Test Scheduler ships four strategies — ``session`` (the paper's
contribution), ``nonsession`` and ``serial`` (the Section-3 baselines),
and ``ilp`` (the exact MILP used to validate the heuristic).  Each is
registered here under its name so callers (``SteacConfig.strategy``, the
CLI ``--strategy`` flag, ``compare_strategies``) pick schedulers by name
instead of hardcoding a dispatch chain, and so downstream code can plug
in new strategies without touching the platform:

    >>> from repro.sched.registry import register_scheduler
    >>> @register_scheduler("greedy2")
    ... def schedule_greedy2(soc, tasks, *, n_sessions=None, policy=None):
    ...     ...

Every scheduler shares one calling convention::

    fn(soc, tasks, *, n_sessions=None, policy=None) -> ScheduleResult

``n_sessions``/``policy`` are honoured where the strategy supports them
and ignored otherwise (the MILP's shared-pin model is fixed to the
default session-sharing policy, for instance).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.sched.ioalloc import SharingPolicy
from repro.sched.result import ScheduleResult, TestTask
from repro.soc.soc import Soc


class SchedulerFn(Protocol):
    """The uniform scheduler entry point."""

    def __call__(
        self,
        soc: Soc,
        tasks: list[TestTask],
        *,
        n_sessions: Optional[int] = None,
        policy: Optional[SharingPolicy] = None,
    ) -> ScheduleResult: ...


_REGISTRY: dict[str, SchedulerFn] = {}

#: Default cap on MILP session count — matches the heuristic's
#: ``max_sessions`` search bound in :func:`repro.sched.session.schedule_sessions`.
ILP_DEFAULT_MAX_SESSIONS = 8


def register_scheduler(name: str) -> Callable[[SchedulerFn], SchedulerFn]:
    """Decorator: register ``fn`` as the scheduling strategy ``name``.

    Re-registering a name replaces the previous entry (last one wins),
    so tests and plugins can shadow a built-in.
    """

    def decorator(fn: SchedulerFn) -> SchedulerFn:
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_scheduler(name: str) -> SchedulerFn:
    """Look up a strategy by name.

    Raises:
        ValueError: unknown name (message lists what is available).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduling strategy {name!r}; "
            f"available: {', '.join(available_strategies())}"
        ) from None


def available_strategies() -> list[str]:
    """Registered strategy names, sorted."""
    return sorted(_REGISTRY)


def resolve_schedule(
    name: str,
    soc: Soc,
    tasks: list[TestTask],
    *,
    n_sessions: Optional[int] = None,
    policy: Optional[SharingPolicy] = None,
) -> ScheduleResult:
    """Run the named strategy — the one-call front end to the registry."""
    return get_scheduler(name)(soc, tasks, n_sessions=n_sessions, policy=policy)


# -- built-in strategies ---------------------------------------------------


@register_scheduler("session")
def _session(
    soc: Soc,
    tasks: list[TestTask],
    *,
    n_sessions: Optional[int] = None,
    policy: Optional[SharingPolicy] = None,
) -> ScheduleResult:
    from repro.sched.session import schedule_sessions

    return schedule_sessions(
        soc, tasks, n_sessions=n_sessions, policy=policy or SharingPolicy()
    )


@register_scheduler("nonsession")
def _nonsession(
    soc: Soc,
    tasks: list[TestTask],
    *,
    n_sessions: Optional[int] = None,
    policy: Optional[SharingPolicy] = None,
) -> ScheduleResult:
    from repro.sched.nonsession import schedule_nonsession

    # The session-sharing ``policy`` is deliberately NOT forwarded: the
    # non-session premise is dedicated control pins for the whole test
    # (``SharingPolicy.none()``, the scheduler's own default).
    return schedule_nonsession(soc, tasks)


@register_scheduler("serial")
def _serial(
    soc: Soc,
    tasks: list[TestTask],
    *,
    n_sessions: Optional[int] = None,
    policy: Optional[SharingPolicy] = None,
) -> ScheduleResult:
    from repro.sched.session import schedule_serial

    return schedule_serial(soc, tasks, policy=policy or SharingPolicy())


@register_scheduler("ilp")
def _ilp(
    soc: Soc,
    tasks: list[TestTask],
    *,
    n_sessions: Optional[int] = None,
    policy: Optional[SharingPolicy] = None,
) -> ScheduleResult:
    from repro.sched.ilp import schedule_ilp

    cap = n_sessions or min(len(tasks), ILP_DEFAULT_MAX_SESSIONS) or 1
    return schedule_ilp(soc, tasks, n_sessions=cap)
