"""The Core Test Scheduler: session-based scheduling under test-IO and
power constraints, the non-session baseline, an exact MILP, and the
supporting test-time / IO-sharing / rebalancing models.

All strategies resolve by name through :mod:`repro.sched.registry`
(``session`` / ``nonsession`` / ``serial`` / ``ilp``); use
:func:`register_scheduler` to plug in new ones."""

from repro.sched.bounds import (
    forced_session_floor,
    schedule_lower_bound,
    session_schedule_floor,
    task_floor_time,
    task_width_cap,
    task_wire_cycles_floor,
)
from repro.sched.ioalloc import (
    BIST_PORT_PINS,
    SharingPolicy,
    control_pins,
    data_pins_available,
    io_sharing_report,
)
from repro.sched.nonsession import schedule_nonsession
from repro.sched.power import PowerTimeline, fits_power_budget, session_power
from repro.sched.registry import (
    available_strategies,
    get_scheduler,
    register_scheduler,
    resolve_schedule,
)
from repro.sched.rebalance import RebalanceAdvice, rebalance_advice, rebalance_report
from repro.sched.result import ScheduledTest, ScheduleResult, Session, TestTask
from repro.sched.session import (
    InfeasibleScheduleError,
    assign_widths,
    build_session,
    schedule_serial,
    schedule_sessions,
)
from repro.sched.session_ref import schedule_sessions_reference
from repro.sched.tasks import scan_max_width, tasks_from_core, tasks_from_soc
from repro.sched.timecalc import (
    FUNCTIONAL_SETUP_CYCLES,
    SESSION_RECONFIG_CYCLES,
    WIR_PROGRAM_CYCLES,
    ScanTimeModel,
    best_width_time,
    clear_scan_time_cache,
    core_scan_time,
    functional_test_time,
    make_scan_time_fn,
    scan_test_time,
    scan_time_cache_stats,
)

__all__ = [
    "BIST_PORT_PINS",
    "forced_session_floor",
    "schedule_lower_bound",
    "session_schedule_floor",
    "task_floor_time",
    "task_width_cap",
    "task_wire_cycles_floor",
    "SharingPolicy",
    "control_pins",
    "data_pins_available",
    "io_sharing_report",
    "schedule_nonsession",
    "available_strategies",
    "get_scheduler",
    "register_scheduler",
    "resolve_schedule",
    "PowerTimeline",
    "fits_power_budget",
    "session_power",
    "RebalanceAdvice",
    "rebalance_advice",
    "rebalance_report",
    "ScheduledTest",
    "ScheduleResult",
    "Session",
    "TestTask",
    "InfeasibleScheduleError",
    "assign_widths",
    "build_session",
    "schedule_serial",
    "schedule_sessions",
    "schedule_sessions_reference",
    "scan_max_width",
    "tasks_from_core",
    "tasks_from_soc",
    "ScanTimeModel",
    "best_width_time",
    "clear_scan_time_cache",
    "core_scan_time",
    "scan_time_cache_stats",
    "functional_test_time",
    "make_scan_time_fn",
    "scan_test_time",
    "FUNCTIONAL_SETUP_CYCLES",
    "SESSION_RECONFIG_CYCLES",
    "WIR_PROGRAM_CYCLES",
]
