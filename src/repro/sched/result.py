"""Schedulable test tasks and schedule results.

The Core Test Scheduler operates on :class:`TestTask` objects — one per
(core, test) pair plus one per memory-BIST group.  A task knows its
control-IO needs, its power draw, and either a fixed duration
(functional, BIST) or a width-dependent duration (scan through a TAM of
``w`` wires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.soc.core import ControlNeeds
from repro.soc.tests import TestKind
from repro.util import Table, format_cycles


@dataclass
class TestTask:
    """One schedulable test.

    Attributes:
        name: unique task name (``"USB.usb_scan"``, ``"mbist.g0"``).
        core_name: owning core (tasks of the same core never overlap).
        kind: scan / functional / bist.
        control: control-IO classes needed while the task runs.
        clock_domains: clock-domain names needing test clock pins.
        power: abstract power units drawn while running.
        fixed_time: duration in cycles for width-independent tasks.
        time_fn: ``width -> cycles`` for scan tasks (monotone
            non-increasing); when set, ``fixed_time`` is ignored.  The
            platform builds these as declarative
            :class:`repro.sched.timecalc.ScanTimeModel` tables, so tasks
            (and the schedule results that embed them) pickle cleanly
            across process boundaries; ad-hoc callables still work but
            forfeit picklability.
        max_width: largest useful TAM width for this task.
        uses_functional_pins: functional tests occupy the chip's
            functional pin interface — at most one such task at a time.
        uses_bist_port: BIST tasks share the chip's BIST access port.
    """

    name: str
    core_name: str
    kind: TestKind
    control: ControlNeeds = field(default_factory=ControlNeeds)
    clock_domains: tuple[str, ...] = ()
    power: float = 0.0
    fixed_time: int = 0
    time_fn: Optional[Callable[[int], int]] = None
    max_width: int = 1
    uses_functional_pins: bool = False
    uses_bist_port: bool = False

    @property
    def is_scan(self) -> bool:
        return self.time_fn is not None

    def time(self, width: int = 1) -> int:
        """Duration in cycles at the given TAM width."""
        if self.time_fn is not None:
            return self.time_fn(min(width, self.max_width))
        return self.fixed_time

    @property
    def min_time(self) -> int:
        """Duration at the task's own maximum useful width."""
        return self.time(self.max_width)

    @property
    def serial_time(self) -> int:
        """Duration at width 1 (fully serialized)."""
        return self.time(1)


@dataclass
class ScheduledTest:
    """A task placed in a schedule: its width, start and finish."""

    task: TestTask
    width: int = 1
    start: int = 0

    @property
    def length(self) -> int:
        return self.task.time(self.width)

    @property
    def finish(self) -> int:
        return self.start + self.length


@dataclass
class Session:
    """One test session: tests that run concurrently."""

    index: int
    tests: list[ScheduledTest] = field(default_factory=list)
    control_pins: int = 0
    data_pins: int = 0

    @property
    def length(self) -> int:
        """Session duration = slowest member."""
        return max((t.length for t in self.tests), default=0)

    @property
    def power(self) -> float:
        return sum(t.task.power for t in self.tests)

    @property
    def task_names(self) -> list[str]:
        return [t.task.name for t in self.tests]


@dataclass
class ScheduleResult:
    """Outcome of a scheduling run.

    ``total_time`` includes inter-session reconfiguration overhead for
    session-based schedules; for non-session schedules it is the makespan.
    """

    soc_name: str
    strategy: str
    sessions: list[Session] = field(default_factory=list)
    total_time: int = 0
    pin_budget: int = 0
    notes: str = ""

    @property
    def session_count(self) -> int:
        return len(self.sessions)

    def to_dict(self) -> dict:
        """JSON-native schedule document — the ``schedule`` section of
        the integration-result schema, also emitted standalone by
        ``python -m repro d695 --json``."""
        return {
            "strategy": self.strategy,
            "total_time": self.total_time,
            "session_count": self.session_count,
            "pin_budget": self.pin_budget,
            "notes": self.notes,
            "sessions": [
                {
                    "index": session.index,
                    "length": session.length,
                    "power": session.power,
                    "control_pins": session.control_pins,
                    "data_pins": session.data_pins,
                    "tests": [
                        {
                            "name": test.task.name,
                            "core": test.task.core_name,
                            "kind": test.task.kind.value,
                            "width": test.width,
                            "start": test.start,
                            "finish": test.finish,
                        }
                        for test in session.tests
                    ],
                }
                for session in self.sessions
            ],
        }

    def scheduled_widths(self) -> dict[str, int]:
        """Per-core maximum assigned scan width — the width Test
        Insertion generates each wrapper for, and the width the
        verifier checks wrappers against (one definition, shared)."""
        widths: dict[str, int] = {}
        for session in self.sessions:
            for test in session.tests:
                if test.task.is_scan:
                    widths[test.task.core_name] = max(
                        widths.get(test.task.core_name, 1), test.width
                    )
        return widths

    def render(self) -> str:
        """ASCII schedule report."""
        table = Table(
            ["Session", "Tests (width)", "Control", "Data", "Length"],
            title=f"{self.strategy} schedule for {self.soc_name} "
            f"(pin budget {self.pin_budget})",
        )
        for session in self.sessions:
            names = ", ".join(
                f"{t.task.name}(w{t.width})" if t.task.is_scan else t.task.name
                for t in session.tests
            )
            table.add_row(
                [
                    session.index,
                    names,
                    session.control_pins,
                    session.data_pins,
                    format_cycles(session.length),
                ]
            )
        lines = [table.render(), f"total test time: {format_cycles(self.total_time)} cycles"]
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)
