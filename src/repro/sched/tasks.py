"""Build schedulable tasks from SOC models."""

from __future__ import annotations

from repro.sched.result import TestTask
from repro.sched.timecalc import ScanTimeModel, functional_test_time
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.soc.tests import TestKind

#: Cap on useful TAM width for soft cores (re-stitching beyond this buys
#: little and costs pins).
SOFT_CORE_MAX_WIDTH = 16


def scan_max_width(core: Core) -> int:
    """Largest useful TAM width for a core's scan test.

    Hard cores cannot split their internal chains, so width beyond the
    chain count only helps boundary cells; soft cores re-stitch freely.
    """
    if not core.scan_chains:
        return 1
    if core.is_soft:
        return min(SOFT_CORE_MAX_WIDTH, max(1, core.scan_flops))
    return max(1, len(core.scan_chains))


def tasks_from_core(core: Core, time_models: bool = True) -> list[TestTask]:
    """One :class:`TestTask` per test of ``core``.

    ``time_models=False`` skips building the (precomputed)
    :class:`~repro.sched.timecalc.ScanTimeModel` tables — scan tasks
    come back with no ``time_fn`` and zero duration.  That variant is
    **for control-IO/pin accounting only** (clock domains, control
    needs, port flags are all present); never schedule it.  The
    generator's pin-floor computation uses this to avoid running
    ``design_wrapper`` sweeps for chips it is still budgeting.
    """
    tasks: list[TestTask] = []
    domains = tuple(d.name for d in core.clock_domains)
    if not domains:
        # fall back to clock ports (cores built without ClockDomain lists)
        from repro.soc.ports import SignalKind

        domains = tuple(
            p.clock_domain or p.name for p in core.ports_of_kind(SignalKind.CLOCK)
        )
    for test in core.tests:
        name = f"{core.name}.{test.name}"
        if test.kind is TestKind.SCAN and core.scan_chains:
            max_width = scan_max_width(core)
            tasks.append(
                TestTask(
                    name=name,
                    core_name=core.name,
                    kind=test.kind,
                    control=core.control_needs,
                    clock_domains=domains,
                    power=test.power,
                    time_fn=ScanTimeModel.for_core(
                        core, test.patterns, max_width=max_width
                    ) if time_models else None,
                    max_width=max_width,
                )
            )
        else:
            tasks.append(
                TestTask(
                    name=name,
                    core_name=core.name,
                    kind=test.kind,
                    control=core.control_needs,
                    clock_domains=domains,
                    power=test.power,
                    fixed_time=functional_test_time(test.patterns),
                    uses_functional_pins=test.kind is TestKind.FUNCTIONAL,
                )
            )
    return tasks


def tasks_from_soc(soc: Soc, time_models: bool = True) -> list[TestTask]:
    """Tasks for every test of every wrapped core (memory BIST tasks are
    added separately by the BRAINS integration, see
    :mod:`repro.bist.scheduling`).  See :func:`tasks_from_core` for the
    accounting-only ``time_models=False`` variant."""
    tasks: list[TestTask] = []
    for core in soc.wrapped_cores:
        tasks.extend(tasks_from_core(core, time_models=time_models))
    return tasks
