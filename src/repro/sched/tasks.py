"""Build schedulable tasks from SOC models."""

from __future__ import annotations

from repro.sched.result import TestTask
from repro.sched.timecalc import functional_test_time, make_scan_time_fn
from repro.soc.core import Core
from repro.soc.soc import Soc
from repro.soc.tests import TestKind

#: Cap on useful TAM width for soft cores (re-stitching beyond this buys
#: little and costs pins).
SOFT_CORE_MAX_WIDTH = 16


def scan_max_width(core: Core) -> int:
    """Largest useful TAM width for a core's scan test.

    Hard cores cannot split their internal chains, so width beyond the
    chain count only helps boundary cells; soft cores re-stitch freely.
    """
    if not core.scan_chains:
        return 1
    if core.is_soft:
        return min(SOFT_CORE_MAX_WIDTH, max(1, core.scan_flops))
    return max(1, len(core.scan_chains))


def tasks_from_core(core: Core) -> list[TestTask]:
    """One :class:`TestTask` per test of ``core``."""
    tasks: list[TestTask] = []
    domains = tuple(d.name for d in core.clock_domains)
    if not domains:
        # fall back to clock ports (cores built without ClockDomain lists)
        from repro.soc.ports import SignalKind

        domains = tuple(
            p.clock_domain or p.name for p in core.ports_of_kind(SignalKind.CLOCK)
        )
    for test in core.tests:
        name = f"{core.name}.{test.name}"
        if test.kind is TestKind.SCAN and core.scan_chains:
            tasks.append(
                TestTask(
                    name=name,
                    core_name=core.name,
                    kind=test.kind,
                    control=core.control_needs,
                    clock_domains=domains,
                    power=test.power,
                    time_fn=make_scan_time_fn(core, test.patterns),
                    max_width=scan_max_width(core),
                )
            )
        else:
            tasks.append(
                TestTask(
                    name=name,
                    core_name=core.name,
                    kind=test.kind,
                    control=core.control_needs,
                    clock_domains=domains,
                    power=test.power,
                    fixed_time=functional_test_time(test.patterns),
                    uses_functional_pins=test.kind is TestKind.FUNCTIONAL,
                )
            )
    return tasks


def tasks_from_soc(soc: Soc) -> list[TestTask]:
    """Tasks for every test of every wrapped core (memory BIST tasks are
    added separately by the BRAINS integration, see
    :mod:`repro.bist.scheduling`)."""
    tasks: list[TestTask] = []
    for core in soc.wrapped_cores:
        tasks.extend(tasks_from_core(core))
    return tasks
