"""Scan-chain rebalancing reports for soft cores.

"If the IP is a soft core, the scan chains can be reconfigured.  The Core
Test Scheduler will then rebalance scan chains for each assigned TAM
width.  The results can be fed back to the SOC integrator to reconfigure
the scan chains to balance the chain length." (paper, Section 2)

The rebalancing arithmetic lives in
:func:`repro.soc.scan.rebalance_lengths`; this module produces the
integrator-facing feedback report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.result import ScheduleResult
from repro.soc.core import Core
from repro.soc.scan import rebalance_lengths
from repro.soc.soc import Soc
from repro.util import Table


@dataclass(frozen=True)
class RebalanceAdvice:
    """Feedback for one soft core: re-stitch to these chain lengths."""

    core_name: str
    assigned_width: int
    old_lengths: tuple[int, ...]
    new_lengths: tuple[int, ...]

    @property
    def old_max(self) -> int:
        return max(self.old_lengths, default=0)

    @property
    def new_max(self) -> int:
        return max(self.new_lengths, default=0)


def rebalance_advice(core: Core, width: int) -> RebalanceAdvice:
    """Rebalancing feedback for one soft core at ``width``."""
    return RebalanceAdvice(
        core_name=core.name,
        assigned_width=width,
        old_lengths=tuple(core.chain_lengths),
        new_lengths=tuple(rebalance_lengths(core.scan_flops, width)),
    )


def rebalance_report(soc: Soc, result: ScheduleResult) -> Table:
    """Integrator feedback for every soft scanned core in a schedule."""
    widths: dict[str, int] = {}
    for session in result.sessions:
        for test in session.tests:
            if test.task.is_scan:
                widths[test.task.core_name] = max(
                    widths.get(test.task.core_name, 0), test.width
                )
    table = Table(
        ["Core", "TAM width", "Old chains (max)", "Rebalanced chains (max)"],
        title="Scan-chain rebalancing feedback (soft cores)",
    )
    for core in soc.cores:
        if not (core.is_soft and core.has_scan and core.name in widths):
            continue
        advice = rebalance_advice(core, widths[core.name])
        table.add_row(
            [
                advice.core_name,
                advice.assigned_width,
                f"{len(advice.old_lengths)} ({advice.old_max})",
                f"{len(advice.new_lengths)} ({advice.new_max})",
            ]
        )
    return table
