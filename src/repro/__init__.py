"""repro — a reproduction of "SOC Testing Methodology and Practice"
(Cheng-Wen Wu, DATE 2005).

The package implements **STEAC**, an SOC test-integration platform
(STIL parser, session-based core-test scheduler, IEEE-1500-style wrapper /
TAM / test-controller generation, pattern translation) together with
**BRAINS**, a memory-BIST compiler, and every substrate the paper assumes
(gate-level netlists, a logic simulator, and a PODEM ATPG).

One-call quickstart::

    from repro.soc.dsc import build_dsc_chip
    from repro.core import Steac

    result = Steac().integrate(build_dsc_chip())
    print(result.report())          # the paper-style console report
    print(result.to_json())         # machine-readable (schema v1)

Staged quickstart — the Fig.-1 flow as composable stages::

    from repro.core import Pipeline, Steac

    steac = Steac()
    ctx = steac.context(build_dsc_chip())
    Pipeline.default().until("schedule").run(ctx)   # stop after scheduling
    print(ctx.schedule.render())

Batch quickstart — many SOCs, concurrently, errors isolated per SOC::

    socs = [build_dsc_chip(test_pins=p) for p in (24, 28, 36, 48)]
    batch = Steac().integrate_many(socs, workers=4)
    print(batch.render())

Scheduling strategies (``session`` / ``nonsession`` / ``serial`` /
``ilp``) resolve by name through :mod:`repro.sched.registry`.  See
``ARCHITECTURE.md`` for the pipeline API and the result JSON schema, and
``python -m repro --help`` for the command shell.
"""

__version__ = "1.1.0"
