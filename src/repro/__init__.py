"""repro — a reproduction of "SOC Testing Methodology and Practice"
(Cheng-Wen Wu, DATE 2005).

The package implements **STEAC**, an SOC test-integration platform
(STIL parser, session-based core-test scheduler, IEEE-1500-style wrapper /
TAM / test-controller generation, pattern translation) together with
**BRAINS**, a memory-BIST compiler, and every substrate the paper assumes
(gate-level netlists, a logic simulator, and a PODEM ATPG).

Quickstart::

    from repro.soc.dsc import build_dsc_chip
    from repro.core import Steac

    soc = build_dsc_chip()
    result = Steac().integrate(soc)
    print(result.report())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

__version__ = "1.0.0"
