"""Structured verification reports.

Every checker in :mod:`repro.verify` appends :class:`Violation` records
to a :class:`VerificationReport` — machine-readable (``to_dict``), human
readable (``render``), and cheap to assert on in tests (``ok``,
``errors``).  A report also remembers which rules *ran*, so "clean"
is distinguishable from "not checked".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import Table

#: Violation severities: ``error`` breaks an invariant, ``warning`` flags
#: suspicious-but-legal structure (e.g. recorded pin accounting drifting
#: from the recomputed value).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Violation:
    """One broken (or suspicious) invariant.

    Attributes:
        rule: checker rule id (``"core-mutex"``, ``"power-ceiling"``, ...).
        subject: what the violation is about (task, session, core name).
        message: human-readable description with the observed numbers.
        severity: ``"error"`` or ``"warning"``.
    """

    rule: str
    subject: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "subject": self.subject,
            "message": self.message,
            "severity": self.severity,
        }


@dataclass
class VerificationReport:
    """Outcome of one verification run over a schedule (or integration)."""

    soc_name: str
    strategy: str = ""
    violations: list[Violation] = field(default_factory=list)
    rules_checked: list[str] = field(default_factory=list)

    def check(self, rule: str) -> None:
        """Record that ``rule`` ran (idempotent)."""
        if rule not in self.rules_checked:
            self.rules_checked.append(rule)

    def add(self, rule: str, subject: str, message: str, severity: str = "error") -> None:
        """Record a violation (and that its rule ran)."""
        self.check(rule)
        self.violations.append(Violation(rule, subject, message, severity))

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity violation was found."""
        return not self.errors

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        """Fold another report's findings into this one."""
        self.violations.extend(other.violations)
        for rule in other.rules_checked:
            self.check(rule)
        return self

    def to_dict(self) -> dict:
        """JSON-native report document."""
        return {
            "soc": self.soc_name,
            "strategy": self.strategy,
            "ok": self.ok,
            "rules_checked": list(self.rules_checked),
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        """ASCII verification summary."""
        title = f"invariant check: {self.soc_name}"
        if self.strategy:
            title += f" ({self.strategy})"
        if not self.violations:
            return (
                f"{title}: OK — {len(self.rules_checked)} rules clean "
                f"({', '.join(self.rules_checked)})"
            )
        table = Table(["Severity", "Rule", "Subject", "Message"], title=title)
        for violation in self.violations:
            table.add_row(
                [violation.severity, violation.rule, violation.subject, violation.message]
            )
        verdict = "FAIL" if self.errors else "ok (warnings only)"
        return "\n".join(
            [table.render(),
             f"{verdict}: {len(self.errors)} errors, {len(self.warnings)} warnings "
             f"over {len(self.rules_checked)} rules"]
        )
