"""Cross-stage consistency checks: wrappers and pattern translation.

The schedule invariants (:mod:`repro.verify.invariants`) say a schedule
is *internally* legal; these checks say the downstream artifacts agree
with it:

* ``wrapper-balance`` — every generated wrapper partitions exactly the
  core's scan flops and boundary cells over its chains, soft-core
  re-stitching is balanced (lengths differ by at most one), and the
  wrapper was built for the width the schedule assigned;
* ``translation`` — translated ATE programs have exactly the cycle
  count the time model predicts (WIR preamble + the standard
  ``(1 + max(si, so)) * p + min(si, so)`` scan formula, or preamble +
  one cycle per functional vector), optionally lifted by the
  chip-level session preamble.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.patterns.ate import AteProgram
from repro.patterns.core_patterns import CorePatternSet

# one definition, shared with the translator, so the checker can never
# drift from what it checks
from repro.patterns.translate import CHIP_SESSION_PREAMBLE
from repro.sched.result import ScheduleResult
from repro.sched.timecalc import scan_test_time
from repro.soc.core import Core
from repro.verify.report import VerificationReport
from repro.wrapper.balance import WrapperPlan, wrapper_cell_counts
from repro.wrapper.wir import WrapperInstruction
from repro.wrapper.wrapper import wir_shift_sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import IntegrationResult


def _wir_preamble_cycles(instruction: WrapperInstruction) -> int:
    """Cycles the translator spends programming the WIR (shift + update)."""
    return len(wir_shift_sequence(instruction)) + 1


def check_wrapper_plan(
    core: Core,
    plan: WrapperPlan,
    report: VerificationReport,
    expected_width: Optional[int] = None,
) -> None:
    """Wrapper/chain-balance consistency for one generated wrapper."""
    report.check("wrapper-balance")
    subject = core.name
    if plan.core_name != core.name:
        report.add("wrapper-balance", subject,
                   f"plan belongs to {plan.core_name!r}")
        return
    if expected_width is not None and plan.width != expected_width:
        report.add("wrapper-balance", subject,
                   f"wrapper built for width {plan.width}, schedule "
                   f"assigned {expected_width}")
    internal = sum(c.internal_length for c in plan.chains)
    if internal != core.scan_flops:
        report.add("wrapper-balance", subject,
                   f"wrapper chains carry {internal} scan flops, core has "
                   f"{core.scan_flops}")
    want_in, want_out = wrapper_cell_counts(core)
    in_cells = sum(c.input_cells for c in plan.chains)
    out_cells = sum(c.output_cells for c in plan.chains)
    if in_cells != want_in:
        report.add("wrapper-balance", subject,
                   f"{in_cells} wrapper input cells for {want_in} functional "
                   f"input bits")
    if out_cells != want_out:
        report.add("wrapper-balance", subject,
                   f"{out_cells} wrapper output cells for {want_out} functional "
                   f"output bits")
    if plan.rebalanced:
        lengths = [c.internal_length for c in plan.chains if c.internal_length > 0]
        if lengths and max(lengths) - min(lengths) > 1:
            report.add("wrapper-balance", subject,
                       f"re-stitched chain lengths {lengths} are not balanced "
                       f"(spread > 1)")


def check_program_cycles(
    core: Core,
    plan: WrapperPlan,
    patterns: CorePatternSet,
    program: AteProgram,
    kind: str,
    report: VerificationReport,
) -> None:
    """Pattern-translation consistency: the program's cycle count must
    equal the time model's prediction (wrapper-level, or chip-level with
    the session preamble)."""
    report.check("translation")
    if kind == "scan":
        preamble = _wir_preamble_cycles(WrapperInstruction.INTEST_PARALLEL)
        body = scan_test_time(
            plan.scan_in_depth, plan.scan_out_depth, len(patterns.scan_vectors)
        )
    else:
        preamble = _wir_preamble_cycles(WrapperInstruction.FUNCTIONAL)
        body = len(patterns.functional_vectors)
    wrapper_level = preamble + body
    allowed = {wrapper_level, wrapper_level + CHIP_SESSION_PREAMBLE}
    if program.cycle_count not in allowed:
        report.add(
            "translation", f"{core.name}.{kind}",
            f"program {program.name!r} has {program.cycle_count} cycles; "
            f"time model predicts {wrapper_level} "
            f"(or {wrapper_level + CHIP_SESSION_PREAMBLE} chip-level)",
        )


def check_flow_artifacts(
    soc,
    schedule: ScheduleResult,
    wrappers: dict,
    programs: dict[str, AteProgram],
    pattern_data: Optional[dict[str, CorePatternSet]],
    report: VerificationReport,
) -> VerificationReport:
    """The wrapper + translation sweep over a flow's artifacts — the one
    driver both :func:`verify_integration` and the ``verify`` pipeline
    stage delegate to."""
    widths = schedule.scheduled_widths()
    for name, wrapper in sorted(wrappers.items()):
        try:
            core = soc.core(name)
        except KeyError:
            report.add("wrapper-balance", name, "wrapper for unknown core")
            continue
        check_wrapper_plan(core, wrapper.plan, report, expected_width=widths.get(name))
    for core_name, patterns in sorted((pattern_data or {}).items()):
        wrapper = wrappers.get(core_name)
        if wrapper is None:
            continue
        core = soc.core(core_name)
        for kind in ("scan", "func"):
            program = programs.get(f"{core_name}.{kind}")
            if program is not None:
                check_program_cycles(core, wrapper.plan, patterns, program, kind, report)
    return report


def verify_integration(
    result: "IntegrationResult",
    pattern_data: Optional[dict[str, CorePatternSet]] = None,
    policy=None,
) -> VerificationReport:
    """Full-result verification: schedule invariants plus wrapper and
    (when ``pattern_data`` is supplied) translation consistency."""
    from repro.verify.invariants import verify_schedule

    report = verify_schedule(result.soc, result.schedule, policy=policy)
    return check_flow_artifacts(
        result.soc, result.schedule, result.wrappers, result.programs,
        pattern_data, report,
    )
