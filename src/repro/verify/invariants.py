"""Schedule-invariant checking: is this ``ScheduleResult`` actually legal?

The checker validates any schedule — from the built-in strategies, the
exact MILP, or a plugin — against the constraints the schedulers claim
to respect, by *recomputing* everything from the placed tests (never
trusting the result's own bookkeeping, which is separately
cross-checked at warning level):

========================  ===================================================
rule                      invariant
========================  ===================================================
``task-coverage``         every input task placed exactly once, nothing extra
``session-structure``     indices dense, sessions non-empty, widths sane
``core-mutex``            one core's tests never overlap in time
``functional-mutex``      one functional test at a time (chip pin interface)
``bist-mutex``            one BIST group at a time (shared engine/port)
``power-ceiling``         concurrent power never exceeds the chip budget
``pin-budget``            control + TAM data pins fit the chip pin budget
``accounting``            recorded session pin counts match recomputation
``makespan``              total time covers the last finish **and** the
                          computable lower bound (:mod:`repro.sched.bounds`)
========================  ===================================================

The time-indexed rules run on a global event sweep over test start
times, so they hold uniformly for barriered session schedules and for
non-session rectangle packings.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sched.bounds import schedule_lower_bound
from repro.sched.ioalloc import SharingPolicy, control_pins
from repro.sched.result import ScheduledTest, ScheduleResult, TestTask
from repro.soc.soc import Soc
from repro.verify.report import VerificationReport

#: Strategy names whose premise is dedicated (unshared) control pins.
_DEDICATED_PIN_STRATEGIES = frozenset({"non-session", "nonsession"})

#: Absolute tolerance for float power comparisons.
_POWER_EPS = 1e-6


def policy_for_strategy(strategy: str) -> SharingPolicy:
    """The sharing policy a strategy's schedules are checked under.

    Unknown (plugin) strategies get the default session-sharing policy —
    the *weakest* pin check, so no false positives; pass an explicit
    ``policy`` to :func:`verify_schedule` to tighten it.
    """
    if strategy in _DEDICATED_PIN_STRATEGIES:
        return SharingPolicy.none()
    return SharingPolicy()


def _all_tests(result: ScheduleResult) -> list[ScheduledTest]:
    return [test for session in result.sessions for test in session.tests]


def _overlaps(tests: Iterable[ScheduledTest]) -> list[tuple[ScheduledTest, ScheduledTest]]:
    """Pairs of tests whose half-open [start, finish) intervals overlap."""
    ordered = sorted(tests, key=lambda t: (t.start, t.finish))
    pairs = []
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            if b.start >= a.finish:
                break
            if a.length > 0 and b.length > 0:
                pairs.append((a, b))
    return pairs


def _check_coverage(report, result, tasks: Optional[list[TestTask]]) -> None:
    report.check("task-coverage")
    placed = [t.task.name for t in _all_tests(result)]
    seen: set[str] = set()
    for name in placed:
        if name in seen:
            report.add("task-coverage", name, "task scheduled more than once")
        seen.add(name)
    if tasks is None:
        return
    expected = {t.name for t in tasks}
    for missing in sorted(expected - seen):
        report.add("task-coverage", missing, "input task missing from the schedule")
    for extra in sorted(seen - expected):
        report.add("task-coverage", extra, "scheduled task was not in the input set")


def _check_structure(report, result: ScheduleResult) -> None:
    report.check("session-structure")
    for position, session in enumerate(result.sessions):
        subject = f"session {session.index}"
        if session.index != position:
            report.add("session-structure", subject,
                       f"session index {session.index} at position {position} (not dense)")
        if not session.tests:
            report.add("session-structure", subject, "empty session", severity="warning")
        for test in session.tests:
            name = test.task.name
            if test.start < 0:
                report.add("session-structure", name, f"negative start {test.start}")
            if test.width < 1:
                report.add("session-structure", name, f"width {test.width} < 1")
            elif test.task.is_scan and test.width > test.task.max_width:
                report.add(
                    "session-structure", name,
                    f"width {test.width} exceeds the task's max useful width "
                    f"{test.task.max_width}",
                )
            elif not test.task.is_scan and test.width != 1:
                report.add("session-structure", name,
                           f"non-scan task carries width {test.width}",
                           severity="warning")


def _check_mutexes(report, result: ScheduleResult) -> None:
    tests = _all_tests(result)
    by_core: dict[str, list[ScheduledTest]] = {}
    for test in tests:
        by_core.setdefault(test.task.core_name, []).append(test)
    report.check("core-mutex")
    for core, members in sorted(by_core.items()):
        for a, b in _overlaps(members):
            report.add("core-mutex", core,
                       f"{a.task.name} [{a.start}, {a.finish}) overlaps "
                       f"{b.task.name} [{b.start}, {b.finish})")
    report.check("functional-mutex")
    for a, b in _overlaps([t for t in tests if t.task.uses_functional_pins]):
        report.add("functional-mutex", a.task.name,
                   f"functional tests {a.task.name} and {b.task.name} overlap "
                   f"on the chip functional pin interface")
    report.check("bist-mutex")
    for a, b in _overlaps([t for t in tests if t.task.uses_bist_port]):
        report.add("bist-mutex", a.task.name,
                   f"BIST tasks {a.task.name} and {b.task.name} overlap "
                   f"on the shared BIST engine")


def _event_sweep(report, soc: Soc, result: ScheduleResult, policy: SharingPolicy) -> None:
    """Power and pin checks at every test-start instant (between starts
    the active set only shrinks, so starts dominate)."""
    tests = [t for t in _all_tests(result) if t.length > 0]
    report.check("power-ceiling")
    report.check("pin-budget")
    for probe in sorted({t.start for t in tests}):
        active = [t for t in tests if t.start <= probe < t.finish]
        if not active:
            continue
        if soc.power_budget > 0:
            power = sum(t.task.power for t in active)
            if power > soc.power_budget + _POWER_EPS:
                report.add(
                    "power-ceiling", f"t={probe}",
                    f"concurrent power {power:.2f} exceeds budget "
                    f"{soc.power_budget:.2f} ({', '.join(t.task.name for t in active)})",
                )
        ctrl = control_pins((t.task for t in active), policy)
        data = sum(2 * t.width for t in active if t.task.is_scan)
        if ctrl + data > soc.test_pins:
            report.add(
                "pin-budget", f"t={probe}",
                f"{ctrl} control + {data} TAM data pins exceed the "
                f"{soc.test_pins}-pin budget ({', '.join(t.task.name for t in active)})",
            )


def _check_accounting(report, soc: Soc, result: ScheduleResult, policy: SharingPolicy) -> None:
    """Cross-check the sessions' own pin bookkeeping (warning level: the
    recomputed event-sweep check above is authoritative)."""
    report.check("accounting")
    for session in result.sessions:
        subject = f"session {session.index}"
        if session.control_pins + session.data_pins > soc.test_pins:
            report.add("accounting", subject,
                       f"recorded {session.control_pins} control + "
                       f"{session.data_pins} data pins exceed the "
                       f"{soc.test_pins}-pin budget")
        if not session.tests or (session.control_pins == 0 and session.data_pins == 0):
            continue  # ILP fallback sessions carry no accounting
        recomputed = control_pins((t.task for t in session.tests), policy)
        if session.control_pins < recomputed:
            report.add("accounting", subject,
                       f"recorded {session.control_pins} control pins, "
                       f"recomputation needs {recomputed}",
                       severity="warning")
        scan = [t for t in session.tests if t.task.is_scan and t.length > 0]
        data_used = max(
            (
                sum(2 * t.width for t in scan if t.start <= probe < t.finish)
                for probe in sorted({t.start for t in scan})
            ),
            default=0,
        )
        if data_used > session.data_pins:
            report.add("accounting", subject,
                       f"scan widths use {data_used} concurrent data pins, "
                       f"session records only {session.data_pins}",
                       severity="warning")


def _check_makespan(report, soc, result, tasks: Optional[list[TestTask]]) -> None:
    report.check("makespan")
    tests = _all_tests(result)
    last_finish = max((t.finish for t in tests), default=0)
    if result.total_time < last_finish:
        report.add("makespan", result.strategy,
                   f"total time {result.total_time} ends before the last "
                   f"test finishes ({last_finish})")
    bound_tasks = tasks if tasks is not None else [t.task for t in tests]
    bound = schedule_lower_bound(soc, bound_tasks)
    if result.total_time < bound:
        report.add("makespan", result.strategy,
                   f"total time {result.total_time} beats the computable "
                   f"lower bound {bound} — the schedule is physically impossible")


def verify_schedule(
    soc: Soc,
    result: ScheduleResult,
    tasks: Optional[list[TestTask]] = None,
    policy: Optional[SharingPolicy] = None,
) -> VerificationReport:
    """Check every schedule invariant for ``result`` on ``soc``.

    Args:
        soc: the chip the schedule claims to test.
        tasks: the task set handed to the scheduler; when given, coverage
            (nothing dropped, nothing invented) is also verified and the
            lower bound uses the full input set.
        policy: sharing policy for pin accounting; default inferred from
            the result's strategy name (:func:`policy_for_strategy`).

    Returns:
        A :class:`VerificationReport`; ``report.ok`` means invariant-clean.
    """
    if policy is None:
        policy = policy_for_strategy(result.strategy)
    report = VerificationReport(soc_name=soc.name, strategy=result.strategy)
    _check_coverage(report, result, tasks)
    _check_structure(report, result)
    _check_mutexes(report, result)
    _event_sweep(report, soc, result, policy)
    _check_accounting(report, soc, result, policy)
    _check_makespan(report, soc, result, tasks)
    return report
