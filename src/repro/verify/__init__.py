"""Schedule-invariant verification (the platform's machine-checkable
correctness oracle).

``verify_schedule`` validates any :class:`~repro.sched.ScheduleResult`
— resource mutexes, power ceiling, pin budget, session structure, and
makespan against the computable lower bound
(:mod:`repro.sched.bounds`) — returning a structured
:class:`VerificationReport`.  ``verify_integration`` extends the check
to wrapper/chain-balance and pattern-translation consistency; the
``VerifySchedule`` pipeline stage wires it into the STEAC flow, and the
CLI ``fuzz`` command differentially applies it to every registered
strategy over generated SOC corpora.
"""

from repro.verify.consistency import (
    check_flow_artifacts,
    check_program_cycles,
    check_wrapper_plan,
    verify_integration,
)
from repro.verify.invariants import policy_for_strategy, verify_schedule
from repro.verify.report import Violation, VerificationReport
from repro.verify.stage import InvariantViolationError, VerifySchedule

__all__ = [
    "InvariantViolationError",
    "VerificationReport",
    "VerifySchedule",
    "Violation",
    "check_flow_artifacts",
    "check_program_cycles",
    "check_wrapper_plan",
    "policy_for_strategy",
    "verify_integration",
    "verify_schedule",
]
