"""The ``verify`` pipeline stage: invariant-check a flow's artifacts.

Appended to the default flow by ``SteacConfig(verify_schedule=True)``
(or ``Pipeline.with_verify()``), after the Pattern Translator: by then
the context holds the schedule, the generated wrappers, and any
translated programs, so the full consistency surface is checkable.  The
report lands in ``ctx.verification`` (→ ``IntegrationResult`` and the
JSON document); ``verify_strict=True`` escalates an unclean report to
:class:`InvariantViolationError`, which batch runs surface as a failed
item.
"""

from __future__ import annotations

from repro.core.pipeline import FlowContext, Stage
from repro.verify.consistency import check_flow_artifacts
from repro.verify.invariants import verify_schedule


class InvariantViolationError(AssertionError):
    """A strict verification run found invariant violations."""

    def __init__(self, report):
        self.report = report
        summary = "; ".join(
            f"{v.rule}({v.subject}): {v.message}" for v in report.errors[:3]
        )
        extra = len(report.errors) - 3
        if extra > 0:
            summary += f"; +{extra} more"
        super().__init__(
            f"schedule for {report.soc_name!r} violates invariants — {summary}"
        )


class VerifySchedule(Stage):
    """Invariant-check everything the flow produced so far."""

    name = "verify"

    def execute(self, ctx: FlowContext) -> None:
        ctx.require("schedule")
        report = verify_schedule(
            ctx.soc, ctx.schedule, tasks=ctx.tasks or None
        )
        check_flow_artifacts(
            ctx.soc, ctx.schedule, ctx.wrappers, ctx.programs,
            ctx.pattern_data, report,
        )
        ctx.verification = report
        if getattr(ctx.config, "verify_strict", False) and not report.ok:
            raise InvariantViolationError(report)
