"""The ``Core`` model — one embedded IP with its test information.

This is the semantic object the whole platform operates on: the STIL
parser produces it, the scheduler consumes it, the wrapper generator wraps
it.  It mirrors exactly the information the paper lists in Table 1 (TI,
TO, PI, PO, scan chains and lengths, pattern counts) plus what Section 3
describes in prose (clock domains, resets, test enables, scan enables).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.soc.clocks import ClockDomain
from repro.soc.ports import Port, PortCounts, SignalKind
from repro.soc.scan import ScanChain, total_flops
from repro.soc.tests import CoreTest, TestKind
from repro.util import check_name, check_non_negative


class CoreType(enum.Enum):
    """Hard cores have frozen scan stitching; soft cores can be
    re-stitched (rebalanced) for an assigned TAM width; legacy cores have
    no scan at all (the DSC's JPEG codec is legacy)."""

    HARD = "hard"
    SOFT = "soft"
    LEGACY = "legacy"


@dataclass
class ControlNeeds:
    """Per-class control-IO requirement of a core during test.

    The paper's accounting for the DSC chip: USB needs 4 clocks + 3 resets
    + 6 test signals + 1 SE = 14; TV needs 1+1+1(TE)+1(SE) = 4; JPEG needs
    1 clock = 1; total 19.
    """

    clocks: int = 0
    resets: int = 0
    test_enables: int = 0
    scan_enables: int = 0

    @property
    def total(self) -> int:
        return self.clocks + self.resets + self.test_enables + self.scan_enables

    def __add__(self, other: "ControlNeeds") -> "ControlNeeds":
        return ControlNeeds(
            clocks=self.clocks + other.clocks,
            resets=self.resets + other.resets,
            test_enables=self.test_enables + other.test_enables,
            scan_enables=self.scan_enables + other.scan_enables,
        )


@dataclass
class Core:
    """An embedded IP core and its complete test information.

    Attributes:
        name: core instance name.
        core_type: hard / soft / legacy (see :class:`CoreType`).
        ports: all core terminals, functional and test.
        scan_chains: internal scan chains (empty for legacy cores).
        tests: the tests to run on this core.
        clock_domains: clock domains the core spans.
        gate_count: logic size in NAND2-equivalent gates (area accounting).
        wrapped: whether STEAC should put an IEEE-1500-style wrapper around
            this core (the DSC wraps USB, TV and JPEG but not the
            processor or glue logic).
    """

    name: str
    core_type: CoreType = CoreType.HARD
    ports: list[Port] = field(default_factory=list)
    scan_chains: list[ScanChain] = field(default_factory=list)
    tests: list[CoreTest] = field(default_factory=list)
    clock_domains: list[ClockDomain] = field(default_factory=list)
    gate_count: int = 0
    wrapped: bool = True

    def __post_init__(self) -> None:
        check_name(self.name, "core name")
        check_non_negative(self.gate_count, "gate count")
        seen: set[str] = set()
        for port in self.ports:
            if port.name in seen:
                raise ValueError(f"duplicate port {port.name!r} on core {self.name!r}")
            seen.add(port.name)
        port_names = seen
        for chain in self.scan_chains:
            if chain.scan_in not in port_names:
                raise ValueError(
                    f"scan chain {chain.name!r} of core {self.name!r} references "
                    f"unknown scan-in port {chain.scan_in!r}"
                )
            if chain.scan_out not in port_names:
                raise ValueError(
                    f"scan chain {chain.name!r} of core {self.name!r} references "
                    f"unknown scan-out port {chain.scan_out!r}"
                )

    # -- port queries -----------------------------------------------------

    def port(self, name: str) -> Port:
        """Look up a port by name (raises ``KeyError`` if absent)."""
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"core {self.name!r} has no port {name!r}")

    def ports_of_kind(self, kind: SignalKind) -> list[Port]:
        """All ports of the given signal class."""
        return [p for p in self.ports if p.kind is kind]

    @property
    def functional_inputs(self) -> list[Port]:
        return [p for p in self.ports if p.kind is SignalKind.FUNCTIONAL and p.is_input]

    @property
    def functional_outputs(self) -> list[Port]:
        return [p for p in self.ports if p.kind is SignalKind.FUNCTIONAL and p.is_output]

    @property
    def counts(self) -> PortCounts:
        """Table-1 style TI/TO/PI/PO tally."""
        return PortCounts.of(self.ports)

    # -- scan queries -----------------------------------------------------

    @property
    def has_scan(self) -> bool:
        return bool(self.scan_chains)

    @property
    def scan_flops(self) -> int:
        """Total scan flip-flops in the core."""
        return total_flops(self.scan_chains)

    @property
    def chain_lengths(self) -> list[int]:
        """Scan chain lengths, in declaration order."""
        return [c.length for c in self.scan_chains]

    @property
    def is_soft(self) -> bool:
        return self.core_type is CoreType.SOFT

    # -- test queries -----------------------------------------------------

    def tests_of_kind(self, kind: TestKind) -> list[CoreTest]:
        return [t for t in self.tests if t.kind is kind]

    @property
    def scan_patterns(self) -> int:
        """Total scan patterns over all scan tests."""
        return sum(t.patterns for t in self.tests if t.kind is TestKind.SCAN)

    @property
    def functional_patterns(self) -> int:
        """Total functional patterns over all functional tests."""
        return sum(t.patterns for t in self.tests if t.kind is TestKind.FUNCTIONAL)

    @property
    def control_needs(self) -> ControlNeeds:
        """Control-IO requirement while this core is under test.

        Clocks count one pin per clock domain (the PLL is bypassed in
        test); resets, test-enables (including generic dedicated test
        signals) and scan-enables are tallied from the port list.
        """
        clocks = len(self.ports_of_kind(SignalKind.CLOCK))
        resets = len(self.ports_of_kind(SignalKind.RESET))
        test_enables = len(self.ports_of_kind(SignalKind.TEST_ENABLE)) + len(
            self.ports_of_kind(SignalKind.TEST)
        )
        scan_enables = len(self.ports_of_kind(SignalKind.SCAN_ENABLE))
        return ControlNeeds(
            clocks=clocks,
            resets=resets,
            test_enables=test_enables,
            scan_enables=scan_enables,
        )

    def summary_row(self) -> list[object]:
        """One row of the paper's Table 1 for this core."""
        counts = self.counts
        chains = (
            f"{len(self.scan_chains)} ({', '.join(str(c.length) for c in self.scan_chains)})"
            if self.scan_chains
            else "No scan"
        )
        pattern_bits = []
        for test in self.tests:
            label = {"scan": "Scan", "functional": "Func.", "bist": "BIST"}[test.kind.value]
            pattern_bits.append(f"{test.patterns:,} ({label})")
        return [self.name, counts.ti, counts.to, counts.pi, counts.po, chains, "; ".join(pattern_bits)]
