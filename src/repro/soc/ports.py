"""Port and signal-class model for cores and chips.

Every core advertises its IO as a list of :class:`Port` objects.  The
*signal class* (:class:`SignalKind`) drives two things downstream:

* Table-1 style accounting — ``TI`` (dedicated test inputs), ``TO``
  (dedicated test outputs), ``PI``/``PO`` (functional IOs); and
* test-IO allocation — clocks / resets / test-enables / scan-enables are
  *control* IOs that must be driven for the whole duration of a core's
  test, while scan-in/out and functional pins are *data* IOs that ride on
  the TAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util import check_name, check_positive


class Direction(enum.Enum):
    """Port direction as seen from the core."""

    IN = "input"
    OUT = "output"
    INOUT = "inout"


class SignalKind(enum.Enum):
    """Functional role of a port, following the paper's Table 1 taxonomy."""

    FUNCTIONAL = "functional"
    CLOCK = "clock"
    RESET = "reset"
    TEST_ENABLE = "test_enable"
    SCAN_ENABLE = "scan_enable"
    SCAN_IN = "scan_in"
    SCAN_OUT = "scan_out"
    TEST = "test"  # generic dedicated test signal (USB has 6 of these)

    @property
    def is_control(self) -> bool:
        """True for signals that occupy a control IO during test."""
        return self in _CONTROL_KINDS

    @property
    def is_test(self) -> bool:
        """True for any non-functional (test-dedicated) signal."""
        return self is not SignalKind.FUNCTIONAL


_CONTROL_KINDS = frozenset(
    {
        SignalKind.CLOCK,
        SignalKind.RESET,
        SignalKind.TEST_ENABLE,
        SignalKind.SCAN_ENABLE,
        SignalKind.TEST,
    }
)


@dataclass(frozen=True)
class Port:
    """A single-bit or multi-bit core terminal.

    Attributes:
        name: identifier, unique within the owning core.
        direction: :class:`Direction` of the port.
        kind: :class:`SignalKind` — functional vs the various test roles.
        width: number of bits (ports wider than 1 count ``width`` times in
            all IO tallies, matching how pads are counted on silicon).
        clock_domain: for clocks and scan pins, the clock-domain name this
            port belongs to (used for scan IO sharing legality checks).
    """

    name: str
    direction: Direction
    kind: SignalKind = SignalKind.FUNCTIONAL
    width: int = 1
    clock_domain: str | None = None

    def __post_init__(self) -> None:
        check_name(self.name, "port name")
        check_positive(self.width, "port width")
        if self.kind in (SignalKind.CLOCK, SignalKind.RESET) and self.direction is not Direction.IN:
            raise ValueError(f"{self.kind.value} port {self.name!r} must be an input")
        if self.kind is SignalKind.SCAN_IN and self.direction is not Direction.IN:
            raise ValueError(f"scan-in port {self.name!r} must be an input")
        if self.kind is SignalKind.SCAN_OUT and self.direction is not Direction.OUT:
            raise ValueError(f"scan-out port {self.name!r} must be an output")

    @property
    def is_input(self) -> bool:
        return self.direction is Direction.IN

    @property
    def is_output(self) -> bool:
        return self.direction is Direction.OUT


@dataclass
class PortCounts:
    """Table-1 style IO tally for a core.

    ``ti``/``to`` count test-dedicated input/output *bits*, ``pi``/``po``
    count functional input/output bits (inouts count on both sides, as pads
    do).
    """

    ti: int = 0
    to: int = 0
    pi: int = 0
    po: int = 0

    @classmethod
    def of(cls, ports: list[Port]) -> "PortCounts":
        """Tally a port list into TI/TO/PI/PO counts."""
        counts = cls()
        for port in ports:
            w = port.width
            test = port.kind.is_test
            if port.direction in (Direction.IN, Direction.INOUT):
                if test:
                    counts.ti += w
                else:
                    counts.pi += w
            if port.direction in (Direction.OUT, Direction.INOUT):
                if test:
                    counts.to += w
                else:
                    counts.po += w
        return counts


def make_bus(name: str, direction: Direction, width: int, **kwargs) -> Port:
    """Convenience constructor for a multi-bit functional port."""
    return Port(name=name, direction=direction, width=width, **kwargs)
