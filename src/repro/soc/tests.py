"""Core test descriptions: scan, functional and memory-BIST tests.

A core may carry several tests (the TV encoder has both a 229-pattern scan
test and a 202,673-pattern functional test).  Tests store *pattern counts*
always and *pattern data* optionally — the DSC case study works from the
published counts, while the ATPG-generated demo cores carry real vectors
through the pattern translator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.util import check_name, check_non_negative


class TestKind(enum.Enum):
    """The three test types STEAC schedules."""

    SCAN = "scan"
    FUNCTIONAL = "functional"
    BIST = "bist"


@dataclass
class CoreTest:
    """One test of a core.

    Attributes:
        name: test identifier, unique within the core.
        kind: scan / functional / bist.
        patterns: number of test patterns.  For scan tests this is the
            number of scan load/capture/unload iterations; for functional
            tests the number of tester cycles (one vector per cycle); for
            BIST the count is informational (BIST time comes from the March
            algorithm and memory size).
        power: abstract test-power units consumed while this test runs
            (used by power-constrained scheduling; 0 = unconstrained).
        vectors: optional concrete pattern payload (``repro.patterns``
            containers); ``None`` when only counts are known.
    """

    name: str
    kind: TestKind
    patterns: int
    power: float = 0.0
    vectors: Optional[object] = None

    def __post_init__(self) -> None:
        check_name(self.name, "test name")
        check_non_negative(self.patterns, "pattern count")
        check_non_negative(self.power, "test power")

    @property
    def is_scan(self) -> bool:
        return self.kind is TestKind.SCAN

    @property
    def is_functional(self) -> bool:
        return self.kind is TestKind.FUNCTIONAL


def scan_test(patterns: int, name: str = "scan", power: float = 0.0, vectors=None) -> CoreTest:
    """Shorthand for a scan test."""
    return CoreTest(name=name, kind=TestKind.SCAN, patterns=patterns, power=power, vectors=vectors)


def functional_test(patterns: int, name: str = "func", power: float = 0.0, vectors=None) -> CoreTest:
    """Shorthand for a functional (cycle-based) test."""
    return CoreTest(
        name=name, kind=TestKind.FUNCTIONAL, patterns=patterns, power=power, vectors=vectors
    )


def bist_test(patterns: int = 0, name: str = "mbist", power: float = 0.0) -> CoreTest:
    """Shorthand for a memory BIST test entry."""
    return CoreTest(name=name, kind=TestKind.BIST, patterns=patterns, power=power)
