"""Synthetic SOC generation for scheduler stress and scale studies.

The paper's platform was exercised on one proprietary chip; d695 adds a
public instance.  This module generates parameterized random-but-
plausible SOCs (seeded, reproducible) so the schedulers can be tested
at arbitrary scale and the property suites can explore the constraint
space: chains follow a log-normal-ish spread, pattern counts correlate
with flop counts, and a configurable fraction of cores is soft or
functional-only.
"""

from __future__ import annotations

import random

from repro.soc.core import Core, CoreType
from repro.soc.memory import MemorySpec, MemoryType
from repro.soc.ports import Direction, Port, SignalKind
from repro.soc.scan import ScanChain
from repro.soc.soc import Soc
from repro.soc.tests import functional_test, scan_test


def synth_core(name: str, rng: random.Random, soft_fraction: float = 0.3) -> Core:
    """One plausible random core."""
    n_chains = rng.choice([0, 1, 2, 4, 8])
    ports: list[Port] = [
        Port(f"{name}_clk", Direction.IN, SignalKind.CLOCK, clock_domain=f"{name}_clk"),
        Port(f"{name}_rst", Direction.IN, SignalKind.RESET),
    ]
    chains: list[ScanChain] = []
    tests = []
    if n_chains:
        ports.append(Port(f"{name}_se", Direction.IN, SignalKind.SCAN_ENABLE))
        flops = rng.randint(50, 3000)
        base, extra = divmod(flops, n_chains)
        for i in range(n_chains):
            si = Port(f"{name}_si{i}", Direction.IN, SignalKind.SCAN_IN)
            so = Port(f"{name}_so{i}", Direction.OUT, SignalKind.SCAN_OUT)
            ports.extend([si, so])
            length = base + (1 if i < extra else 0)
            # skew some chains to make balancing non-trivial
            if i == 0 and n_chains > 1 and rng.random() < 0.5:
                length = int(length * rng.uniform(1.5, 3.0))
            chains.append(ScanChain(f"{name}_c{i}", max(1, length), si.name, so.name))
        patterns = max(10, int(flops * rng.uniform(0.05, 0.4)))
        tests.append(scan_test(patterns, name=f"{name}_scan", power=rng.uniform(1.0, 4.0)))
    else:
        patterns = rng.randint(500, 50_000)
        tests.append(
            functional_test(patterns, name=f"{name}_func", power=rng.uniform(1.0, 3.0))
        )
    pi = rng.randint(8, 128)
    po = rng.randint(8, 128)
    ports.append(Port(f"{name}_d", Direction.IN, width=pi))
    ports.append(Port(f"{name}_q", Direction.OUT, width=po))
    core_type = CoreType.SOFT if (chains and rng.random() < soft_fraction) else CoreType.HARD
    return Core(
        name,
        core_type=core_type,
        ports=ports,
        scan_chains=chains,
        tests=tests,
        gate_count=rng.randint(5_000, 80_000),
        wrapped=True,
    )


def synth_soc(
    n_cores: int = 8,
    n_memories: int = 6,
    test_pins: int = 48,
    power_budget: float = 10.0,
    seed: int = 1,
) -> Soc:
    """A seeded random SOC with ``n_cores`` cores and ``n_memories``
    SRAMs; always schedulable at the default budgets."""
    rng = random.Random(seed)
    soc = Soc(
        f"synth{seed}",
        test_pins=test_pins,
        gate_count=rng.randint(20_000, 60_000),
        power_budget=power_budget,
    )
    for i in range(n_cores):
        soc.add_core(synth_core(f"core{i}", rng))
    for i in range(n_memories):
        words = rng.choice([256, 1024, 4096, 16_384, 65_536])
        bits = rng.choice([8, 16, 32])
        mem_type = MemoryType.TWO_PORT if rng.random() < 0.3 else MemoryType.SINGLE_PORT
        soc.add_memory(
            MemorySpec(
                f"mem{i}", words, bits, mem_type,
                power=0.5 + words / 65_536.0,
            )
        )
    return soc
