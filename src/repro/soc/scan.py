"""Scan-chain description for cores under test.

A scan chain is characterized by its flip-flop count (*length*), the core
ports it loads/unloads through, and the clock domain its flops belong to.
The DSC chip's USB core, for instance, has four chains of lengths 1629, 78,
293 and 45, one per clock domain (paper, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import check_name, check_positive


@dataclass(frozen=True)
class ScanChain:
    """One internal scan chain of a core.

    Attributes:
        name: chain identifier, unique within the core.
        length: number of scan flip-flops on the chain.
        scan_in: name of the core port the chain shifts in from.
        scan_out: name of the core port the chain shifts out to.
        clock_domain: clock-domain name the chain's flops belong to.
        shares_functional_output: True when the scan-out rides on a
            functional output pin instead of a dedicated one (the TV
            encoder does this — "one scan chain shares the output with a
            functional output").
    """

    name: str
    length: int
    scan_in: str
    scan_out: str
    clock_domain: str | None = None
    shares_functional_output: bool = False

    def __post_init__(self) -> None:
        check_name(self.name, "scan chain name")
        check_positive(self.length, "scan chain length")
        check_name(self.scan_in, "scan_in port")
        check_name(self.scan_out, "scan_out port")


def total_flops(chains: list[ScanChain]) -> int:
    """Total scan flip-flops across ``chains``."""
    return sum(chain.length for chain in chains)


def rebalance_lengths(total: int, width: int) -> list[int]:
    """Split ``total`` flops into ``width`` balanced chain lengths.

    Used for *soft* cores whose stitching can be redone for an assigned TAM
    width: the scheduler "will then rebalance scan chains for each assigned
    TAM width" (paper, Section 2).  Lengths differ by at most one and drop
    empty chains when ``width > total``.

    >>> rebalance_lengths(10, 4)
    [3, 3, 2, 2]
    """
    check_positive(width, "rebalanced chain count")
    if total < 0:
        raise ValueError(f"total flop count must be >= 0, got {total}")
    if total == 0:
        return []
    width = min(width, total)
    base, extra = divmod(total, width)
    return [base + 1] * extra + [base] * (width - extra)
