"""Top-level SOC model: cores + memories + chip-level test resources.

The scheduler's key resource is the *test pin budget*: the number of chip
pads the tester can use during test.  Control IOs (clocks, resets, TE, SE)
are carved out of this budget first; whatever remains is TAM data width.
That interplay is the heart of the paper's Section 3 observation that
"parallel testing may not be better than serial testing".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soc.core import Core
from repro.soc.memory import MemorySpec
from repro.util import check_name, check_positive


@dataclass
class Soc:
    """A system-on-chip under test integration.

    Attributes:
        name: chip name.
        cores: embedded logic cores (wrapped or not).
        memories: embedded SRAMs (tested via BIST).
        test_pins: chip pads usable by the tester (control + TAM data).
        gate_count: logic gate count of the glue/unwrapped logic, in NAND2
            equivalents; total chip gates = this + Σ core gates (memories
            are counted separately, in bits).
        power_budget: maximum concurrent test power (0 = unconstrained).
    """

    name: str
    cores: list[Core] = field(default_factory=list)
    memories: list[MemorySpec] = field(default_factory=list)
    test_pins: int = 64
    gate_count: int = 0
    power_budget: float = 0.0

    def __post_init__(self) -> None:
        check_name(self.name, "SOC name")
        check_positive(self.test_pins, "test pin budget")

    # -- construction ------------------------------------------------------

    def add_core(self, core: Core) -> Core:
        """Register a core (names must be unique across cores)."""
        if any(c.name == core.name for c in self.cores):
            raise ValueError(f"duplicate core {core.name!r} in SOC {self.name!r}")
        self.cores.append(core)
        return core

    def add_memory(self, memory: MemorySpec) -> MemorySpec:
        """Register an embedded memory (names must be unique)."""
        if any(m.name == memory.name for m in self.memories):
            raise ValueError(f"duplicate memory {memory.name!r} in SOC {self.name!r}")
        self.memories.append(memory)
        return memory

    # -- queries -----------------------------------------------------------

    def core(self, name: str) -> Core:
        """Look up a core by name."""
        for core in self.cores:
            if core.name == name:
                return core
        raise KeyError(f"SOC {self.name!r} has no core {name!r}")

    def memory(self, name: str) -> MemorySpec:
        """Look up a memory by name."""
        for memory in self.memories:
            if memory.name == name:
                return memory
        raise KeyError(f"SOC {self.name!r} has no memory {name!r}")

    @property
    def wrapped_cores(self) -> list[Core]:
        """Cores that receive an IEEE-1500-style wrapper."""
        return [c for c in self.cores if c.wrapped]

    @property
    def total_core_gates(self) -> int:
        """Σ gate counts over all cores."""
        return sum(c.gate_count for c in self.cores)

    @property
    def total_gates(self) -> int:
        """Chip logic size: glue + cores, NAND2 equivalents."""
        return self.gate_count + self.total_core_gates

    @property
    def total_memory_bits(self) -> int:
        """Total embedded SRAM capacity in bits."""
        return sum(m.capacity_bits for m in self.memories)

    @property
    def raw_control_ios(self) -> int:
        """Control IOs if every wrapped core got dedicated pins (the
        paper's "total test IOs of the three large cores are 19")."""
        return sum(c.control_needs.total for c in self.wrapped_cores)

    def digest(self) -> str:
        """The chip's stable content address (sha256 hex).

        Taken over the canonical serialization in
        :mod:`repro.soc.digest`: equal for structurally identical chips
        no matter how they were built, different under any core / pin /
        power / memory mutation.  ``repro.serve`` keys its result cache
        on it; fuzz campaigns can dedupe chips by it.
        """
        from repro.soc.digest import soc_digest

        return soc_digest(self)

    def describe(self) -> str:
        """One-line chip summary for reports."""
        return (
            f"{self.name}: {len(self.cores)} cores, {len(self.memories)} memories, "
            f"{self.total_gates:,} gates, {self.total_memory_bits:,} memory bits, "
            f"{self.test_pins} test pins"
        )
