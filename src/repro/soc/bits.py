"""Bit-level port expansion helpers.

Multi-bit ports are expanded to per-bit signal names (``d[3] d[2] …``,
MSB first) wherever bit granularity matters: STIL signal lists, wrapper
boundary-cell assignment, and pattern drive/expect ordering.  Keeping
the rule here — in one place — is what lets the STIL writer, the wrapper
generator and the pattern translator agree on bit order.
"""

from __future__ import annotations

from repro.soc.core import Core
from repro.soc.ports import Direction, Port, SignalKind


def expand_port_bits(port: Port) -> list[str]:
    """Bit-expanded signal names for a port (MSB first for buses)."""
    if port.width == 1:
        return [port.name]
    return [f"{port.name}[{i}]" for i in range(port.width - 1, -1, -1)]


def functional_signal_order(core: Core) -> tuple[list[str], list[str]]:
    """(pi_order, po_order): bit-expanded functional signal lists for a
    core, in port-declaration order — the canonical drive/expect order."""
    pi: list[str] = []
    po: list[str] = []
    for port in core.ports:
        if port.kind is not SignalKind.FUNCTIONAL:
            continue
        if port.direction in (Direction.IN, Direction.INOUT):
            pi.extend(expand_port_bits(port))
        if port.direction in (Direction.OUT, Direction.INOUT):
            po.extend(expand_port_bits(port))
    return pi, po
