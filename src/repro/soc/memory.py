"""Embedded memory (SRAM) specifications.

The DSC chip embeds "tens of single-port and two-port synchronous SRAMs
with different sizes"; BRAINS generates one TPG per memory and shares a
controller/sequencer among them (paper, Fig. 2).  The spec here carries
exactly what BRAINS needs: geometry, port count, and synthesis-free area
and power estimates for the scheduling/overhead experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.util import check_name, check_non_negative, check_positive


class MemoryType(enum.Enum):
    """Port configuration of an embedded SRAM."""

    SINGLE_PORT = "SP"
    TWO_PORT = "TP"


@dataclass(frozen=True)
class RedundancySpec:
    """Repair resources of one embedded SRAM: spare word lines and spare
    bit lines, switched in by the BISR logic after diagnosis.

    A memory with no spares (``RedundancySpec(0, 0)``) is diagnosable but
    not repairable; :mod:`repro.repair` treats a missing spec the same way
    unless the caller supplies a default.
    """

    spare_rows: int = 0
    spare_cols: int = 0

    def __post_init__(self) -> None:
        check_non_negative(self.spare_rows, "spare row count")
        check_non_negative(self.spare_cols, "spare column count")

    @property
    def has_spares(self) -> bool:
        return self.spare_rows > 0 or self.spare_cols > 0

    def describe(self) -> str:
        """Human-readable spare summary, e.g. ``"2R+2C"``."""
        return f"{self.spare_rows}R+{self.spare_cols}C"


@dataclass(frozen=True)
class MemorySpec:
    """Geometry and test attributes of one embedded SRAM.

    Attributes:
        name: instance name, unique within the SOC.
        words: number of addressable words.
        bits: word width in bits.
        mem_type: single-port or two-port.
        freq_mhz: BIST shift/march frequency for time-in-seconds reports.
        power: abstract test-power units drawn while under BIST (used by
            power-constrained BIST scheduling).
        redundancy: spare rows/columns available for repair (None = the
            array ships without repair resources).
    """

    name: str
    words: int
    bits: int
    mem_type: MemoryType = MemoryType.SINGLE_PORT
    freq_mhz: float = 100.0
    power: float = 1.0
    redundancy: Optional[RedundancySpec] = None

    def __post_init__(self) -> None:
        check_name(self.name, "memory name")
        check_positive(self.words, "word count")
        check_positive(self.bits, "bit width")
        check_positive(self.freq_mhz, "frequency")

    @property
    def capacity_bits(self) -> int:
        """Total storage in bits."""
        return self.words * self.bits

    @property
    def address_bits(self) -> int:
        """Address bus width: ceil(log2(words))."""
        return max(1, (self.words - 1).bit_length())

    @property
    def is_two_port(self) -> bool:
        return self.mem_type is MemoryType.TWO_PORT

    def with_redundancy(self, redundancy: RedundancySpec) -> "MemorySpec":
        """A copy of this spec carrying the given spare resources (the
        spec itself is frozen)."""
        import dataclasses

        return dataclasses.replace(self, redundancy=redundancy)

    def describe(self) -> str:
        """Human-readable geometry, e.g. ``"16Kx16 SP"``."""
        words = self.words
        if words % 1024 == 0:
            word_str = f"{words // 1024}K"
        else:
            word_str = str(words)
        return f"{word_str}x{self.bits} {self.mem_type.value}"
