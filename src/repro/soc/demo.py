"""A small scannable demo core with a real gate-level implementation.

Used by the quickstart example and the end-to-end flow tests: it is the
one core in the repository whose netlist, test patterns and wrapper can
all be exercised together — ATPG generates its patterns, the STIL writer
carries them, STEAC wraps it, and the translated program replays against
the actual gates.

Function: a full adder whose sum and carry land in two scan flops;
``y``/``cout`` expose the flops, ``so`` shares the carry flop with the
scan path.
"""

from __future__ import annotations

from repro.netlist import Module
from repro.soc.core import Core, CoreType
from repro.soc.ports import Direction, Port, SignalKind
from repro.soc.scan import ScanChain
from repro.soc.tests import scan_test


def build_demo_core_module(name: str = "demo") -> Module:
    """The gate-level implementation (full adder + 2 scan flops)."""
    m = Module(name)
    for p in ("clk", "se", "si", "a", "b", "cin"):
        m.add_input(p)
    for p in ("so", "y", "cout"):
        m.add_output(p)
    m.add_instance("u_x1", "XOR2", A="a", B="b", Y="n_ab")
    m.add_instance("u_x2", "XOR2", A="n_ab", B="cin", Y="n_sum")
    m.add_instance("u_a1", "AND2", A="a", B="b", Y="n_g")
    m.add_instance("u_a2", "AND2", A="n_ab", B="cin", Y="n_p")
    m.add_instance("u_o1", "OR2", A="n_g", B="n_p", Y="n_carry")
    m.add_instance("ff0", "SDFF", D="n_sum", SI="si", SE="se", CK="clk", Q="n_q0")
    m.add_instance("ff1", "SDFF", D="n_carry", SI="n_q0", SE="se", CK="clk", Q="n_q1")
    m.add_instance("u_y", "BUF", A="n_q0", Y="y")
    m.add_instance("u_c", "BUF", A="n_q1", Y="cout")
    m.add_instance("u_so", "BUF", A="n_q1", Y="so")
    return m


def build_demo_core(name: str = "demo", patterns: int = 0) -> Core:
    """The test-information model of the demo core."""
    ports = [
        Port("clk", Direction.IN, SignalKind.CLOCK, clock_domain=f"{name}_clk"),
        Port("se", Direction.IN, SignalKind.SCAN_ENABLE),
        Port("si", Direction.IN, SignalKind.SCAN_IN),
        Port("so", Direction.OUT, SignalKind.SCAN_OUT),
        Port("a", Direction.IN),
        Port("b", Direction.IN),
        Port("cin", Direction.IN),
        Port("y", Direction.OUT),
        Port("cout", Direction.OUT),
    ]
    return Core(
        name,
        core_type=CoreType.HARD,
        ports=ports,
        scan_chains=[ScanChain("c0", 2, "si", "so")],
        tests=[scan_test(patterns, name=f"{name}_scan", power=1.0)],
        gate_count=15,
    )
