"""SOC data model: cores, ports, scan chains, memories, and chips.

This package is the vocabulary of the whole platform — the STIL parser
produces :class:`Core` objects, the scheduler consumes them, the wrapper
and BIST generators wrap them.  It also ships the two workloads used by
the experiments: the paper's DSC controller chip (:mod:`repro.soc.dsc`)
and the public ITC'02 d695 benchmark (:mod:`repro.soc.itc02`).
"""

from repro.soc.clocks import ClockDomain, Pll
from repro.soc.core import ControlNeeds, Core, CoreType
from repro.soc.digest import canonical_soc, soc_digest
from repro.soc.memory import MemorySpec, MemoryType, RedundancySpec
from repro.soc.ports import Direction, Port, PortCounts, SignalKind, make_bus
from repro.soc.scan import ScanChain, rebalance_lengths, total_flops
from repro.soc.soc import Soc
from repro.soc.tests import CoreTest, TestKind, bist_test, functional_test, scan_test

__all__ = [
    "ClockDomain",
    "Pll",
    "ControlNeeds",
    "Core",
    "CoreType",
    "MemorySpec",
    "MemoryType",
    "RedundancySpec",
    "Direction",
    "Port",
    "PortCounts",
    "SignalKind",
    "make_bus",
    "ScanChain",
    "rebalance_lengths",
    "total_flops",
    "Soc",
    "CoreTest",
    "TestKind",
    "bist_test",
    "canonical_soc",
    "functional_test",
    "scan_test",
    "soc_digest",
]
