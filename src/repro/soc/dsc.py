"""Model of the paper's DSC (digital still camera) controller test chip.

Built from the published data (Fig. 3, Table 1 and Section 3 prose):

* **USB** core — 4 clock domains, 3 resets, 1 scan enable, 6 dedicated test
  signals; 4 scan chains (1629, 78, 293, 45) each with dedicated scan IO;
  716 scan patterns.  TI=18, TO=4, PI=221, PO=104.
* **TV encoder** — 1 clock, 1 reset, 1 SE, 1 TE; 2 scan chains (577, 576),
  one sharing its output with a functional pin; 229 scan patterns plus
  202,673 functional patterns.  TI=6, TO=1, PI=25, PO=40.
* **JPEG** codec — legacy core, no scan, one clock domain, 235,696
  functional patterns.  TI=1, TO=0, PI=165, PO=104.
* A processor, external-memory interface and glue logic (unwrapped).
* "Tens of" single-port and two-port synchronous SRAMs of assorted sizes —
  modelled as 22 instances (frame buffers, JPEG/line buffers, caches,
  FIFOs) tested via BRAINS-generated BIST.

Quantities the paper does not publish (functional bus composition, memory
geometries, pin budget, power weights) are chosen to be representative of
a 0.25 µm DSC controller and are flagged as such; every published number
is reproduced exactly and checked by ``tests/test_soc_dsc.py`` and
``benchmarks/bench_table1.py``.
"""

from __future__ import annotations

from repro.soc.clocks import ClockDomain
from repro.soc.core import Core, CoreType
from repro.soc.memory import MemorySpec, MemoryType
from repro.soc.ports import Direction, Port, SignalKind
from repro.soc.scan import ScanChain
from repro.soc.soc import Soc
from repro.soc.tests import functional_test, scan_test

#: Default tester pin budget for the DSC experiments.  The chip has many
#: more pads, but the number of tester channels available for test (after
#: power/ground and analog pads) is limited; 28 reproduces the paper's
#: session-vs-non-session shape (session-based wins under the IO limit).
DSC_TEST_PINS = 28

#: Power budget in abstract units (1.0 ~ one small SRAM under BIST).
DSC_POWER_BUDGET = 8.0


def _functional_ports(prefix: str, pi: int, po: int) -> list[Port]:
    """Generate functional ports totalling exactly ``pi`` input bits and
    ``po`` output bits, as buses of at most 32 bits."""
    ports: list[Port] = []
    for total, direction, tag in ((pi, Direction.IN, "i"), (po, Direction.OUT, "o")):
        index = 0
        remaining = total
        while remaining > 0:
            width = min(32, remaining)
            ports.append(
                Port(
                    name=f"{prefix}_{tag}{index}",
                    direction=direction,
                    kind=SignalKind.FUNCTIONAL,
                    width=width,
                )
            )
            remaining -= width
            index += 1
    return ports


def build_usb_core() -> Core:
    """The USB core, per Table 1 and Section 3 prose."""
    domains = [ClockDomain(f"usb_clk{i}", freq_mhz=48.0 if i == 0 else 60.0) for i in range(4)]
    ports: list[Port] = []
    # 4 clock domains -> 4 test clock pins.
    for i, domain in enumerate(domains):
        ports.append(
            Port(f"usb_clk{i}", Direction.IN, SignalKind.CLOCK, clock_domain=domain.name)
        )
    # 3 reset signals.
    ports.extend(Port(f"usb_rst{i}", Direction.IN, SignalKind.RESET) for i in range(3))
    # 1 scan enable.
    ports.append(Port("usb_se", Direction.IN, SignalKind.SCAN_ENABLE))
    # 6 dedicated test signals.
    ports.extend(Port(f"usb_test{i}", Direction.IN, SignalKind.TEST) for i in range(6))
    # 4 scan chains with dedicated scan IO per clock domain.
    lengths = [1629, 78, 293, 45]
    chains: list[ScanChain] = []
    for i, length in enumerate(lengths):
        si = Port(f"usb_si{i}", Direction.IN, SignalKind.SCAN_IN, clock_domain=domains[i].name)
        so = Port(f"usb_so{i}", Direction.OUT, SignalKind.SCAN_OUT, clock_domain=domains[i].name)
        ports.extend([si, so])
        chains.append(
            ScanChain(
                name=f"usb_chain{i}",
                length=length,
                scan_in=si.name,
                scan_out=so.name,
                clock_domain=domains[i].name,
            )
        )
    ports.extend(_functional_ports("usb", pi=221, po=104))
    return Core(
        name="USB",
        core_type=CoreType.HARD,
        ports=ports,
        scan_chains=chains,
        tests=[scan_test(716, name="usb_scan", power=4.0)],
        clock_domains=domains,
        gate_count=25_000,
        wrapped=True,
    )


def build_tv_core() -> Core:
    """The TV encoder: scan + functional tests, one shared scan output."""
    domain = ClockDomain("tv_clk", freq_mhz=27.0)
    ports: list[Port] = [
        Port("tv_clk", Direction.IN, SignalKind.CLOCK, clock_domain=domain.name),
        Port("tv_rst", Direction.IN, SignalKind.RESET),
        Port("tv_se", Direction.IN, SignalKind.SCAN_ENABLE),
        Port("tv_te", Direction.IN, SignalKind.TEST_ENABLE),
        Port("tv_si0", Direction.IN, SignalKind.SCAN_IN, clock_domain=domain.name),
        Port("tv_si1", Direction.IN, SignalKind.SCAN_IN, clock_domain=domain.name),
        Port("tv_so0", Direction.OUT, SignalKind.SCAN_OUT, clock_domain=domain.name),
    ]
    ports.extend(_functional_ports("tv", pi=25, po=0))
    # 40 functional output bits; "tv_vout" is the single-bit video output
    # that doubles as chain 1's scan-out ("one scan chain shares the
    # output with a functional output").
    ports.append(Port("tv_o0", Direction.OUT, SignalKind.FUNCTIONAL, width=32))
    ports.append(Port("tv_o1", Direction.OUT, SignalKind.FUNCTIONAL, width=7))
    ports.append(Port("tv_vout", Direction.OUT, SignalKind.FUNCTIONAL, width=1))
    chains = [
        ScanChain("tv_chain0", 577, scan_in="tv_si0", scan_out="tv_so0", clock_domain=domain.name),
        ScanChain(
            "tv_chain1",
            576,
            scan_in="tv_si1",
            scan_out="tv_vout",
            clock_domain=domain.name,
            shares_functional_output=True,
        ),
    ]
    return Core(
        name="TV",
        core_type=CoreType.HARD,
        ports=ports,
        scan_chains=chains,
        tests=[
            scan_test(229, name="tv_scan", power=3.0),
            functional_test(202_673, name="tv_func", power=3.0),
        ],
        clock_domains=[domain],
        gate_count=25_000,
        wrapped=True,
    )


def build_jpeg_core() -> Core:
    """The legacy JPEG codec: functional patterns only, one clock domain."""
    domain = ClockDomain("jpeg_clk", freq_mhz=54.0)
    ports: list[Port] = [
        Port("jpeg_clk", Direction.IN, SignalKind.CLOCK, clock_domain=domain.name),
    ]
    ports.extend(_functional_ports("jpeg", pi=165, po=104))
    return Core(
        name="JPEG",
        core_type=CoreType.LEGACY,
        ports=ports,
        scan_chains=[],
        tests=[functional_test(235_696, name="jpeg_func", power=3.0)],
        clock_domains=[domain],
        gate_count=60_000,
        wrapped=True,
    )


def build_processor_core() -> Core:
    """The micro-processor: tested via its own legacy flow, not wrapped."""
    domain = ClockDomain("cpu_clk", freq_mhz=100.0)
    ports = [Port("cpu_clk", Direction.IN, SignalKind.CLOCK, clock_domain=domain.name)]
    ports.extend(_functional_ports("cpu", pi=64, po=64))
    return Core(
        name="CPU",
        core_type=CoreType.HARD,
        ports=ports,
        tests=[],
        clock_domains=[domain],
        gate_count=45_000,
        wrapped=False,
    )


def build_extmem_core() -> Core:
    """External memory interface: unwrapped glue-class logic."""
    domain = ClockDomain("emi_clk", freq_mhz=100.0)
    ports = [Port("emi_clk", Direction.IN, SignalKind.CLOCK, clock_domain=domain.name)]
    ports.extend(_functional_ports("emi", pi=48, po=48))
    return Core(
        name="EMI",
        core_type=CoreType.HARD,
        ports=ports,
        tests=[],
        clock_domains=[domain],
        gate_count=5_000,
        wrapped=False,
    )


#: (name, words, bits, type, count) — 22 embedded synchronous SRAMs,
#: representative of a DSC controller (frame buffers dominate capacity).
_DSC_MEMORIES: list[tuple[str, int, int, MemoryType, int]] = [
    ("fb", 65_536, 16, MemoryType.SINGLE_PORT, 2),       # frame buffers
    ("jpgbuf", 8_192, 32, MemoryType.TWO_PORT, 4),       # JPEG working buffers
    ("linebuf", 4_096, 16, MemoryType.TWO_PORT, 4),      # CCD line buffers
    ("cpu_i", 16_384, 32, MemoryType.SINGLE_PORT, 2),    # instruction RAM
    ("cpu_d", 8_192, 32, MemoryType.SINGLE_PORT, 2),     # data RAM
    ("usb_fifo", 1_024, 8, MemoryType.TWO_PORT, 2),      # USB endpoint FIFOs
    ("tv_lb", 2_048, 16, MemoryType.TWO_PORT, 2),        # TV line buffers
    ("dma", 512, 32, MemoryType.SINGLE_PORT, 2),         # DMA descriptor RAM
    ("osd", 4_096, 8, MemoryType.SINGLE_PORT, 1),        # on-screen display
    ("audio", 2_048, 16, MemoryType.SINGLE_PORT, 1),     # audio buffer
]


def build_dsc_memories() -> list[MemorySpec]:
    """Instantiate the 22 embedded SRAMs."""
    memories: list[MemorySpec] = []
    for base, words, bits, mem_type, count in _DSC_MEMORIES:
        for i in range(count):
            memories.append(
                MemorySpec(
                    name=f"{base}{i}",
                    words=words,
                    bits=bits,
                    mem_type=mem_type,
                    freq_mhz=100.0,
                    power=1.0 + words / 65_536.0,  # bigger arrays draw more
                )
            )
    return memories


def build_dsc_chip(test_pins: int = DSC_TEST_PINS, power_budget: float = DSC_POWER_BUDGET) -> Soc:
    """Build the full DSC controller SOC model (Fig. 3).

    Args:
        test_pins: tester channel budget (control + TAM data pins).
        power_budget: maximum concurrent test power (abstract units).

    Returns:
        A populated :class:`repro.soc.Soc`.
    """
    soc = Soc(
        name="dsc_controller",
        test_pins=test_pins,
        gate_count=8_000,  # glue logic
        power_budget=power_budget,
    )
    soc.add_core(build_usb_core())
    soc.add_core(build_tv_core())
    soc.add_core(build_jpeg_core())
    soc.add_core(build_processor_core())
    soc.add_core(build_extmem_core())
    for memory in build_dsc_memories():
        soc.add_memory(memory)
    return soc


def table1(soc: Soc) -> "Table":
    """Regenerate the paper's Table 1 from the model."""
    from repro.util import Table

    table = Table(
        ["Core", "TI", "TO", "PI", "PO", "Scan chains (Lengths)", "Patterns (Type)"],
        title="Table 1: Test information of the cores",
    )
    for name in ("USB", "TV", "JPEG"):
        table.add_row(soc.core(name).summary_row())
    return table
