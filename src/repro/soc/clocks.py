"""Clock-domain and PLL models.

The DSC chip generates core clocks from an internal PLL; during test the
clock pins are driven from the tester (bypassing the PLL), which is why
each clock domain consumes a test control IO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import check_name, check_positive


@dataclass(frozen=True)
class ClockDomain:
    """A named clock domain with a nominal test frequency.

    Attributes:
        name: domain identifier (e.g. ``"usb_clk48"``).
        freq_mhz: nominal frequency used for test-time-to-seconds
            conversions in reports; scheduling itself works in cycles.
    """

    name: str
    freq_mhz: float = 100.0

    def __post_init__(self) -> None:
        check_name(self.name, "clock domain name")
        check_positive(self.freq_mhz, "clock frequency")

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1000.0 / self.freq_mhz


@dataclass
class Pll:
    """An on-chip PLL that generates a set of clock domains.

    During scan/functional test the PLL is bypassed and the domains are
    sourced from chip-level test clock pins, so :attr:`bypassed_domains`
    lists what the test controller must route from pads.
    """

    name: str
    ref_clock: str = "xin"
    domains: list[ClockDomain] = field(default_factory=list)

    def add_domain(self, name: str, freq_mhz: float = 100.0) -> ClockDomain:
        """Register and return a generated clock domain."""
        domain = ClockDomain(name, freq_mhz)
        if any(d.name == name for d in self.domains):
            raise ValueError(f"duplicate clock domain {name!r} on PLL {self.name!r}")
        self.domains.append(domain)
        return domain

    @property
    def bypassed_domains(self) -> list[str]:
        """Domain names that need chip-level test clock pins."""
        return [d.name for d in self.domains]
