"""ITC'02 SOC test benchmark support.

The ITC'02 benchmark suite (Marinissen, Iyengar, Chakrabarty) is the
standard public workload for TAM/test-scheduling research and is the
natural extension benchmark for this platform (experiment E11 in
DESIGN.md).  This module provides:

* a parser for the ``.soc`` exchange format used by the suite, and
* an embedded transcription of **d695** (10 ISCAS85/89 cores), the
  smallest and most widely quoted instance.

The embedded d695 numbers (IO counts, flip-flop totals, chain counts,
pattern counts) are transcribed from the benchmark literature; chain
lengths are balanced partitions of the flip-flop totals, which is how the
original file was constructed.  Tests compare our schedulers against each
other on this instance, not against published testbed numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.core import Core, CoreType
from repro.soc.ports import Direction, Port, SignalKind
from repro.soc.scan import ScanChain, rebalance_lengths
from repro.soc.soc import Soc
from repro.soc.tests import scan_test, functional_test


@dataclass(frozen=True)
class Itc02Module:
    """One module line of an ITC'02 ``.soc`` file."""

    name: str
    inputs: int
    outputs: int
    bidirs: int
    scan_chain_lengths: tuple[int, ...]
    patterns: int

    @property
    def scan_flops(self) -> int:
        return sum(self.scan_chain_lengths)


def parse_soc_file(text: str) -> list[Itc02Module]:
    """Parse the ITC'02 ``.soc`` exchange format (subset).

    Recognized directives (one per line, ``#`` comments)::

        SocName <name>
        Module <name> Inputs <n> Outputs <n> Bidirs <n> \
            ScanChains <k> <l1> ... <lk> Patterns <p>

    Returns the module list in file order (``SocName`` is ignored; use
    :func:`parse_soc` to capture it too).
    """
    return parse_soc(text)[1]


def parse_soc(text: str) -> tuple[str | None, list[Itc02Module]]:
    """Parse a ``.soc`` file, returning ``(soc_name, modules)``.

    ``soc_name`` is ``None`` when the file has no ``SocName`` directive.
    """
    soc_name: str | None = None
    modules: list[Itc02Module] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == "SocName":
            soc_name = tokens[1] if len(tokens) > 1 else None
            continue
        if keyword != "Module":
            raise ValueError(f"unrecognized ITC'02 directive: {keyword!r}")
        fields: dict[str, list[str]] = {}
        name = tokens[1]
        i = 2
        while i < len(tokens):
            key = tokens[i]
            if key == "ScanChains":
                count = int(tokens[i + 1])
                lengths = tokens[i + 2 : i + 2 + count]
                if len(lengths) != count:
                    raise ValueError(f"module {name!r}: ScanChains declares {count} lengths")
                fields[key] = lengths
                i += 2 + count
            else:
                fields[key] = [tokens[i + 1]]
                i += 2
        modules.append(
            Itc02Module(
                name=name,
                inputs=int(fields.get("Inputs", ["0"])[0]),
                outputs=int(fields.get("Outputs", ["0"])[0]),
                bidirs=int(fields.get("Bidirs", ["0"])[0]),
                scan_chain_lengths=tuple(int(x) for x in fields.get("ScanChains", [])),
                patterns=int(fields.get("Patterns", ["0"])[0]),
            )
        )
    return soc_name, modules


def modules_to_text(name: str, modules: list[Itc02Module]) -> str:
    """Render modules in the ``.soc`` exchange format (the inverse of
    :func:`parse_soc`: ``parse_soc(modules_to_text(n, ms)) == (n, ms)``)."""
    lines = [f"SocName {name}"]
    for module in modules:
        chain_part = ""
        if module.scan_chain_lengths:
            lengths = " ".join(str(l) for l in module.scan_chain_lengths)
            chain_part = f" ScanChains {len(module.scan_chain_lengths)} {lengths}"
        lines.append(
            f"Module {module.name} Inputs {module.inputs} Outputs {module.outputs} "
            f"Bidirs {module.bidirs}{chain_part} Patterns {module.patterns}"
        )
    return "\n".join(lines) + "\n"


def soc_from_modules(
    name: str,
    modules: list[Itc02Module],
    test_pins: int = 64,
    power_budget: float = 0.0,
    power: float = 1.0,
) -> Soc:
    """Build a :class:`Soc` from parsed ITC'02 modules (one wrapped core
    per module, the :func:`module_to_core` convention)."""
    soc = Soc(name=name, test_pins=test_pins, power_budget=power_budget)
    for module in modules:
        soc.add_core(module_to_core(module, power=power))
    return soc


def soc_from_text(
    text: str,
    test_pins: int = 64,
    power_budget: float = 0.0,
    power: float = 1.0,
    name: str | None = None,
) -> Soc:
    """Build a :class:`Soc` straight from ``.soc`` exchange text.

    The composition of :func:`parse_soc` and :func:`soc_from_modules` —
    the entry point ``repro.serve`` uses for jobs that carry inline
    ``.soc`` bodies.  ``name`` overrides a missing ``SocName`` directive
    (without it, an unnamed file is an error); chips with at least the
    default budgets round-trip digest-identically through
    :func:`repro.gen.writer.soc_to_text`.
    """
    parsed_name, modules = parse_soc(text)
    soc_name = name or parsed_name
    if soc_name is None:
        raise ValueError(".soc text has no SocName directive and no name override")
    if not modules:
        raise ValueError(f".soc text for {soc_name!r} declares no Module lines")
    return soc_from_modules(
        soc_name, modules, test_pins=test_pins, power_budget=power_budget, power=power
    )


def module_to_core(module: Itc02Module, power: float = 1.0) -> Core:
    """Convert an ITC'02 module into a :class:`repro.soc.Core`.

    ITC'02 modules have a single clock and no published control-signal
    detail, so each core gets one clock, one reset and one scan enable
    (when scanned) — the conventional assumption in the scheduling
    literature.
    """
    ports: list[Port] = [Port(f"{module.name}_clk", Direction.IN, SignalKind.CLOCK)]
    chains: list[ScanChain] = []
    if module.scan_chain_lengths:
        ports.append(Port(f"{module.name}_rst", Direction.IN, SignalKind.RESET))
        ports.append(Port(f"{module.name}_se", Direction.IN, SignalKind.SCAN_ENABLE))
        for i, length in enumerate(module.scan_chain_lengths):
            si = Port(f"{module.name}_si{i}", Direction.IN, SignalKind.SCAN_IN)
            so = Port(f"{module.name}_so{i}", Direction.OUT, SignalKind.SCAN_OUT)
            ports.extend([si, so])
            chains.append(
                ScanChain(f"{module.name}_c{i}", length, scan_in=si.name, scan_out=so.name)
            )
    for i in range(module.inputs):
        ports.append(Port(f"{module.name}_pi{i}", Direction.IN, SignalKind.FUNCTIONAL))
    for i in range(module.outputs):
        ports.append(Port(f"{module.name}_po{i}", Direction.OUT, SignalKind.FUNCTIONAL))
    for i in range(module.bidirs):
        ports.append(Port(f"{module.name}_pb{i}", Direction.INOUT, SignalKind.FUNCTIONAL))
    if module.scan_chain_lengths:
        tests = [scan_test(module.patterns, name=f"{module.name}_scan", power=power)]
    else:
        tests = [functional_test(module.patterns, name=f"{module.name}_func", power=power)]
    return Core(
        name=module.name,
        core_type=CoreType.SOFT,  # ITC'02 scheduling treats chains as re-balanceable
        ports=ports,
        scan_chains=chains,
        tests=tests,
        gate_count=max(1_000, module.scan_flops * 12),
        wrapped=True,
    )


#: (name, inputs, outputs, bidirs, flip-flops, chain count, patterns)
_D695_DATA: list[tuple[str, int, int, int, int, int, int]] = [
    ("c6288", 32, 32, 0, 0, 0, 12),
    ("c7552", 207, 108, 0, 0, 0, 73),
    ("s838", 34, 1, 0, 32, 1, 75),
    ("s9234", 36, 39, 0, 211, 4, 105),
    ("s38417", 28, 106, 0, 1636, 32, 68),
    ("s13207", 31, 121, 0, 638, 16, 236),
    ("s15850", 14, 87, 0, 534, 16, 95),
    ("s5378", 35, 49, 0, 179, 4, 111),
    ("s35932", 35, 320, 0, 1728, 32, 16),
    ("s38584", 38, 304, 0, 1426, 32, 110),
]


def d695_modules() -> list[Itc02Module]:
    """The d695 instance as :class:`Itc02Module` records."""
    modules = []
    for name, inputs, outputs, bidirs, flops, chain_count, patterns in _D695_DATA:
        lengths = tuple(rebalance_lengths(flops, chain_count)) if chain_count else ()
        modules.append(
            Itc02Module(
                name=name,
                inputs=inputs,
                outputs=outputs,
                bidirs=bidirs,
                scan_chain_lengths=lengths,
                patterns=patterns,
            )
        )
    return modules


def d695_soc(test_pins: int = 64, power_budget: float = 0.0) -> Soc:
    """Build the d695 benchmark as a :class:`repro.soc.Soc`."""
    return soc_from_modules(
        "d695", d695_modules(), test_pins=test_pins, power_budget=power_budget
    )


def d695_soc_text() -> str:
    """The d695 instance rendered in our ``.soc`` exchange format (useful
    for round-trip tests and as a format example)."""
    return modules_to_text("d695", d695_modules())
