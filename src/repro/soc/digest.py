"""Canonical SOC serialization and content digests.

A production integration service needs a *content address* for a chip:
two structurally identical SOCs — however they were built (hand-coded,
parsed from ``.soc`` text, regenerated from :class:`repro.gen`
coordinates) — must hash to the same digest, and **any** semantic
mutation (a pin budget, a pattern count, a spare row) must change it.
That address is what the ``repro.serve`` result cache keys on, and what
fuzz campaigns can dedupe minimized chips by.

The digest is ``sha256`` over a canonical JSON rendering of the model:

* every semantic field of :class:`~repro.soc.soc.Soc`,
  :class:`~repro.soc.core.Core`, :class:`~repro.soc.ports.Port`,
  :class:`~repro.soc.scan.ScanChain`, :class:`~repro.soc.tests.CoreTest`,
  :class:`~repro.soc.clocks.ClockDomain` and
  :class:`~repro.soc.memory.MemorySpec` (enums by value, lists in
  declaration order — order is semantic: it is TAM/schedule input);
* keys sorted, separators fixed, floats via ``repr`` (shortest
  round-trip form), so the byte stream is platform-stable.

Pattern *payloads* (``CoreTest.vectors``) are summarized by length only:
the integration flow consumes counts plus the optional payloads, but
payload objects carry no stable canonical form and the scheduling /
insertion outcome is fully determined by the structural fields.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.soc.core import Core
    from repro.soc.memory import MemorySpec
    from repro.soc.soc import Soc

#: Version tag mixed into every digest: bump when the canonical form
#: changes so stale on-disk cache entries can never alias a new model.
CANONICAL_VERSION = "repro/soc-canonical/v1"


def _number(value: float | int) -> float | int:
    """Floats canonicalize via their shortest round-trip repr (which
    ``json.dumps`` uses), ints stay ints — ``1`` and ``1.0`` digest
    differently, matching the model's own typing."""
    return value


def canonical_core(core: "Core") -> dict:
    """The canonical JSON-native form of one core."""
    return {
        "name": core.name,
        "type": core.core_type.value,
        "wrapped": core.wrapped,
        "gate_count": core.gate_count,
        "ports": [
            {
                "name": p.name,
                "direction": p.direction.value,
                "kind": p.kind.value,
                "width": p.width,
                "clock_domain": p.clock_domain,
            }
            for p in core.ports
        ],
        "scan_chains": [
            {
                "name": c.name,
                "length": c.length,
                "scan_in": c.scan_in,
                "scan_out": c.scan_out,
                "clock_domain": c.clock_domain,
                "shares_functional_output": c.shares_functional_output,
            }
            for c in core.scan_chains
        ],
        "tests": [
            {
                "name": t.name,
                "kind": t.kind.value,
                "patterns": t.patterns,
                "power": _number(t.power),
                "vector_count": len(t.vectors) if t.vectors is not None else None,
            }
            for t in core.tests
        ],
        "clock_domains": [
            {"name": d.name, "freq_mhz": _number(d.freq_mhz)}
            for d in core.clock_domains
        ],
    }


def canonical_memory(memory: "MemorySpec") -> dict:
    """The canonical JSON-native form of one embedded memory."""
    return {
        "name": memory.name,
        "words": memory.words,
        "bits": memory.bits,
        "type": memory.mem_type.value,
        "freq_mhz": _number(memory.freq_mhz),
        "power": _number(memory.power),
        "redundancy": (
            None
            if memory.redundancy is None
            else {
                "spare_rows": memory.redundancy.spare_rows,
                "spare_cols": memory.redundancy.spare_cols,
            }
        ),
    }


def canonical_soc(soc: "Soc") -> dict:
    """The canonical JSON-native form of a whole chip.

    Equality of this dict is structural equality of the model; its
    serialized bytes feed :func:`soc_digest`.
    """
    return {
        "version": CANONICAL_VERSION,
        "name": soc.name,
        "test_pins": soc.test_pins,
        "gate_count": soc.gate_count,
        "power_budget": _number(soc.power_budget),
        "cores": [canonical_core(core) for core in soc.cores],
        "memories": [canonical_memory(memory) for memory in soc.memories],
    }


def canonical_json(doc: dict) -> str:
    """Deterministic JSON bytes for any JSON-native document: sorted
    keys, no whitespace — the serialization every digest is taken over."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def digest_document(doc: dict) -> str:
    """sha256 hex digest of a JSON-native document's canonical bytes."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def soc_digest(soc: "Soc") -> str:
    """The chip's content address: sha256 over :func:`canonical_soc`.

    Stable across processes, platforms and construction paths; any
    core / pin / power / memory mutation yields a different digest.
    """
    return digest_document(canonical_soc(soc))
