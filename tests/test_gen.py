"""Tests for :mod:`repro.gen`: profiles, generator, writer, corpus."""

import dataclasses

import pytest

from repro.gen import (
    GenProfile,
    Scenario,
    SocGenerator,
    available_profiles,
    generate_soc,
    get_profile,
    register_profile,
    roundtrip_errors,
    roundtrips,
    scenarios,
    soc_to_modules,
    soc_to_text,
)
from repro.sched import SharingPolicy, control_pins, tasks_from_soc
from repro.soc.dsc import build_dsc_chip
from repro.soc.itc02 import d695_soc, d695_soc_text, parse_soc, soc_from_modules


def soc_fingerprint(soc) -> tuple:
    """A deep structural digest of everything the generator draws."""
    return (
        soc.name,
        soc.test_pins,
        soc.power_budget,
        soc.gate_count,
        tuple(
            (
                c.name, c.core_type.value, c.wrapped, c.gate_count,
                tuple(c.chain_lengths),
                tuple((p.name, p.direction.value, p.kind.value) for p in c.ports),
                tuple((t.name, t.kind.value, t.patterns, t.power) for t in c.tests),
            )
            for c in soc.cores
        ),
        tuple(
            (
                m.name, m.words, m.bits, m.mem_type.value, m.power,
                (m.redundancy.spare_rows, m.redundancy.spare_cols)
                if m.redundancy else None,
            )
            for m in soc.memories
        ),
    )


class TestProfiles:
    def test_ladder_registered(self):
        for name in ("tiny", "small", "d695-like", "large", "huge"):
            assert name in available_profiles()
            assert get_profile(name).name == name

    def test_unknown_profile_lists_available(self):
        with pytest.raises(ValueError, match="tiny"):
            get_profile("gigantic")

    def test_register_profile_resolves(self):
        profile = register_profile(GenProfile(name="test-profile", cores=(3, 3)))
        assert get_profile("test-profile") is profile

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError, match="bad range"):
            GenProfile(name="broken", cores=(5, 2))
        with pytest.raises(ValueError, match="outside"):
            GenProfile(name="broken", scan_fraction=1.5)

    def test_slug_is_identifier_safe(self):
        assert get_profile("d695-like").slug == "d695_like"


class TestDeterminism:
    @pytest.mark.parametrize("profile", ["tiny", "small", "d695-like", "large"])
    def test_equal_seeds_bit_identical(self, profile):
        a = SocGenerator(seed=11, profile=profile).generate()
        b = SocGenerator(seed=11, profile=profile).generate()
        assert soc_fingerprint(a) == soc_fingerprint(b)
        assert soc_to_text(a) == soc_to_text(b)

    def test_different_seeds_differ(self):
        texts = {soc_to_text(SocGenerator(s, "small").generate()) for s in range(8)}
        assert len(texts) == 8

    def test_stream_indices_differ_and_replay(self):
        gen = SocGenerator(seed=2, profile="tiny")
        stream = list(gen.stream(4))
        assert len({s.name for s in stream}) == 4
        # index replay is exact
        again = SocGenerator(seed=2, profile="tiny").generate(2)
        assert soc_fingerprint(again) == soc_fingerprint(stream[2])

    def test_generate_soc_convenience(self):
        assert soc_fingerprint(generate_soc(5, "tiny")) == soc_fingerprint(
            SocGenerator(5, "tiny").generate()
        )


class TestGeneratedValidity:
    @pytest.mark.parametrize("profile", ["tiny", "small", "d695-like"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_profile_envelope(self, profile, seed):
        spec = get_profile(profile)
        soc = SocGenerator(seed, profile).generate()
        assert spec.cores[0] <= len(soc.cores) <= spec.cores[1]
        assert spec.memories[0] <= len(soc.memories) <= spec.memories[1]
        for core in soc.cores:
            if core.scan_chains:
                assert spec.chains[0] <= len(core.scan_chains) <= spec.chains[1]
                for length in core.chain_lengths:
                    assert spec.chain_flops[0] <= length <= spec.chain_flops[1]

    @pytest.mark.parametrize("seed", range(5))
    def test_pin_floor_covers_dedicated_pin_baseline(self, seed):
        """The generated pin budget keeps even the non-session scheduler
        (all control pins dedicated, one wire pair) feasible."""
        soc = SocGenerator(seed, "small").generate()
        ctrl = control_pins(tasks_from_soc(soc), SharingPolicy.none())
        assert soc.test_pins >= ctrl + 2

    @pytest.mark.parametrize("seed", range(5))
    def test_power_budget_admits_every_single_test(self, seed):
        soc = SocGenerator(seed, "large").generate()
        if soc.power_budget <= 0:
            pytest.skip("unconstrained draw")
        peak = max(
            [t.power for c in soc.cores for t in c.tests]
            + [m.power for m in soc.memories]
        )
        assert soc.power_budget >= peak


class TestItc02Writer:
    @pytest.mark.parametrize("profile", ["tiny", "small", "d695-like", "large"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_generated_socs_roundtrip(self, profile, seed):
        soc = SocGenerator(seed, profile).generate()
        assert roundtrip_errors(soc) == []
        name, modules = parse_soc(soc_to_text(soc))
        assert name == soc.name
        assert modules == soc_to_modules(soc)

    def test_rebuilt_soc_reaches_text_fixpoint(self):
        """text -> Soc -> text is a fixpoint (writer inverts the
        module_to_core convention exactly)."""
        soc = SocGenerator(4, "small").generate()
        text = soc_to_text(soc)
        name, modules = parse_soc(text)
        rebuilt = soc_from_modules(name, modules, test_pins=soc.test_pins)
        assert soc_to_text(rebuilt) == text

    def test_d695_text_roundtrips_via_shared_helpers(self):
        name, modules = parse_soc(d695_soc_text())
        assert name == "d695"
        assert [m.name for m in modules] == [c.name for c in d695_soc().cores]
        assert roundtrips(d695_soc())

    def test_dsc_does_not_roundtrip(self):
        """The DSC chip has multi-test cores and rich control IO the
        exchange format cannot express — the writer still runs, but the
        projection is lossy (scan+functional collapses to one pattern
        count), which roundtrip_errors does NOT flag: the module-level
        text itself still parses back to equal modules."""
        soc = build_dsc_chip()
        assert roundtrips(soc)  # module-level equality always holds
        # ...but the projection dropped the functional tests:
        tv = soc.core("TV")
        module = soc_to_modules(soc)[[c.name for c in soc.cores].index("TV")]
        assert module.patterns == tv.scan_patterns
        assert tv.functional_patterns > 0


class TestCorpus:
    def test_stream_is_reproducible(self):
        a = [s.soc.name for s in scenarios(6, base_seed=10)]
        b = [s.soc.name for s in scenarios(6, base_seed=10)]
        assert a == b and len(set(a)) == 6

    def test_profiles_cycle(self):
        stream = list(scenarios(4, profiles=("tiny", "small")))
        assert [s.profile for s in stream] == ["tiny", "small", "tiny", "small"]

    def test_scenario_regenerates_identically(self):
        scenario = next(iter(scenarios(1, profiles=("small",), base_seed=42)))
        assert soc_fingerprint(scenario.regenerate()) == soc_fingerprint(scenario.soc)
        assert "seed=42" in scenario.describe()

    def test_scenario_is_replayable_from_coordinates_alone(self):
        scenario = list(scenarios(3, profiles=("tiny",), base_seed=7))[2]
        rebuilt = SocGenerator(scenario.seed, scenario.profile).generate(scenario.index)
        assert soc_fingerprint(rebuilt) == soc_fingerprint(scenario.soc)

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValueError, match="at least one profile"):
            list(scenarios(1, profiles=()))

    def test_scenario_is_frozen(self):
        scenario = next(iter(scenarios(1)))
        assert isinstance(scenario, Scenario)
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.seed = 99
