"""Tests for BIST hardware generation (TPG, sequencer, controller),
cycle accounting, grouping, and the BRAINS compiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bist import (
    Brains,
    BrainsConfig,
    MARCH_C_MINUS,
    MATS_PLUS,
    StuckAtFault,
    make_bist_controller,
    make_sequencer,
    make_tpg,
    march_cycles,
    microcode,
    plan_bist,
    run_tpg,
)
from repro.bist.memory_model import FaultFreeMemory, FaultyMemory
from repro.bist.tpg import ELEMENT_SWITCH_CYCLES, TPG_SETUP_CYCLES
from repro.soc import MemorySpec, MemoryType
from repro.soc.dsc import build_dsc_memories


def spec(name="m0", words=64, bits=8, tp=False, power=1.0):
    return MemorySpec(
        name, words, bits,
        MemoryType.TWO_PORT if tp else MemoryType.SINGLE_PORT,
        power=power,
    )


class TestMarchCycles:
    def test_formula(self):
        words = 64
        expected = TPG_SETUP_CYCLES + 10 * words + ELEMENT_SWITCH_CYCLES * 6
        assert march_cycles(MARCH_C_MINUS, words) == expected

    def test_two_port_doubles_pass_count(self):
        single = march_cycles(MARCH_C_MINUS, 64, two_port=False)
        double = march_cycles(MARCH_C_MINUS, 64, two_port=True)
        assert double == 2 * (single - TPG_SETUP_CYCLES) + TPG_SETUP_CYCLES

    @given(words=st.integers(1, 4096))
    def test_property_behavioral_matches_formula(self, words):
        mem = FaultFreeMemory(min(words, 64))
        run = run_tpg(mem, MATS_PLUS, two_port=False)
        assert run.cycles == march_cycles(MATS_PLUS, mem.size)


class TestRunTpg:
    def test_clean_memory_passes(self):
        assert run_tpg(FaultFreeMemory(32), MARCH_C_MINUS).passed

    def test_fault_recorded(self):
        mem = FaultyMemory(32, StuckAtFault(7, 1))
        run = run_tpg(mem, MARCH_C_MINUS, name="x")
        assert not run.passed
        assert run.fail_addr == 7
        assert run.fail_op in ("r0", "r1")

    def test_stop_on_fail_shortens_run(self):
        mem = FaultyMemory(32, StuckAtFault(7, 1))
        full = run_tpg(mem, MARCH_C_MINUS)
        mem2 = FaultyMemory(32, StuckAtFault(7, 1))
        short = run_tpg(mem2, MARCH_C_MINUS, stop_on_fail=True)
        assert short.cycles < full.cycles

    def test_two_port_runs_twice(self):
        mem = FaultFreeMemory(16)
        run = run_tpg(mem, MATS_PLUS, two_port=True)
        assert run.cycles == march_cycles(MATS_PLUS, 16, two_port=True)


class TestGeneratedHardware:
    def test_tpg_validates(self):
        module = make_tpg(spec(words=256))
        assert module.validate() == []

    def test_tpg_area_scales_with_address_bits(self):
        small = make_tpg(spec(name="s", words=16)).area()
        large = make_tpg(spec(name="l", words=4096)).area()
        assert large > small

    def test_sequencer_validates(self):
        assert make_sequencer(MARCH_C_MINUS).validate() == []

    def test_sequencer_microcode(self):
        program = microcode(MARCH_C_MINUS)
        assert len(program) == MARCH_C_MINUS.complexity
        assert program[0].op.value == "w0"
        assert program[-1].last_in_element

    def test_controller_validates(self):
        assert make_bist_controller(8, 3).validate() == []

    def test_controller_rejects_empty(self):
        with pytest.raises(ValueError):
            make_bist_controller(0, 1)

    def test_controller_area_scales_with_memories(self):
        a = make_bist_controller(4, 2, name="c4").area()
        b = make_bist_controller(22, 5, name="c22").area()
        assert b > a


class TestPlanBist:
    def test_no_budget_single_group(self):
        plan = plan_bist([spec(f"m{i}", 64) for i in range(5)], MARCH_C_MINUS)
        assert len(plan.groups) == 1
        assert plan.memory_count == 5

    def test_power_budget_splits(self):
        memories = [spec(f"m{i}", 64, power=2.0) for i in range(6)]
        plan = plan_bist(memories, MARCH_C_MINUS, power_budget=5.0)
        assert len(plan.groups) >= 3
        for group in plan.groups:
            assert group.power <= 5.0

    def test_grouped_never_slower_than_serial(self):
        memories = build_dsc_memories()
        plan = plan_bist(memories, MARCH_C_MINUS, power_budget=6.0)
        assert plan.total_cycles <= plan.serial_cycles

    def test_group_time_is_max_member(self):
        memories = [spec("a", 1024), spec("b", 64)]
        plan = plan_bist(memories, MARCH_C_MINUS)
        assert plan.total_cycles == march_cycles(MARCH_C_MINUS, 1024)

    def test_oversized_memory_raises(self):
        with pytest.raises(ValueError, match="exceeds the power budget"):
            plan_bist([spec("big", 64, power=9.0)], MARCH_C_MINUS, power_budget=5.0)

    def test_max_groups_respected(self):
        memories = [spec(f"m{i}", 64, power=2.0) for i in range(6)]
        plan = plan_bist(memories, MARCH_C_MINUS, power_budget=0.0, max_groups=2)
        assert len(plan.groups) <= 2

    def test_tasks_share_engine_mutex(self):
        memories = [spec(f"m{i}", 64, power=2.0) for i in range(4)]
        plan = plan_bist(memories, MARCH_C_MINUS, power_budget=3.0)
        tasks = plan.to_tasks()
        assert len(tasks) == len(plan.groups)
        assert all(t.core_name == "MBIST" for t in tasks)
        assert all(t.uses_bist_port for t in tasks)

    def test_render(self):
        plan = plan_bist([spec("a", 64)], MARCH_C_MINUS)
        assert "speedup" in plan.render()

    @settings(max_examples=25, deadline=None)
    @given(
        powers=st.lists(st.floats(0.5, 3.0), min_size=1, max_size=10),
        budget=st.floats(3.0, 8.0),
    )
    def test_property_grouping_sound(self, powers, budget):
        memories = [spec(f"m{i}", 32, power=p) for i, p in enumerate(powers)]
        plan = plan_bist(memories, MARCH_C_MINUS, power_budget=budget)
        assert plan.memory_count == len(memories)
        names = sorted(m.name for g in plan.groups for m in g.memories)
        assert names == sorted(m.name for m in memories)
        for group in plan.groups:
            assert group.power <= budget + 1e-9


class TestBrainsCompiler:
    @pytest.fixture(scope="class")
    def engine(self):
        return Brains().compile(
            build_dsc_memories(), BrainsConfig(march=MARCH_C_MINUS, power_budget=6.0)
        )

    def test_tpg_per_memory(self, engine):
        assert len(engine.tpg_modules) == 22

    def test_netlist_modules_validate(self, engine):
        assert engine.controller_module.validate(engine.netlist) == []
        for module in engine.sequencer_modules:
            assert module.validate(engine.netlist) == []

    def test_total_area_positive(self, engine):
        assert engine.total_area > 1000

    def test_fault_free_run_passes(self, engine):
        result = engine.run(model_words=64)
        assert result.all_pass
        assert len(result.results) == 22

    def test_fault_localized(self, engine):
        result = engine.run(faults={"cpu_d0": StuckAtFault(3, 0)}, model_words=64)
        assert result.failing == ["cpu_d0"]

    def test_reported_cycles_are_true_size(self, engine):
        result = engine.run(model_words=16)
        byname = {r.memory_name: r for r in result.results}
        fb0 = next(s for s in engine.specs if s.name == "fb0")
        assert byname["fb0"].cycles == march_cycles(MARCH_C_MINUS, fb0.words)

    def test_tables_render(self, engine):
        assert "BIST controller" in engine.area_table().render()
        assert "fb0" in engine.time_table().render()

    def test_empty_memories_rejected(self):
        with pytest.raises(ValueError):
            Brains().compile([])

    def test_multiple_sequencers(self):
        engine = Brains().compile(
            [spec("a", 64), spec("b", 64)],
            BrainsConfig(march=MATS_PLUS, sequencers=2),
        )
        assert len(engine.sequencer_modules) == 2


class TestWordOrientedCompile:
    def test_word_oriented_multiplies_cycles(self):
        from repro.bist.scheduling import memory_test_cycles
        from repro.bist import standard_backgrounds

        m = spec("m", words=256, bits=16)
        bit_cycles = memory_test_cycles(MARCH_C_MINUS, m, word_oriented=False)
        word_cycles = memory_test_cycles(MARCH_C_MINUS, m, word_oriented=True)
        assert word_cycles == bit_cycles * len(standard_backgrounds(16))

    def test_word_oriented_engine(self):
        memories = [spec("a", 64, 8), spec("b", 64, 32)]
        bit_engine = Brains().compile(memories, BrainsConfig(march=MARCH_C_MINUS))
        word_engine = Brains().compile(
            memories, BrainsConfig(march=MARCH_C_MINUS, word_oriented=True)
        )
        assert word_engine.total_cycles > bit_engine.total_cycles
        # 32-bit words need 6 backgrounds, 8-bit need 4
        assert word_engine.memory_cycles(memories[1]) == 6 * bit_engine.memory_cycles(memories[1])
        assert word_engine.memory_cycles(memories[0]) == 4 * bit_engine.memory_cycles(memories[0])

    def test_word_oriented_tasks_reflect_cost(self):
        memories = [spec("a", 64, 8, power=1.0)]
        plan_bit = Brains().compile(memories, BrainsConfig(march=MARCH_C_MINUS)).plan
        plan_word = Brains().compile(
            memories, BrainsConfig(march=MARCH_C_MINUS, word_oriented=True)
        ).plan
        assert plan_word.to_tasks()[0].fixed_time > plan_bit.to_tasks()[0].fixed_time
