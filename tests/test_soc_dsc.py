"""The DSC chip model must reproduce every published number in Table 1
and the Section 3 control-IO accounting."""

import pytest

from repro.soc import SignalKind, TestKind
from repro.soc.dsc import build_dsc_chip, table1


@pytest.fixture(scope="module")
def dsc():
    return build_dsc_chip()


class TestTable1:
    """Paper Table 1, reproduced exactly."""

    def test_usb_io_counts(self, dsc):
        c = dsc.core("USB").counts
        assert (c.ti, c.to, c.pi, c.po) == (18, 4, 221, 104)

    def test_tv_io_counts(self, dsc):
        c = dsc.core("TV").counts
        assert (c.ti, c.to, c.pi, c.po) == (6, 1, 25, 40)

    def test_jpeg_io_counts(self, dsc):
        c = dsc.core("JPEG").counts
        assert (c.ti, c.to, c.pi, c.po) == (1, 0, 165, 104)

    def test_usb_scan_chains(self, dsc):
        assert dsc.core("USB").chain_lengths == [1629, 78, 293, 45]

    def test_tv_scan_chains(self, dsc):
        assert dsc.core("TV").chain_lengths == [577, 576]

    def test_jpeg_no_scan(self, dsc):
        assert not dsc.core("JPEG").has_scan

    def test_pattern_counts(self, dsc):
        assert dsc.core("USB").scan_patterns == 716
        assert dsc.core("TV").scan_patterns == 229
        assert dsc.core("TV").functional_patterns == 202_673
        assert dsc.core("JPEG").functional_patterns == 235_696

    def test_table_renders_all_three_cores(self, dsc):
        text = table1(dsc).render()
        for token in ("USB", "TV", "JPEG", "1629", "577", "202,673", "235,696"):
            assert token in text


class TestControlIos:
    """Section 3: 'total test IOs of the three large cores are 19,
    including 6 clock signals, 4 reset signals, 7 test enable signals,
    and 2 SE signals'."""

    def test_total_is_19(self, dsc):
        assert dsc.raw_control_ios == 19

    def test_class_breakdown(self, dsc):
        needs = [dsc.core(n).control_needs for n in ("USB", "TV", "JPEG")]
        total = needs[0] + needs[1] + needs[2]
        assert total.clocks == 6
        assert total.resets == 4
        assert total.test_enables == 7
        assert total.scan_enables == 2

    def test_usb_clock_domains(self, dsc):
        usb = dsc.core("USB")
        assert len(usb.clock_domains) == 4
        assert len(usb.ports_of_kind(SignalKind.CLOCK)) == 4

    def test_tv_shared_scan_output(self, dsc):
        tv = dsc.core("TV")
        shared = [c for c in tv.scan_chains if c.shares_functional_output]
        assert len(shared) == 1
        # the shared chain's scan-out is a functional port
        assert tv.port(shared[0].scan_out).kind is SignalKind.FUNCTIONAL


class TestChipLevel:
    def test_tens_of_memories(self, dsc):
        assert 20 <= len(dsc.memories) <= 30

    def test_memory_mix(self, dsc):
        types = {m.mem_type.value for m in dsc.memories}
        assert types == {"SP", "TP"}

    def test_wrapped_cores(self, dsc):
        assert sorted(c.name for c in dsc.wrapped_cores) == ["JPEG", "TV", "USB"]

    def test_unwrapped_cores_present(self, dsc):
        assert not dsc.core("CPU").wrapped
        assert not dsc.core("EMI").wrapped

    def test_gate_count_scale(self, dsc):
        # the 0.3% overhead figure implies a chip of roughly 170k gates
        assert 120_000 <= dsc.total_gates <= 250_000

    def test_bist_memories_have_power(self, dsc):
        assert all(m.power > 0 for m in dsc.memories)

    def test_test_kinds_present(self, dsc):
        kinds = {t.kind for c in dsc.cores for t in c.tests}
        assert TestKind.SCAN in kinds and TestKind.FUNCTIONAL in kinds
