"""Tests for the ITC'02 benchmark parser and the embedded d695 instance."""

import pytest

from repro.soc.itc02 import (
    Itc02Module,
    d695_modules,
    d695_soc,
    d695_soc_text,
    module_to_core,
    parse_soc_file,
)


class TestParser:
    def test_parse_simple_module(self):
        mods = parse_soc_file("Module m1 Inputs 3 Outputs 2 Bidirs 0 Patterns 7\n")
        assert mods == [Itc02Module("m1", 3, 2, 0, (), 7)]

    def test_parse_scan_chains(self):
        mods = parse_soc_file("Module m Inputs 1 Outputs 1 Bidirs 0 ScanChains 2 10 20 Patterns 5")
        assert mods[0].scan_chain_lengths == (10, 20)
        assert mods[0].scan_flops == 30

    def test_comments_and_blank_lines(self):
        text = "# comment\nSocName x\n\nModule m Inputs 1 Outputs 1 Bidirs 0 Patterns 1\n"
        assert len(parse_soc_file(text)) == 1

    def test_bad_directive_raises(self):
        with pytest.raises(ValueError):
            parse_soc_file("Banana m1\n")

    def test_truncated_scanchains_raises(self):
        with pytest.raises((ValueError, IndexError)):
            parse_soc_file("Module m Inputs 1 Outputs 1 Bidirs 0 ScanChains 3 10 20 Patterns 5")

    def test_round_trip_d695(self):
        text = d695_soc_text()
        assert parse_soc_file(text) == d695_modules()


class TestD695:
    def test_ten_cores(self):
        assert len(d695_modules()) == 10

    def test_combinational_cores_have_no_scan(self):
        byname = {m.name: m for m in d695_modules()}
        assert byname["c6288"].scan_chain_lengths == ()
        assert byname["c7552"].scan_chain_lengths == ()

    def test_flop_totals(self):
        byname = {m.name: m for m in d695_modules()}
        assert byname["s38417"].scan_flops == 1636
        assert byname["s35932"].scan_flops == 1728
        assert byname["s13207"].scan_flops == 638

    def test_chain_lengths_balanced(self):
        for m in d695_modules():
            if m.scan_chain_lengths:
                assert max(m.scan_chain_lengths) - min(m.scan_chain_lengths) <= 1

    def test_soc_build(self):
        soc = d695_soc(test_pins=64)
        assert len(soc.cores) == 10
        assert soc.test_pins == 64
        assert all(c.wrapped for c in soc.cores)


class TestModuleToCore:
    def test_scan_module_gets_control_ports(self):
        m = Itc02Module("m", 2, 2, 0, (10, 10), 5)
        core = module_to_core(m)
        needs = core.control_needs
        assert needs.clocks == 1 and needs.resets == 1 and needs.scan_enables == 1
        assert core.scan_flops == 20

    def test_combinational_module_minimal_controls(self):
        m = Itc02Module("m", 2, 2, 0, (), 5)
        core = module_to_core(m)
        assert core.control_needs.total == 1  # clock only
        assert not core.has_scan

    def test_io_counts_preserved(self):
        m = Itc02Module("m", 7, 3, 2, (), 5)
        c = module_to_core(m).counts
        assert c.pi == 7 + 2 and c.po == 3 + 2

    def test_tests_kind(self):
        scan_core = module_to_core(Itc02Module("a", 1, 1, 0, (5,), 3))
        func_core = module_to_core(Itc02Module("b", 1, 1, 0, (), 3))
        assert scan_core.tests[0].is_scan
        assert func_core.tests[0].is_functional
