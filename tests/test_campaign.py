"""Tests for resumable checkpointed fuzz campaigns
(:mod:`repro.gen.campaign`) and the greedy failure shrinker
(:mod:`repro.gen.shrink`)."""

import copy
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.gen.campaign import (
    CAMPAIGN_REPORT_SCHEMA,
    Campaign,
    CampaignConfig,
    CampaignInterrupted,
    campaign_status,
    load_repro,
    replay_repro,
    resume_campaign,
    run_campaign,
)
from repro.gen.generator import SocGenerator
from repro.gen.shrink import (
    ViolationSignature,
    _candidate_ops,
    apply_ops,
    scenario_signatures,
    shrink_scenario,
    shrink_soc,
)
from repro.obs import JobProgress
from repro.sched import SharingPolicy
from repro.sched.registry import _REGISTRY, register_scheduler
from repro.sched.session import schedule_serial

ROOT = Path(__file__).resolve().parent.parent


def _strip_runtime(report: dict) -> dict:
    """A campaign report minus the one section resume history changes."""
    out = dict(report)
    out.pop("runtime")
    return out


@pytest.fixture
def broken_strategy():
    """A plugin strategy that crashes unconditionally — every scenario
    yields the same (strategy, crashed, RuntimeError) signature, and the
    shrinker collapses every seed's chip to the same minimal repro."""

    @register_scheduler("broken")
    def broken(soc, tasks, *, n_sessions=None, policy=None):
        raise RuntimeError("deliberate crash")

    yield "broken"
    _REGISTRY.pop("broken", None)


@pytest.fixture
def lossy_strategy():
    """A plugin strategy that silently drops every task but the first —
    the verifier's task-coverage rule fires on any chip with >= 2 tasks."""

    @register_scheduler("lossy")
    def lossy(soc, tasks, *, n_sessions=None, policy=None):
        return schedule_serial(soc, tasks[:1], policy=policy or SharingPolicy())

    yield "lossy"
    _REGISTRY.pop("lossy", None)


class TestCampaignLifecycle:
    def test_clean_run_report_shape(self, tmp_path):
        report = run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                              chunk_size=2, strategies=["serial"],
                              backend="serial")
        assert report["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert report["ok"] is True and report["complete"] is True
        assert report["scenarios"] == 4
        assert report["violation_count"] == 0 and report["findings"] == []
        assert report["runtime"]["resumes"] == 0
        d = tmp_path / "c"
        assert (d / "campaign.json").exists()
        assert (d / "checkpoint.json").exists()
        assert (d / "report.json").exists()
        lines = (d / "scenarios.jsonl").read_text().splitlines()
        assert len(lines) == 4
        assert all(json.loads(line)["seed"] == seed
                   for seed, line in enumerate(lines))

    def test_refuses_existing_campaign_dir(self, tmp_path):
        run_campaign(tmp_path / "c", seeds=1, strategies=["serial"],
                     backend="serial")
        with pytest.raises(FileExistsError):
            run_campaign(tmp_path / "c", seeds=1, strategies=["serial"],
                         backend="serial")

    def test_open_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Campaign.open(tmp_path / "nothing")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(seeds=0)
        with pytest.raises(ValueError):
            CampaignConfig(chunk_size=0)

    def test_status_snapshot(self, tmp_path):
        with pytest.raises(CampaignInterrupted):
            Campaign.create(
                tmp_path / "c",
                CampaignConfig(profile="tiny", seeds=4, chunk_size=2,
                               strategies=("serial",), backend="serial"),
            ).run(max_chunks=1)
        doc = campaign_status(tmp_path / "c")
        assert doc["complete"] is False
        assert doc["done"] == 2 and doc["total"] == 4
        assert doc["resumes"] == 0


class TestResume:
    def test_max_chunks_pause_then_resume_matches_clean_run(self, tmp_path):
        """The deterministic interrupt: a campaign paused at a chunk
        barrier and resumed must emit the clean run's report and
        scenario log bit-for-bit (modulo the runtime section)."""
        clean = run_campaign(tmp_path / "clean", profile="tiny", seeds=6,
                             chunk_size=2, strategies=["serial", "session"],
                             backend="serial")
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "paused", profile="tiny", seeds=6,
                         chunk_size=2, strategies=["serial", "session"],
                         backend="serial", max_chunks=1)
        resumed = resume_campaign(tmp_path / "paused")
        assert _strip_runtime(resumed) == _strip_runtime(clean)
        assert resumed["runtime"]["resumes"] == 1
        assert ((tmp_path / "paused" / "scenarios.jsonl").read_text()
                == (tmp_path / "clean" / "scenarios.jsonl").read_text())

    def test_sigkill_mid_run_then_resume_matches_clean_run(self, tmp_path):
        """The real interrupt: ``kill -9`` mid-chunk loses at most the
        in-flight chunk; resume truncates the half-written log and the
        final report equals an uninterrupted run's (timing excluded)."""
        clean = run_campaign(tmp_path / "clean", profile="tiny", seeds=8,
                             chunk_size=1, strategies=["serial"],
                             backend="serial")
        victim = tmp_path / "victim"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run", str(victim),
             "--profile", "tiny", "--seeds", "8", "--chunk-size", "1",
             "--strategies", "serial", "--backend", "serial"],
            env=env, cwd=ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            killed = False
            checkpoint = victim / "checkpoint.json"
            while proc.poll() is None and time.monotonic() < deadline:
                cursor = 0
                if checkpoint.exists():
                    try:
                        cursor = json.loads(checkpoint.read_text())["cursor"]
                    except (json.JSONDecodeError, KeyError):
                        cursor = 0  # mid-replace; retry
                if 0 < cursor < 8:
                    proc.send_signal(signal.SIGKILL)
                    killed = True
                    break
                time.sleep(0.01)
        finally:
            proc.wait(timeout=60)
        # if the subprocess outran the poller the campaign completed and
        # resume is a no-op — the equality below still must hold, but
        # record the intent
        if killed:
            assert not Campaign.open(victim).complete
        resumed = resume_campaign(victim)
        assert _strip_runtime(resumed) == _strip_runtime(clean)
        assert ((victim / "scenarios.jsonl").read_text()
                == (tmp_path / "clean" / "scenarios.jsonl").read_text())

    def test_resume_truncates_half_written_log_lines(self, tmp_path):
        """A crash can leave the scenario log with lines past the
        checkpoint cursor (even a torn partial line); resume drops them
        before re-running so the finished log never duplicates."""
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                         chunk_size=2, strategies=["serial"],
                         backend="serial", max_chunks=1)
        with open(tmp_path / "c" / "scenarios.jsonl", "a") as handle:
            handle.write('{"seed": 2, "torn": true}\n{"seed": 3, "ha')
        report = resume_campaign(tmp_path / "c")
        lines = (tmp_path / "c" / "scenarios.jsonl").read_text().splitlines()
        assert len(lines) == 4
        assert [json.loads(line)["seed"] for line in lines] == [0, 1, 2, 3]
        assert "torn" not in lines[2]
        assert report["scenarios"] == 4

    def test_resume_refuses_log_shorter_than_cursor(self, tmp_path):
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                         chunk_size=2, strategies=["serial"],
                         backend="serial", max_chunks=1)
        (tmp_path / "c" / "scenarios.jsonl").write_text("")
        with pytest.raises(ValueError, match="fewer complete lines"):
            resume_campaign(tmp_path / "c")

    def test_resume_of_complete_campaign_is_noop(self, tmp_path):
        first = run_campaign(tmp_path / "c", profile="tiny", seeds=2,
                             strategies=["serial"], backend="serial")
        again = resume_campaign(tmp_path / "c")
        assert _strip_runtime(again) == _strip_runtime(first)
        assert again["runtime"]["resumes"] == 0

    def test_interrupt_mid_chunk_keeps_barrier_checkpoint(self, tmp_path,
                                                          broken_strategy):
        """A Ctrl-C landing *inside* chunk absorption (shrinking runs in
        the main process) must not persist partially-absorbed state: the
        on-disk checkpoint stays at the last barrier, and resume matches
        a clean run with no double-counting."""
        strategies = ("serial", broken_strategy)
        clean = run_campaign(tmp_path / "clean", profile="tiny", seeds=4,
                             chunk_size=2, strategies=list(strategies),
                             backend="serial")
        campaign = Campaign.create(
            tmp_path / "c",
            CampaignConfig(profile="tiny", seeds=4, chunk_size=2,
                           strategies=strategies, backend="serial"),
        )
        real_absorb = campaign._absorb
        absorbed = []

        def absorb_then_interrupt(*args, **kwargs):
            real_absorb(*args, **kwargs)
            absorbed.append(None)
            if len(absorbed) == 3:  # first scenario of the second chunk
                raise KeyboardInterrupt

        campaign._absorb = absorb_then_interrupt
        with pytest.raises(KeyboardInterrupt):
            campaign.run()
        # the interrupt handler re-checkpoints, but only barrier state:
        # chunk 2's partially absorbed duplicate must not be on disk
        checkpoint = json.loads(
            (tmp_path / "c" / "checkpoint.json").read_text()
        )
        assert checkpoint["cursor"] == 2
        assert checkpoint["duplicates"] == 1
        resumed = resume_campaign(tmp_path / "c")
        assert _strip_runtime(resumed) == _strip_runtime(clean)
        assert resumed["duplicates"] == 3

    def test_resume_refuses_edited_definition(self, tmp_path):
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                         chunk_size=2, strategies=["serial"],
                         backend="serial", max_chunks=1)
        config_path = tmp_path / "c" / "campaign.json"
        doc = json.loads(config_path.read_text())
        doc["seeds"] = 400
        config_path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="definition changed"):
            resume_campaign(tmp_path / "c")

    def test_resume_refuses_foreign_checkpoint_schema(self, tmp_path):
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                         chunk_size=2, strategies=["serial"],
                         backend="serial", max_chunks=1)
        checkpoint_path = tmp_path / "c" / "checkpoint.json"
        doc = json.loads(checkpoint_path.read_text())
        doc["schema"] = "someone/elses/v9"
        checkpoint_path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="checkpoint schema"):
            resume_campaign(tmp_path / "c")

    def test_resume_refuses_cursor_beyond_seeds(self, tmp_path):
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                         chunk_size=2, strategies=["serial"],
                         backend="serial", max_chunks=1)
        checkpoint_path = tmp_path / "c" / "checkpoint.json"
        doc = json.loads(checkpoint_path.read_text())
        doc["cursor"] = 99
        checkpoint_path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="exceeds"):
            resume_campaign(tmp_path / "c")

    def test_progress_totals_grow_across_resumes(self, tmp_path):
        """A resumed campaign's JobProgress must credit checkpointed
        work: done/total spans the whole campaign, not one process."""
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                         chunk_size=2, strategies=["serial"],
                         backend="serial", max_chunks=1)
        progress = JobProgress()
        resume_campaign(tmp_path / "c", progress=progress)
        snap = progress.snapshot()
        assert snap["total"] == 4 and snap["done"] == 4


class TestFindings:
    def test_dedupe_across_seeds(self, tmp_path, broken_strategy):
        """The same defect on every seed is one finding plus duplicates:
        the shrinker collapses each chip to the same canonical repro."""
        report = run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                              chunk_size=2,
                              strategies=["serial", broken_strategy],
                              backend="serial")
        assert report["ok"] is False
        assert len(report["findings"]) == 1
        assert report["duplicates"] == 3
        finding = report["findings"][0]
        assert finding["strategy"] == broken_strategy
        assert finding["rule"] == "RuntimeError"
        assert finding["signature"]["kind"] == "crashed"

    def test_dedupe_survives_resume(self, tmp_path, broken_strategy):
        """The ``seen`` key set rides in the checkpoint: a duplicate
        surfacing after a resume must not re-emit the finding."""
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "c", profile="tiny", seeds=4,
                         chunk_size=2,
                         strategies=["serial", broken_strategy],
                         backend="serial", max_chunks=1)
        paused = campaign_status(tmp_path / "c")
        assert paused["findings"] == 1 and paused["duplicates"] == 1
        report = resume_campaign(tmp_path / "c")
        assert len(report["findings"]) == 1
        assert report["duplicates"] == 3
        repro_files = sorted((tmp_path / "c" / "findings").iterdir())
        assert len(repro_files) == 1

    def test_interrupted_and_clean_findings_match(self, tmp_path,
                                                  broken_strategy):
        clean = run_campaign(tmp_path / "clean", profile="tiny", seeds=4,
                             chunk_size=2,
                             strategies=["serial", broken_strategy],
                             backend="serial")
        with pytest.raises(CampaignInterrupted):
            run_campaign(tmp_path / "paused", profile="tiny", seeds=4,
                         chunk_size=2,
                         strategies=["serial", broken_strategy],
                         backend="serial", max_chunks=1)
        resumed = resume_campaign(tmp_path / "paused")
        assert _strip_runtime(resumed) == _strip_runtime(clean)

    def test_repro_file_replays_standalone(self, tmp_path, broken_strategy):
        """The emitted ``.soc`` must reproduce its violation from the
        file alone — regenerate, re-apply ops, re-fire the signature."""
        report = run_campaign(tmp_path / "c", profile="tiny", seeds=2,
                              strategies=["serial", broken_strategy],
                              backend="serial")
        finding = report["findings"][0]
        path = tmp_path / "c" / finding["file"]
        assert path.exists()
        doc = load_repro(path)
        assert doc["schema"] == "repro/repro-soc/v1"
        assert doc["signature"] == finding["signature"]
        result = replay_repro(path)
        assert result["fires"] is True
        assert result["digest"] == finding["digest"]

    def test_repro_body_is_parseable_soc(self, tmp_path, lossy_strategy):
        """Below the ``# repro:`` header rides a plain ITC'02 body any
        ``.soc`` consumer can parse (comments are stripped)."""
        from repro.soc.itc02 import soc_from_text

        report = run_campaign(tmp_path / "c", profile="tiny", seeds=2,
                              strategies=[lossy_strategy], backend="serial")
        assert report["findings"], "lossy strategy must surface a finding"
        path = tmp_path / "c" / report["findings"][0]["file"]
        soc = soc_from_text(path.read_text())
        assert soc.name == "repro"
        assert soc.cores

    def test_load_repro_rejects_plain_soc(self, tmp_path):
        plain = tmp_path / "plain.soc"
        plain.write_text("SocName nothing\n")
        with pytest.raises(ValueError, match="repro"):
            load_repro(plain)


class TestShrinker:
    def test_shrink_is_one_minimal(self):
        """After shrinking, removing any single remaining element must
        un-reproduce the failure — the 1-minimality guarantee."""
        soc = SocGenerator(7, "small").generate()
        assert len(soc.cores) >= 3

        def keeps_c2(chip):
            return any(core.name == "c2" for core in chip.cores)

        minimized, ops = shrink_soc(soc, keeps_c2)
        assert [core.name for core in minimized.cores] == ["c2"]
        assert ops, "shrinking a 4-core chip must accept cuts"
        for op in _candidate_ops(minimized):
            mutant = copy.deepcopy(minimized)
            from repro.gen.shrink import apply_op
            apply_op(mutant, op)
            assert not keeps_c2(mutant), f"cut {op} should un-reproduce"

    def test_shrink_rejects_non_failure(self):
        soc = SocGenerator(1, "tiny").generate()
        with pytest.raises(ValueError, match="does not fail"):
            shrink_soc(soc, lambda chip: False)

    def test_ops_replay_to_identical_chip(self):
        """The accepted op list is the deterministic inverse: replaying
        it on a fresh copy of the origin chip rebuilds the minimized
        chip digest-for-digest."""
        soc = SocGenerator(7, "small").generate()
        minimized, ops = shrink_soc(
            soc, lambda chip: any(c.name == "c1" for c in chip.cores)
        )
        replayed = apply_ops(SocGenerator(7, "small").generate(), ops)
        assert replayed.digest() == minimized.digest()

    def test_signature_driven_shrink_preserves_rule(self, lossy_strategy):
        """A cut that keeps *a* failure but changes its rule must be
        rejected: minimality statements stay about the original finding."""
        from repro.core import CompileBist, FlowContext, SteacConfig
        from repro.sched import resolve_schedule
        from repro.verify import verify_schedule

        soc = SocGenerator(5, "small").generate()
        ctx = FlowContext(soc=soc, config=SteacConfig(compare_strategies=False))
        CompileBist().run(ctx)
        result = resolve_schedule(lossy_strategy, soc, ctx.tasks)
        report = verify_schedule(soc, result, tasks=ctx.tasks)
        assert report.errors, "lossy scheduling must violate an invariant"
        rule = report.errors[0].rule
        sig = ViolationSignature(lossy_strategy, "verify", rule)
        minimized, _ = shrink_scenario(soc, sig, ilp_max_tasks=6)
        # the minimal chip still fires exactly that rule
        from repro.gen.shrink import signature_fires

        assert signature_fires(minimized, sig, 6)
        # and is strictly smaller than the original
        assert len(minimized.cores) < len(soc.cores)

    def test_scenario_signatures_severity_split(self):
        """Only error-severity violations become signatures — warnings
        are counted, never shrunk (the v1 report bug this PR fixes)."""
        doc = {
            "roundtrip_errors": [],
            "strategies": {
                "warny": {"ok": True, "errors": [],
                          "warnings": [{"rule": "soft-limit"}]},
                "bad": {"ok": False,
                        "errors": [{"rule": "task-coverage"},
                                   {"rule": "task-coverage"}],
                        "warnings": []},
                "dead": {"crashed": "ValueError: boom"},
            },
        }
        sigs = scenario_signatures(doc)
        assert sigs == [
            ViolationSignature("bad", "verify", "task-coverage"),
            ViolationSignature("dead", "crashed", "ValueError"),
        ]


class TestCampaignCli:
    def test_run_status_resume_replay(self, tmp_path, capsys,
                                      broken_strategy):
        d = str(tmp_path / "c")
        base = ["campaign", "run", d, "--profile", "tiny", "--seeds", "4",
                "--chunk-size", "2", "--strategies", "serial",
                broken_strategy, "--backend", "serial"]
        assert main(base + ["--max-chunks", "1"]) == 3
        err = capsys.readouterr().err
        assert "resume" in err and "2/4" in err

        assert main(["campaign", "status", d]) == 0
        assert "in progress" in capsys.readouterr().out

        assert main(["campaign", "resume", d, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == CAMPAIGN_REPORT_SCHEMA
        assert report["complete"] is True and report["ok"] is False
        assert report["runtime"]["resumes"] == 1

        assert main(["campaign", "status", d, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["complete"] is True and status["findings"] == 1

        repro_file = str(tmp_path / "c" / report["findings"][0]["file"])
        assert main(["campaign", "replay", repro_file]) == 0
        assert "fires" in capsys.readouterr().out

    def test_clean_run_exit_zero(self, tmp_path, capsys):
        assert main(["campaign", "run", str(tmp_path / "c"), "--profile",
                     "tiny", "--seeds", "2", "--strategies", "serial",
                     "--backend", "serial"]) == 0
        out = capsys.readouterr().out
        assert "verdict: clean" in out

    def test_run_refuses_existing_dir(self, tmp_path):
        d = str(tmp_path / "c")
        args = ["campaign", "run", d, "--seeds", "1", "--strategies",
                "serial", "--backend", "serial"]
        assert main(args) == 0
        with pytest.raises(SystemExit):
            main(args)

    def test_resume_missing_dir_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["campaign", "resume", str(tmp_path / "nothing")])

    def test_status_missing_dir_rejected(self, tmp_path):
        """Expected errors surface as SystemExit messages, not raw
        tracebacks — for status like for run/resume."""
        with pytest.raises(SystemExit):
            main(["campaign", "status", str(tmp_path / "nothing")])

    def test_replay_non_repro_file_rejected(self, tmp_path):
        plain = tmp_path / "plain.soc"
        plain.write_text("SocName nothing\n")
        with pytest.raises(SystemExit):
            main(["campaign", "replay", str(plain)])
        with pytest.raises(SystemExit):
            main(["campaign", "replay", str(tmp_path / "missing.soc")])

    def test_replay_non_firing_repro_exits_one(self, tmp_path, capsys,
                                               broken_strategy):
        """A repro whose violation no longer fires (here: the plugin
        strategy is gone in a fresh process) exits 1 — replay is a
        regression check, not a pretty-printer."""
        assert main(["campaign", "run", str(tmp_path / "c"), "--profile",
                     "tiny", "--seeds", "1", "--strategies", "serial",
                     broken_strategy, "--backend", "serial"]) == 1
        report = json.loads((tmp_path / "c" / "report.json").read_text())
        repro_file = str(tmp_path / "c" / report["findings"][0]["file"])
        _REGISTRY.pop(broken_strategy)
        try:
            assert main(["campaign", "replay", repro_file]) == 1
            assert "DOES NOT FIRE" in capsys.readouterr().out
        finally:
            # the fixture pops again harmlessly
            pass
        capsys.readouterr()

    def test_keyboard_interrupt_exits_130(self, tmp_path, capsys,
                                          monkeypatch):
        """Ctrl-C anywhere in a command exits 130 cleanly (no traceback
        dump) — satellite 3 of this PR."""
        import repro.gen.campaign as campaign_mod

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(campaign_mod, "run_campaign", interrupt)
        assert main(["campaign", "run", str(tmp_path / "c"), "--seeds",
                     "1"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_keyboard_interrupt_checkpoints_before_reraise(self, tmp_path,
                                                           monkeypatch):
        """Campaign.run must re-persist the checkpoint on the way out of
        a KeyboardInterrupt so the directory is always resumable."""
        campaign = Campaign.create(
            tmp_path / "c",
            CampaignConfig(profile="tiny", seeds=4, chunk_size=2,
                           strategies=("serial",), backend="serial"),
        )
        (tmp_path / "c" / "checkpoint.json").unlink()

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(campaign, "_chunk_loop", interrupt)
        with pytest.raises(KeyboardInterrupt):
            campaign.run()
        assert (tmp_path / "c" / "checkpoint.json").exists()
        resumed = resume_campaign(tmp_path / "c")
        assert resumed["complete"] is True and resumed["scenarios"] == 4
