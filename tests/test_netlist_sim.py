"""Tests for the 3-valued logic simulator."""

import pytest
from hypothesis import given, strategies as st

from repro.netlist import HIGH, LOW, X, CombLoopError, Module, Simulator


def make_comb() -> Module:
    # y = (a NAND b) XOR c
    m = Module("comb")
    for p in ("a", "b", "c"):
        m.add_input(p)
    m.add_output("y")
    m.add_instance("u0", "NAND2", A="a", B="b", Y="n0")
    m.add_instance("u1", "XOR2", A="n0", B="c", Y="y")
    return m


class TestCombinational:
    def test_truth_table(self):
        sim = Simulator(make_comb())
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    sim.set_inputs({"a": a, "b": b, "c": c})
                    sim.evaluate()
                    expected = (1 - (a & b)) ^ c
                    assert sim.get("y") == expected

    def test_x_propagation(self):
        sim = Simulator(make_comb())
        sim.set_inputs({"a": X, "b": HIGH, "c": LOW})
        sim.evaluate()
        assert sim.get("y") == X

    def test_x_blocked_by_controlling_value(self):
        sim = Simulator(make_comb())
        # a=0 forces NAND output to 1 regardless of b
        sim.set_inputs({"a": LOW, "b": X, "c": LOW})
        sim.evaluate()
        assert sim.get("y") == HIGH

    def test_unknown_net_raises(self):
        sim = Simulator(make_comb())
        with pytest.raises(KeyError):
            sim.poke("zz", 1)
        with pytest.raises(KeyError):
            sim.get("zz")

    def test_bad_value_raises(self):
        sim = Simulator(make_comb())
        with pytest.raises(ValueError):
            sim.poke("a", 7)

    def test_comb_loop_detected(self):
        m = Module("loop")
        m.add_input("a")
        m.add_output("y")
        m.add_instance("u0", "NAND2", A="a", B="q", Y="n")
        m.add_instance("u1", "INV", A="n", Y="q")
        m.add_instance("u2", "BUF", A="q", Y="y")
        with pytest.raises(CombLoopError):
            Simulator(m)

    def test_blackbox_rejected(self):
        m = Module("bb")
        m.add_input("a")
        m.add_output("y")
        m.add_instance("u0", "MYSTERY", A="a", Y="y")
        with pytest.raises(ValueError, match="non-library"):
            Simulator(m)

    def test_tie_cells(self):
        m = Module("ties")
        m.add_output("y")
        m.add_instance("u0", "TIE1", Y="one")
        m.add_instance("u1", "TIE0", Y="zero")
        m.add_instance("u2", "AND2", A="one", B="zero", Y="y")
        sim = Simulator(m)
        sim.evaluate()
        assert sim.get("y") == LOW


def make_shift_register(n: int = 4) -> Module:
    m = Module("shreg")
    m.add_input("clk")
    m.add_input("si")
    m.add_output("so")
    prev = "si"
    for i in range(n):
        out = "so" if i == n - 1 else f"q{i}"
        m.add_instance(f"ff{i}", "DFF", D=prev, CK="clk", Q=out)
        prev = out
    return m


class TestSequential:
    def test_shift_register(self):
        sim = Simulator(make_shift_register(4))
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        out = sim.shift("clk", "si", bits, so_net="so")
        # after 4 cycles the first input bit appears at so
        assert out[4:] == bits[:4]

    def test_dffr_async_reset(self):
        m = Module("r")
        m.add_input("clk")
        m.add_input("rn")
        m.add_input("d")
        m.add_output("q")
        m.add_instance("ff", "DFFR", D="d", CK="clk", RN="rn", Q="q")
        sim = Simulator(m)
        sim.set_inputs({"rn": LOW, "d": HIGH, "clk": LOW})
        sim.evaluate()
        assert sim.get("q") == LOW  # async reset, no clock needed
        sim.poke("rn", HIGH)
        sim.clock("clk")
        assert sim.get("q") == HIGH

    def test_dffe_enable(self):
        m = Module("e")
        m.add_input("clk")
        m.add_input("en")
        m.add_input("d")
        m.add_output("q")
        m.add_instance("ff", "DFFE", D="d", CK="clk", E="en", Q="q")
        sim = Simulator(m)
        sim.set_inputs({"en": HIGH, "d": HIGH})
        sim.clock("clk")
        assert sim.get("q") == HIGH
        sim.set_inputs({"en": LOW, "d": LOW})
        sim.clock("clk")
        assert sim.get("q") == HIGH  # held

    def test_sdff_scan_mux(self):
        m = Module("s")
        m.add_input("clk")
        for p in ("d", "si", "se"):
            m.add_input(p)
        m.add_output("q")
        m.add_instance("ff", "SDFF", D="d", SI="si", SE="se", CK="clk", Q="q")
        sim = Simulator(m)
        sim.set_inputs({"d": LOW, "si": HIGH, "se": HIGH})
        sim.clock("clk")
        assert sim.get("q") == HIGH  # took scan input
        sim.set_inputs({"se": LOW})
        sim.clock("clk")
        assert sim.get("q") == LOW  # took functional input

    def test_latch_transparent_and_hold(self):
        m = Module("l")
        m.add_input("g")
        m.add_input("d")
        m.add_output("q")
        m.add_instance("lat", "DLATCH", D="d", G="g", Q="q")
        sim = Simulator(m)
        sim.set_inputs({"g": HIGH, "d": HIGH})
        sim.evaluate()
        assert sim.get("q") == HIGH
        sim.set_inputs({"g": LOW, "d": LOW})
        sim.evaluate()
        assert sim.get("q") == HIGH  # held

    def test_clock_only_affects_its_domain(self):
        m = Module("two_clk")
        m.add_input("clk_a")
        m.add_input("clk_b")
        m.add_input("d")
        m.add_output("qa")
        m.add_output("qb")
        m.add_instance("fa", "DFF", D="d", CK="clk_a", Q="qa")
        m.add_instance("fb", "DFF", D="d", CK="clk_b", Q="qb")
        sim = Simulator(m)
        sim.poke("d", HIGH)
        sim.clock("clk_a")
        assert sim.get("qa") == HIGH
        assert sim.get("qb") == X  # never clocked

    def test_reset_state(self):
        sim = Simulator(make_shift_register(2))
        sim.shift("clk", "si", [1, 1])
        sim.reset_state(LOW)
        sim.evaluate()
        assert sim.get("so") == LOW

    @given(st.lists(st.integers(0, 1), min_size=6, max_size=20))
    def test_property_shift_register_is_delay_line(self, bits):
        n = 3
        sim = Simulator(make_shift_register(n))
        out = sim.shift("clk", "si", bits, so_net="so")
        assert out[n:] == bits[: len(bits) - n]
