"""Tests for soft-core scan-chain rebalancing feedback (paper §2: the
scheduler 'will then rebalance scan chains for each assigned TAM width;
the results can be fed back to the SOC integrator')."""

from hypothesis import given, strategies as st

from repro.sched import (
    rebalance_advice,
    rebalance_report,
    schedule_sessions,
    tasks_from_soc,
)
from repro.soc import Core, CoreType, Direction, Port, ScanChain, SignalKind, Soc, scan_test


def soft_core(name="soft", lengths=(100, 50, 30)) -> Core:
    ports = [
        Port(f"{name}_clk", Direction.IN, SignalKind.CLOCK),
        Port(f"{name}_se", Direction.IN, SignalKind.SCAN_ENABLE),
    ]
    chains = []
    for i, length in enumerate(lengths):
        ports.append(Port(f"{name}_si{i}", Direction.IN, SignalKind.SCAN_IN))
        ports.append(Port(f"{name}_so{i}", Direction.OUT, SignalKind.SCAN_OUT))
        chains.append(ScanChain(f"{name}_c{i}", length, f"{name}_si{i}", f"{name}_so{i}"))
    return Core(
        name,
        core_type=CoreType.SOFT,
        ports=ports,
        scan_chains=chains,
        tests=[scan_test(20, name=f"{name}_scan")],
    )


class TestRebalanceAdvice:
    def test_basic(self):
        advice = rebalance_advice(soft_core(), width=4)
        assert advice.assigned_width == 4
        assert sum(advice.new_lengths) == 180
        assert advice.new_max == 45
        assert advice.old_max == 100

    def test_width_one_merges(self):
        advice = rebalance_advice(soft_core(), width=1)
        assert advice.new_lengths == (180,)

    @given(width=st.integers(1, 12))
    def test_property_rebalance_never_worse(self, width):
        """Rebalanced max length never exceeds the old max when width >=
        the original chain count."""
        core = soft_core()
        advice = rebalance_advice(core, width)
        assert sum(advice.new_lengths) == core.scan_flops
        if width >= len(core.scan_chains):
            assert advice.new_max <= advice.old_max


class TestRebalanceReport:
    def test_report_lists_soft_scanned_cores(self):
        soc = Soc("s", test_pins=24)
        soc.add_core(soft_core("alpha"))
        result = schedule_sessions(soc, tasks_from_soc(soc))
        text = rebalance_report(soc, result).render()
        assert "alpha" in text

    def test_hard_cores_excluded(self):
        soc = Soc("s", test_pins=24)
        core = soft_core("hardy")
        core.core_type = CoreType.HARD
        soc.add_core(core)
        result = schedule_sessions(soc, tasks_from_soc(soc))
        text = rebalance_report(soc, result).render()
        assert "hardy" not in text

    def test_rebalance_improves_test_time(self):
        """The point of the feedback: a soft core at width 4 tests faster
        after re-stitching than the same chains treated as fixed."""
        from repro.sched import core_scan_time

        soft = soft_core("x", lengths=(150, 20, 10))
        hard = soft_core("y", lengths=(150, 20, 10))
        hard.core_type = CoreType.HARD
        assert core_scan_time(soft, 4, patterns=10) < core_scan_time(hard, 4, patterns=10)
