"""Tests for the SOC data model (ports, scan, cores, memories, chips)."""

import pytest
from hypothesis import given, strategies as st

from repro.soc import (
    ClockDomain,
    ControlNeeds,
    Core,
    Direction,
    MemorySpec,
    MemoryType,
    Pll,
    Port,
    PortCounts,
    ScanChain,
    SignalKind,
    Soc,
    TestKind,
    functional_test,
    rebalance_lengths,
    scan_test,
    total_flops,
)


class TestPort:
    def test_basic_port(self):
        p = Port("clk", Direction.IN, SignalKind.CLOCK)
        assert p.is_input and not p.is_output
        assert p.kind.is_control and p.kind.is_test

    def test_functional_not_test(self):
        p = Port("d", Direction.IN)
        assert not p.kind.is_test and not p.kind.is_control

    def test_clock_must_be_input(self):
        with pytest.raises(ValueError):
            Port("clk", Direction.OUT, SignalKind.CLOCK)

    def test_scan_in_must_be_input(self):
        with pytest.raises(ValueError):
            Port("si", Direction.OUT, SignalKind.SCAN_IN)

    def test_scan_out_must_be_output(self):
        with pytest.raises(ValueError):
            Port("so", Direction.IN, SignalKind.SCAN_OUT)

    def test_width_positive(self):
        with pytest.raises(ValueError):
            Port("d", Direction.IN, width=0)

    def test_port_counts_widths(self):
        ports = [
            Port("a", Direction.IN, width=8),
            Port("b", Direction.OUT, width=3),
            Port("si", Direction.IN, SignalKind.SCAN_IN),
            Port("so", Direction.OUT, SignalKind.SCAN_OUT),
        ]
        c = PortCounts.of(ports)
        assert (c.pi, c.po, c.ti, c.to) == (8, 3, 1, 1)

    def test_inout_counts_both_sides(self):
        c = PortCounts.of([Port("x", Direction.INOUT, width=4)])
        assert c.pi == 4 and c.po == 4


class TestScanChain:
    def test_chain_fields(self):
        ch = ScanChain("c0", 100, "si", "so")
        assert ch.length == 100

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            ScanChain("c0", 0, "si", "so")

    def test_total_flops(self):
        chains = [ScanChain("a", 10, "si0", "so0"), ScanChain("b", 20, "si1", "so1")]
        assert total_flops(chains) == 30


class TestRebalance:
    def test_even_split(self):
        assert rebalance_lengths(100, 4) == [25, 25, 25, 25]

    def test_uneven_split(self):
        assert rebalance_lengths(10, 4) == [3, 3, 2, 2]

    def test_width_exceeds_total(self):
        assert rebalance_lengths(3, 8) == [1, 1, 1]

    def test_zero_total(self):
        assert rebalance_lengths(0, 4) == []

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            rebalance_lengths(10, 0)

    @given(total=st.integers(0, 10_000), width=st.integers(1, 64))
    def test_property_sum_and_balance(self, total, width):
        lengths = rebalance_lengths(total, width)
        assert sum(lengths) == total
        assert len(lengths) <= width
        if lengths:
            assert max(lengths) - min(lengths) <= 1
            assert all(l > 0 for l in lengths)


class TestClockDomain:
    def test_period(self):
        assert ClockDomain("clk", 100.0).period_ns == 10.0

    def test_pll_registers_domains(self):
        pll = Pll("pll0")
        pll.add_domain("a", 48.0)
        pll.add_domain("b", 27.0)
        assert pll.bypassed_domains == ["a", "b"]

    def test_pll_rejects_duplicates(self):
        pll = Pll("pll0")
        pll.add_domain("a")
        with pytest.raises(ValueError):
            pll.add_domain("a")


class TestCore:
    def _core(self):
        ports = [
            Port("clk", Direction.IN, SignalKind.CLOCK),
            Port("rst", Direction.IN, SignalKind.RESET),
            Port("se", Direction.IN, SignalKind.SCAN_ENABLE),
            Port("si", Direction.IN, SignalKind.SCAN_IN),
            Port("so", Direction.OUT, SignalKind.SCAN_OUT),
            Port("d", Direction.IN, width=8),
            Port("q", Direction.OUT, width=8),
        ]
        chains = [ScanChain("c0", 50, "si", "so")]
        return Core("demo", ports=ports, scan_chains=chains, tests=[scan_test(10)])

    def test_counts(self):
        c = self._core().counts
        assert (c.ti, c.to, c.pi, c.po) == (4, 1, 8, 8)

    def test_control_needs(self):
        needs = self._core().control_needs
        assert needs == ControlNeeds(clocks=1, resets=1, test_enables=0, scan_enables=1)
        assert needs.total == 3

    def test_control_needs_add(self):
        a = ControlNeeds(1, 1, 0, 1)
        b = ControlNeeds(2, 0, 3, 0)
        assert (a + b).total == 8

    def test_scan_properties(self):
        core = self._core()
        assert core.has_scan
        assert core.scan_flops == 50
        assert core.chain_lengths == [50]

    def test_port_lookup(self):
        core = self._core()
        assert core.port("clk").kind is SignalKind.CLOCK
        with pytest.raises(KeyError):
            core.port("nope")

    def test_duplicate_port_rejected(self):
        with pytest.raises(ValueError, match="duplicate port"):
            Core("x", ports=[Port("a", Direction.IN), Port("a", Direction.IN)])

    def test_chain_with_unknown_port_rejected(self):
        with pytest.raises(ValueError, match="unknown scan-in"):
            Core("x", ports=[Port("so", Direction.OUT, SignalKind.SCAN_OUT)],
                 scan_chains=[ScanChain("c", 5, "missing", "so")])

    def test_pattern_tallies(self):
        core = Core("x", tests=[scan_test(10), functional_test(99)])
        assert core.scan_patterns == 10
        assert core.functional_patterns == 99

    def test_tests_of_kind(self):
        core = Core("x", tests=[scan_test(10), functional_test(99)])
        assert len(core.tests_of_kind(TestKind.SCAN)) == 1


class TestMemorySpec:
    def test_geometry(self):
        m = MemorySpec("m0", 1024, 16)
        assert m.capacity_bits == 16_384
        assert m.address_bits == 10

    def test_address_bits_non_power_of_two(self):
        assert MemorySpec("m", 1000, 8).address_bits == 10
        assert MemorySpec("m", 1, 8).address_bits == 1

    def test_describe(self):
        assert MemorySpec("m", 2048, 16).describe() == "2Kx16 SP"
        assert MemorySpec("m", 100, 8, MemoryType.TWO_PORT).describe() == "100x8 TP"

    def test_two_port_flag(self):
        assert MemorySpec("m", 16, 4, MemoryType.TWO_PORT).is_two_port


class TestSoc:
    def test_add_and_lookup(self):
        soc = Soc("chip")
        soc.add_core(Core("a"))
        soc.add_memory(MemorySpec("m", 16, 8))
        assert soc.core("a").name == "a"
        assert soc.memory("m").words == 16

    def test_duplicate_core_rejected(self):
        soc = Soc("chip")
        soc.add_core(Core("a"))
        with pytest.raises(ValueError):
            soc.add_core(Core("a"))

    def test_duplicate_memory_rejected(self):
        soc = Soc("chip")
        soc.add_memory(MemorySpec("m", 16, 8))
        with pytest.raises(ValueError):
            soc.add_memory(MemorySpec("m", 32, 8))

    def test_missing_lookups_raise(self):
        soc = Soc("chip")
        with pytest.raises(KeyError):
            soc.core("a")
        with pytest.raises(KeyError):
            soc.memory("m")

    def test_gate_totals(self):
        soc = Soc("chip", gate_count=100)
        soc.add_core(Core("a", gate_count=50, wrapped=False))
        assert soc.total_gates == 150
        assert soc.wrapped_cores == []
