"""Scheduler stress tests on synthetic SOCs: the schedulers must stay
sound across randomly generated chips of varying shape."""

from hypothesis import given, settings, strategies as st

from repro.bist import MARCH_C_MINUS, plan_bist
from repro.sched import (
    InfeasibleScheduleError,
    schedule_nonsession,
    schedule_serial,
    schedule_sessions,
    tasks_from_soc,
)
from repro.soc.synth import synth_soc


class TestSynthSoc:
    def test_reproducible(self):
        a = synth_soc(seed=42)
        b = synth_soc(seed=42)
        assert [c.name for c in a.cores] == [c.name for c in b.cores]
        assert [c.scan_flops for c in a.cores] == [c.scan_flops for c in b.cores]

    def test_different_seeds_differ(self):
        a = synth_soc(seed=1)
        b = synth_soc(seed=2)
        assert [c.scan_flops for c in a.cores] != [c.scan_flops for c in b.cores]

    def test_structure(self):
        soc = synth_soc(n_cores=5, n_memories=3, seed=9)
        assert len(soc.cores) == 5
        assert len(soc.memories) == 3
        assert all(c.tests for c in soc.cores)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_session_scheduler_sound_on_synthetic_socs(seed):
    """For any synthetic SOC: every test scheduled exactly once, budgets
    respected, serial baseline never beaten by more than its own length."""
    soc = synth_soc(n_cores=6, n_memories=4, test_pins=56, power_budget=12.0, seed=seed)
    plan = plan_bist(soc.memories, MARCH_C_MINUS, power_budget=soc.power_budget)
    tasks = tasks_from_soc(soc) + plan.to_tasks()
    result = schedule_sessions(soc, tasks)
    names = sorted(t.task.name for s in result.sessions for t in s.tests)
    assert names == sorted(t.name for t in tasks)
    for session in result.sessions:
        assert session.power <= soc.power_budget + 1e-9
        data_used = sum(2 * t.width for t in session.tests if t.task.is_scan)
        assert session.control_pins + data_used <= soc.test_pins
    serial = schedule_serial(soc, tasks)
    assert result.total_time <= serial.total_time


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_nonsession_sound_or_infeasible(seed):
    """Non-session either schedules everything without overlap violations
    or raises cleanly."""
    soc = synth_soc(n_cores=5, n_memories=3, test_pins=64, power_budget=12.0, seed=seed)
    tasks = tasks_from_soc(soc)
    try:
        result = schedule_nonsession(soc, tasks)
    except InfeasibleScheduleError:
        return
    tests = result.sessions[0].tests
    assert len(tests) == len(tasks)
    # per-core mutex: intervals of the same core never overlap
    by_core: dict[str, list] = {}
    for t in tests:
        by_core.setdefault(t.task.core_name, []).append((t.start, t.finish))
    for intervals in by_core.values():
        intervals.sort()
        for (_s1, f1), (s2, _f2) in zip(intervals, intervals[1:]):
            assert f1 <= s2
    assert result.total_time == max(t.finish for t in tests)
