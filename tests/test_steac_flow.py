"""Integration tests for the STEAC platform (the paper's Fig. 1 flow)."""

import pytest

from repro.atpg import generate_scan_patterns
from repro.core import IntegrationResult, Steac, SteacConfig
from repro.soc import Soc
from repro.soc.demo import build_demo_core, build_demo_core_module
from repro.soc.dsc import build_dsc_chip
from repro.stil import core_to_stil


@pytest.fixture(scope="module")
def dsc_result() -> IntegrationResult:
    return Steac().integrate(build_dsc_chip())


class TestDscIntegration:
    def test_schedule_strategy(self, dsc_result):
        assert dsc_result.schedule.strategy == "session-based"
        assert dsc_result.total_test_time > 0

    def test_paper_shape_session_beats_nonsession_and_serial(self, dsc_result):
        """Section 3: session-based shortest; 'parallel testing may not
        be better than serial testing' (non-session loses to serial)."""
        c = dsc_result.comparison
        assert c["session"] < c["serial"]
        assert c["session"] < c["nonsession"]
        assert c["serial"] < c["nonsession"]

    def test_total_time_magnitude(self, dsc_result):
        """Millions of cycles, same decade as the paper's 4,371,194."""
        assert 1_000_000 < dsc_result.total_test_time < 10_000_000

    def test_all_tasks_scheduled(self, dsc_result):
        names = [t.task.name for s in dsc_result.schedule.sessions for t in s.tests]
        assert len(names) == len(set(names))
        core_tests = {n for n in names if not n.startswith("MBIST")}
        assert core_tests == {"USB.usb_scan", "TV.tv_scan", "TV.tv_func", "JPEG.jpeg_func"}
        assert any(n.startswith("MBIST") for n in names)

    def test_wrappers_generated_for_wrapped_cores(self, dsc_result):
        assert set(dsc_result.wrappers) == {"USB", "TV", "JPEG"}
        # WBC counts = PI+PO bits per core (Table 1)
        assert dsc_result.wrappers["USB"].wbc_count == 221 + 104
        assert dsc_result.wrappers["TV"].wbc_count == 25 + 40
        assert dsc_result.wrappers["JPEG"].wbc_count == 165 + 104

    def test_bist_engine_covers_all_memories(self, dsc_result):
        assert dsc_result.bist_engine is not None
        assert dsc_result.bist_engine.plan.memory_count == 22

    def test_top_netlist_validates(self, dsc_result):
        top = dsc_result.netlist.top
        assert top.validate(dsc_result.netlist) == []

    def test_area_overhead_below_one_percent(self, dsc_result):
        """Paper: controller+TAM ≈ 0.3% of the chip."""
        report = dsc_result.dft_area_report
        assert 0.0 < report.overhead_percent < 1.0

    def test_controller_and_mux_gate_scale(self, dsc_result):
        report = dsc_result.dft_area_report
        gates = {item.name: item.gates for item in report.items}
        assert 50 <= gates["Test Controller"] <= 1000
        assert 5 <= gates["TAM multiplexer"] <= 500

    def test_runtime_seconds_not_minutes(self, dsc_result):
        """Paper: 5 minutes on a Sun Blade 1000; ours: seconds."""
        assert dsc_result.runtime_seconds < 60

    def test_report_renders_everything(self, dsc_result):
        text = dsc_result.report()
        for token in ("session-based", "Scheduling comparison", "BIST plan",
                      "DFT area overhead", "integration runtime"):
            assert token in text

    def test_verilog_export(self, dsc_result):
        from repro.netlist import netlist_to_verilog

        text = netlist_to_verilog(dsc_result.netlist)
        assert "module dsc_controller_test_top" in text
        assert "USB_wrapper" in text


class TestHeadroomAblation:
    def test_headroom_reduces_total_time(self):
        base = Steac().integrate(build_dsc_chip())
        opt = Steac(SteacConfig(bist_power_headroom=True)).integrate(build_dsc_chip())
        assert opt.total_test_time < base.total_test_time


class TestStilDrivenFlow:
    def test_stil_input_replaces_core_and_translates(self):
        """Full Fig.-1 loop on the demo core: ATPG → STIL → STEAC →
        translated ATE program."""
        module = build_demo_core_module()
        atpg = generate_scan_patterns(module, build_demo_core())
        core = build_demo_core(patterns=atpg.pattern_count)
        stil_text = core_to_stil(core, atpg.patterns)

        soc = Soc("demo_soc", test_pins=16)
        result = Steac().integrate(soc, stil_texts={"demo": stil_text})
        assert "demo" in result.wrappers
        assert "demo.scan" in result.programs
        program = result.programs["demo.scan"]
        # chip-level program: preamble + WIR + scan cycles
        from repro.sched import scan_test_time

        plan = result.wrappers["demo"].plan
        scan_cycles = scan_test_time(
            plan.scan_in_depth, plan.scan_out_depth, atpg.pattern_count
        )
        assert program.cycle_count == scan_cycles + 4 + 4  # WIR + session preamble

    def test_fixed_session_count(self):
        # memory-less SOC: the DSC's 8 BIST groups are mutually exclusive
        # (one engine), so they force >= 8 sessions there
        soc = Soc("three", test_pins=24)
        for i in range(4):
            soc.add_core(build_demo_core(name=f"demo{i}", patterns=3))
        result = Steac(SteacConfig(n_sessions=3, compare_strategies=False)).integrate(soc)
        assert result.schedule.session_count <= 3

    def test_nonsession_strategy_selectable(self):
        soc = build_dsc_chip()
        result = Steac(
            SteacConfig(strategy="nonsession", compare_strategies=False)
        ).integrate(soc)
        assert result.schedule.strategy == "non-session"

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError):
            Steac(SteacConfig(strategy="magic", compare_strategies=False)).integrate(
                build_dsc_chip()
            )

    def test_stil_input_does_not_mutate_caller_soc(self):
        """Regression: step 1 used to replace/add cores on the caller's
        Soc; STIL digestion must operate on a working copy."""
        module = build_demo_core_module()
        atpg = generate_scan_patterns(module, build_demo_core())
        stil_text = core_to_stil(
            build_demo_core(patterns=atpg.pattern_count), atpg.patterns
        )

        soc = Soc("immutable_soc", test_pins=16)
        before = list(soc.cores)
        result = Steac().integrate(soc, stil_texts={"demo": stil_text})
        assert soc.cores == before == []          # caller model untouched
        assert [c.name for c in result.soc.cores] == ["demo"]  # copy got the core

        # replacement path: a pre-existing core of the same name
        soc2 = Soc("immutable_soc2", test_pins=16)
        original = soc2.add_core(build_demo_core(patterns=1))
        result2 = Steac().integrate(soc2, stil_texts={"demo": stil_text})
        assert soc2.cores == [original]           # same object, same list
        assert result2.soc.core("demo") is not original


class TestSocWithoutMemories:
    def test_logic_only_integration(self):
        soc = Soc("logic_only", test_pins=16)
        soc.add_core(build_demo_core(patterns=5))
        result = Steac().integrate(soc)
        assert result.bist_engine is None
        assert result.total_test_time > 0
