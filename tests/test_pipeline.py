"""Tests for the staged pipeline API (repro.core.pipeline)."""

import pytest

from repro.core import (
    FlowContext,
    Pipeline,
    Schedule,
    Stage,
    Steac,
    SteacConfig,
)
from repro.core.pipeline import MissingArtifactError
from repro.sched import resolve_schedule
from repro.soc import MemorySpec, Soc
from repro.soc.demo import build_demo_core
from repro.soc.dsc import build_dsc_chip


def small_soc() -> Soc:
    soc = Soc("pipe_soc", test_pins=24)
    soc.add_core(build_demo_core(patterns=4))
    soc.add_memory(MemorySpec("m0", words=256, bits=8))
    return soc


class TestDefaultFlow:
    def test_stage_order_matches_fig1(self):
        assert Pipeline.default().stage_names == [
            "parse_stil", "compile_bist", "schedule", "insert_dft",
            "translate_patterns",
        ]

    def test_pipeline_run_equals_integrate(self):
        via_pipeline = Pipeline.default().run(Steac().context(small_soc()))
        via_integrate = Steac().integrate(small_soc())
        assert via_pipeline.schedule.total_time == via_integrate.total_test_time
        assert set(via_pipeline.wrappers) == set(via_integrate.wrappers)
        assert (
            via_pipeline.netlist.top.name == via_integrate.netlist.top.name
        )

    def test_every_stage_records_time(self):
        ctx = Pipeline.default().run(Steac().context(small_soc()))
        assert set(ctx.stage_seconds) == set(Pipeline.default().stage_names)
        assert all(t >= 0.0 for t in ctx.stage_seconds.values())

    def test_integration_result_carries_stage_seconds(self):
        result = Steac().integrate(small_soc())
        assert "schedule" in result.stage_seconds


class TestPartialFlows:
    def test_until_schedule_stops_before_dft(self):
        ctx = Steac().context(small_soc())
        Pipeline.default().until("schedule").run(ctx)
        assert ctx.schedule is not None
        assert ctx.netlist is None
        assert ctx.wrappers == {}

    def test_since_resumes_on_same_context(self):
        ctx = Steac().context(small_soc())
        Pipeline.default().until("schedule").run(ctx)
        Pipeline.default().since("insert_dft").run(ctx)
        assert ctx.netlist is not None
        assert ctx.netlist.top.validate(ctx.netlist) == []

    def test_schedule_only_flow_derives_tasks(self):
        """A flow starting at the scheduler still works on a bare SOC."""
        soc = Soc("bare", test_pins=24)
        soc.add_core(build_demo_core(patterns=3))
        ctx = FlowContext(soc=soc)
        Pipeline([Schedule()]).run(ctx)
        assert ctx.schedule.total_time > 0

    def test_dft_before_schedule_fails_fast(self):
        ctx = Steac().context(small_soc())
        with pytest.raises(MissingArtifactError):
            Pipeline.default().since("insert_dft").run(ctx)

    def test_until_unknown_stage_name(self):
        with pytest.raises(KeyError, match="floorplan"):
            Pipeline.default().until("floorplan")

    def test_since_unknown_stage_name(self):
        with pytest.raises(KeyError, match="floorplan"):
            Pipeline.default().since("floorplan")

    def test_replacing_unknown_stage_name(self):
        class Nop(Stage):
            name = "nop"

            def execute(self, ctx):
                pass

        with pytest.raises(KeyError) as exc:
            Pipeline.default().replacing("floorplan", Nop())
        # the error names the stages that do exist
        assert "parse_stil" in str(exc.value)


class TestComposition:
    def test_replacing_swaps_a_stage(self):
        class SerialSchedule(Stage):
            name = "schedule"

            def execute(self, ctx):
                ctx.schedule = resolve_schedule("serial", ctx.soc, ctx.tasks)

        pipeline = Pipeline.default().replacing("schedule", SerialSchedule())
        ctx = pipeline.run(Steac().context(small_soc()))
        assert ctx.schedule.strategy == "serial"
        assert ctx.netlist is not None  # downstream stages consumed it

    def test_append_operator(self):
        seen = []

        class Audit(Stage):
            name = "audit"

            def execute(self, ctx):
                seen.append(ctx.schedule.total_time)

        pipeline = Pipeline.default() | Audit()
        pipeline.run(Steac().context(small_soc()))
        assert seen and seen[0] > 0

    def test_stages_are_reusable_across_socs(self):
        pipeline = Pipeline.default()
        a = pipeline.run(Steac().context(small_soc()))
        b = pipeline.run(Steac().context(build_dsc_chip()))
        assert a.soc.name != b.soc.name
        assert a.schedule.total_time != b.schedule.total_time


class TestConfigThroughPipeline:
    def test_ilp_selectable_via_config(self):
        soc = Soc("ilp_soc", test_pins=24)
        for i in range(2):
            soc.add_core(build_demo_core(name=f"demo{i}", patterns=3))
        config = SteacConfig(strategy="ilp", compare_strategies=False)
        result = Steac(config).integrate(soc)
        assert result.schedule.strategy == "ilp"
        baseline = Steac(SteacConfig(compare_strategies=False)).integrate(soc)
        assert result.total_test_time <= baseline.total_test_time

    def test_compare_with_empty_disables_comparison(self):
        soc = Soc("nocmp_soc", test_pins=24)
        soc.add_core(build_demo_core(patterns=3))
        result = Steac(SteacConfig(compare_with=())).integrate(soc)
        assert result.comparison == {}

    def test_underscore_core_names_wire_the_tam_mux(self):
        """Regression: the mux-input hookup used to parse the core name
        out of the port string, miswiring cores with '_' in the name."""
        soc = Soc("uscore_soc", test_pins=24)
        soc.add_core(build_demo_core(name="core_x", patterns=3))
        result = Steac(SteacConfig(compare_strategies=False)).integrate(soc)
        top = result.netlist.top
        mux_inst = next(i for i in top.instances if i.name == "u_tam_mux")
        wrap_inst = next(i for i in top.instances if i.name == "u_wrap_core_x")
        wpo_nets = {n for p, n in wrap_inst.conns.items() if p.startswith("wpo")}
        mux_data_nets = {
            n for p, n in mux_inst.conns.items()
            if not p.startswith("sel") and not p.startswith("tam_out")
        }
        assert mux_data_nets and mux_data_nets <= wpo_nets

    def test_compare_with_extends_comparison(self):
        soc = Soc("cmp_soc", test_pins=24)
        soc.add_core(build_demo_core(patterns=3))
        config = SteacConfig(compare_with=("session", "serial", "ilp"))
        result = Steac(config).integrate(soc)
        assert set(result.comparison) == {"session", "serial", "ilp"}
        assert result.comparison["ilp"] is not None
