"""Result cache (repro.serve.cache) and content addressing
(repro.serve.keys): LRU behaviour, disk persistence, and the
normalization rules the cache's correctness rests on."""

import json

import pytest

from repro.serve.cache import ResultCache
from repro.serve.keys import JobError, cache_key, normalize_payload
from repro.serve.runners import content_address

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


class TestResultCacheMemory:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, '{"x": 1}')
        assert cache.get(KEY_A) == '{"x": 1}'
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put(KEY_A, "a")
        cache.put(KEY_B, "b")
        assert cache.get(KEY_A) == "a"  # refresh A: B is now the LRU entry
        cache.put(KEY_C, "c")
        assert cache.evictions == 1
        assert cache.get(KEY_B) is None
        assert cache.get(KEY_A) == "a" and cache.get(KEY_C) == "c"

    def test_len_and_contains(self):
        cache = ResultCache(capacity=4)
        assert len(cache) == 0 and KEY_A not in cache
        cache.put(KEY_A, "a")
        assert len(cache) == 1 and KEY_A in cache

    def test_zero_capacity_disables_memory_tier(self):
        cache = ResultCache(capacity=0)
        cache.put(KEY_A, "a")
        assert cache.get(KEY_A) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_clear_drops_memory(self):
        cache = ResultCache(capacity=4)
        cache.put(KEY_A, "a")
        cache.clear()
        assert cache.get(KEY_A) is None

    def test_stats_shape(self):
        cache = ResultCache(capacity=4)
        cache.put(KEY_A, "a")
        cache.get(KEY_A)
        cache.get(KEY_B)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["disk"] is None


class TestResultCacheDisk:
    def test_persists_across_instances(self, tmp_path):
        first = ResultCache(capacity=4, cache_dir=tmp_path / "store")
        first.put(KEY_A, '{"x": 1}')
        second = ResultCache(capacity=4, cache_dir=tmp_path / "store")
        assert second.get(KEY_A) == '{"x": 1}'
        assert second.disk_hits == 1

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        cache = ResultCache(capacity=4, cache_dir=tmp_path)
        cache.put(KEY_A, "a")
        cache.clear()
        assert cache.get(KEY_A) == "a"  # from disk
        assert cache.get(KEY_A) == "a"  # now from memory
        assert cache.disk_hits == 1 and cache.hits == 2

    def test_eviction_keeps_disk_copy(self, tmp_path):
        cache = ResultCache(capacity=1, cache_dir=tmp_path)
        cache.put(KEY_A, "a")
        cache.put(KEY_B, "b")  # evicts A from memory
        assert cache.get(KEY_A) == "a"

    def test_zero_capacity_pure_disk_cache(self, tmp_path):
        cache = ResultCache(capacity=0, cache_dir=tmp_path)
        cache.put(KEY_A, "a")
        assert cache.get(KEY_A) == "a"
        assert cache.disk_hits == 1

    def test_non_hex_key_rejected(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        with pytest.raises(ValueError):
            cache.put("../escape", "x")

    def test_entries_are_named_by_key(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY_A, "payload")
        assert (tmp_path / f"{KEY_A}.json").read_text() == "payload"


class TestNormalization:
    def test_defaults_fill_in(self):
        explicit, _ = normalize_payload({
            "kind": "integrate", "soc": {"name": "d695"},
            "strategy": "session", "verify": False, "compare": False,
        })
        minimal, _ = normalize_payload({
            "kind": "integrate", "soc": {"name": "d695"},
        })
        assert explicit == minimal

    def test_execution_params_split_out(self):
        normalized, execution = normalize_payload({
            "kind": "batch", "socs": [{"name": "dsc"}],
            "backend": "thread", "workers": 4,
        })
        assert execution == {"backend": "thread", "workers": 4}
        assert "backend" not in json.dumps(normalized)

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="strateggy"):
            normalize_payload({
                "kind": "integrate", "soc": {"name": "d695"},
                "strateggy": "serial",
            })

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError, match="kind"):
            normalize_payload({"kind": "compile"})

    def test_soc_ref_needs_exactly_one_form(self):
        with pytest.raises(JobError, match="exactly one"):
            normalize_payload({
                "kind": "integrate",
                "soc": {"name": "d695", "soc_text": "SocName x"},
            })
        with pytest.raises(JobError, match="exactly one"):
            normalize_payload({"kind": "integrate", "soc": {}})

    def test_unknown_named_soc_rejected(self):
        with pytest.raises(JobError, match="s38417"):
            normalize_payload({"kind": "integrate", "soc": {"name": "s38417"}})

    def test_spec_needs_profile_and_seed(self):
        with pytest.raises(JobError, match="profile and seed"):
            normalize_payload({
                "kind": "integrate", "soc": {"spec": {"profile": "tiny"}},
            })

    def test_bool_is_not_an_int(self):
        with pytest.raises(JobError, match="bool"):
            normalize_payload({
                "kind": "fuzz", "seeds": True,
            })

    def test_empty_batch_rejected(self):
        with pytest.raises(JobError, match="non-empty"):
            normalize_payload({"kind": "batch", "socs": []})

    def test_fuzz_strategies_resolved_at_submit(self):
        from repro.sched import available_strategies

        normalized, _ = normalize_payload({"kind": "fuzz"})
        assert normalized["strategies"] == list(available_strategies())


class TestCacheKeys:
    def _key(self, payload):
        normalized, _ = normalize_payload(payload)
        key, _ = content_address(normalized)
        return key

    def test_key_is_hex_sha256(self):
        key = self._key({"kind": "integrate", "soc": {"name": "d695"}})
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_defaulted_and_explicit_payloads_share_a_key(self):
        assert self._key({
            "kind": "integrate", "soc": {"name": "d695"},
        }) == self._key({
            "kind": "integrate", "soc": {"name": "d695"},
            "strategy": "session", "verify": False, "compare": False,
        })

    def test_execution_params_do_not_change_the_key(self):
        """backend/workers steer speed, never results — sweeps from
        differently-parallel clients must share cache entries."""
        assert self._key({
            "kind": "batch", "socs": [{"name": "dsc"}],
        }) == self._key({
            "kind": "batch", "socs": [{"name": "dsc"}],
            "backend": "process", "workers": 8,
        })

    def test_strategy_changes_the_key(self):
        assert self._key({
            "kind": "integrate", "soc": {"name": "d695"},
        }) != self._key({
            "kind": "integrate", "soc": {"name": "d695"}, "strategy": "serial",
        })

    def test_chip_identity_is_content_not_spelling(self):
        """The same chip by name and as inline .soc text addresses the
        same cache entry (the key holds the model digest, not the ref)."""
        from repro.soc.itc02 import d695_soc_text

        assert self._key({
            "kind": "integrate", "soc": {"name": "d695"},
        }) == self._key({
            "kind": "integrate",
            "soc": {"soc_text": d695_soc_text(), "test_pins": 64},
        })

    def test_different_pins_change_the_key(self):
        assert self._key({
            "kind": "integrate", "soc": {"name": "d695"},
        }) != self._key({
            "kind": "integrate", "soc": {"name": "d695", "test_pins": 32},
        })

    def test_schema_version_salts_the_key(self):
        normalized, _ = normalize_payload(
            {"kind": "integrate", "soc": {"name": "d695"}}
        )
        _, work = content_address(normalized)
        digests = [item.digest() for item in work]
        assert cache_key(normalized, digests, "repro/integration-result/v3") != \
            cache_key(normalized, digests, "repro/integration-result/v4")

    def test_unknown_profile_is_a_job_error(self):
        with pytest.raises(JobError, match="profile"):
            self._key({
                "kind": "integrate",
                "soc": {"spec": {"profile": "galactic", "seed": 1}},
            })

    def test_unparsable_soc_text_is_a_job_error(self):
        with pytest.raises(JobError, match="soc_text"):
            self._key({"kind": "integrate", "soc": {"soc_text": "garbage"}})
