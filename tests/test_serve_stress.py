"""Threaded stress regression for the bounded job table.

``JobManager`` mutates its table from two thread populations at once —
submitters (HTTP handler threads) and pollers (``/stats``, job GETs) —
with LRU eviction churning underneath.  Every touch goes through
``self._lock``, so two invariants must hold in *every* snapshot, not
just at the end:

* accounting: ``retained + evicted == submitted`` (born-terminal jobs
  are immediately evictable, so the three counters move atomically);
* bound: ``retained <= max_jobs + live``.  A submission is inserted
  (live) before it turns terminal, and live jobs are never evicted, so
  a snapshot may catch up to one above-cap job per in-flight submitter;
  once every job is terminal the strict ``max_jobs`` cap must hold.

A lost update (a write outside the lock) shows up as a snapshot where
the counters disagree or the table overshoots its cap.
"""

import threading

from repro.serve import JobManager

#: Unparsable soc_text → the job is born ``failed`` (terminal)
#: synchronously inside ``submit``, so eviction pressure is immediate
#: and the test never waits on worker scheduling.
BAD_SOC = {"kind": "integrate", "soc": {"soc_text": "garbage"}}

SUBMITTERS = 8
JOBS_EACH = 25
POLLERS = 4
MAX_JOBS = 8


class TestJobManagerStress:
    def test_concurrent_submit_poll_evict_keeps_counters_consistent(self):
        manager = JobManager(workers=2, max_jobs=MAX_JOBS)
        barrier = threading.Barrier(SUBMITTERS + POLLERS)
        done = threading.Event()
        snapshots: list[dict] = []
        submitted_ids: list[list[str]] = [[] for _ in range(SUBMITTERS)]
        errors: list[BaseException] = []

        def submitter(slot: int) -> None:
            try:
                barrier.wait()
                for _ in range(JOBS_EACH):
                    job = manager.submit(BAD_SOC)
                    submitted_ids[slot].append(job.id)
                    # poll our own job: refreshes LRU order under load
                    manager.get(job.id)
            except BaseException as exc:  # pragma: no cover — failure path
                errors.append(exc)

        def poller(snaps: list[dict]) -> None:
            try:
                barrier.wait()
                while not done.is_set():
                    snaps.append(manager.stats()["jobs"])
                    manager.jobs()
            except BaseException as exc:  # pragma: no cover — failure path
                errors.append(exc)

        per_poller: list[list[dict]] = [[] for _ in range(POLLERS)]
        threads = [
            threading.Thread(target=submitter, args=(i,))
            for i in range(SUBMITTERS)
        ] + [
            threading.Thread(target=poller, args=(per_poller[i],))
            for i in range(POLLERS)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads[:SUBMITTERS]:
                thread.join(timeout=60)
            done.set()
            for thread in threads[SUBMITTERS:]:
                thread.join(timeout=60)
            assert not any(thread.is_alive() for thread in threads)
            assert errors == []

            for snaps in per_poller:
                snapshots.extend(snaps)
            assert snapshots, "pollers never observed the table"
            for snap in snapshots:
                assert snap["retained"] + snap["evicted"] == snap["submitted"], snap
                assert snap["retained"] <= MAX_JOBS + SUBMITTERS, snap

            total = SUBMITTERS * JOBS_EACH
            final = manager.stats()["jobs"]
            assert final["submitted"] == total
            assert final["retained"] + final["evicted"] == total
            assert final["retained"] <= MAX_JOBS

            # every submitter saw a unique job id — no cross-thread
            # collisions in the id counter
            all_ids = [job_id for ids in submitted_ids for job_id in ids]
            assert len(all_ids) == total
            assert len(set(all_ids)) == total

            # the survivors are exactly the most recently touched jobs
            assert len(manager.jobs()) == final["retained"]
        finally:
            manager.close()
